//! Case generation and execution (no shrinking).

use crate::strategy::Strategy;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` (skipped, not failed).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// The deterministic generator driving strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 uniformly distributed bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Runs one strategy over many generated cases.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner with a fixed deterministic seed.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config, rng: TestRng::new(0x5D50_1997_C0FF_EE00) }
    }

    /// Generates `config.cases` inputs and runs `test` on each. Returns
    /// the first failure, annotated with the generated input.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first failing case.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), String>
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        while accepted < self.config.cases {
            // Bail out rather than spin when `prop_assume!` rejects nearly
            // everything the strategy can generate.
            if rejected > 16 * self.config.cases + 1024 {
                break;
            }
            let value = strategy.generate(&mut self.rng);
            let shown = format!("{value:?}");
            match test(value) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => rejected += 1,
                Err(TestCaseError::Fail(msg)) => {
                    return Err(format!(
                        "proptest case failed after {accepted} passing case(s): \
                         {msg}; input = {shown}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_is_deterministic() {
        let strategy = 0u64..1000;
        let collect = || {
            let mut out = Vec::new();
            TestRunner::new(ProptestConfig::with_cases(16))
                .run(&strategy, |v| {
                    out.push(v);
                    Ok(())
                })
                .unwrap();
            out
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn failure_reports_input() {
        let err = TestRunner::new(ProptestConfig::with_cases(64))
            .run(&(0u64..10), |v| if v >= 5 { Err(TestCaseError::fail("too big")) } else { Ok(()) })
            .unwrap_err();
        assert!(err.contains("too big"), "{err}");
        assert!(err.contains("input ="), "{err}");
    }

    #[test]
    fn rejection_exhaustion_terminates() {
        TestRunner::new(ProptestConfig::with_cases(8))
            .run(&(0u64..10), |_| Err(TestCaseError::reject("never")))
            .unwrap();
    }
}
