//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (see [`Arbitrary`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Returns the canonical strategy generating arbitrary `T`s.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_the_domain() {
        let mut rng = TestRng::new(3);
        let mut seen_true = false;
        let mut seen_false = false;
        for _ in 0..64 {
            if any::<bool>().generate(&mut rng) {
                seen_true = true;
            } else {
                seen_false = true;
            }
        }
        assert!(seen_true && seen_false);
    }
}
