//! Sampling helpers (`Index`).

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// An arbitrary index into a collection of yet-unknown length: generated
/// as a raw value, projected into `0..len` at use time.
#[derive(Debug, Clone, Copy)]
pub struct Index {
    raw: usize,
}

impl Index {
    /// Projects into `0..len` (`0` when `len == 0`).
    pub fn index(&self, len: usize) -> usize {
        if len == 0 {
            0
        } else {
            self.raw % len
        }
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index { raw: rng.next_u64() as usize }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_stays_in_bounds() {
        let mut rng = TestRng::new(5);
        for _ in 0..100 {
            let idx = Index::arbitrary(&mut rng);
            assert!(idx.index(17) < 17);
            assert_eq!(idx.index(0), 0);
            assert_eq!(idx.index(1), 0);
        }
    }
}
