//! Composable value-generation strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        U: Strategy,
        F: Fn(Self::Value) -> U,
    {
        FlatMap { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    U: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U::Value;
    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $ty;
                }
                start.wrapping_add(rng.below(span as u64) as $ty)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::{ProptestConfig, TestRunner};

    #[test]
    fn map_and_flat_map_compose() {
        let strategy = (1usize..8)
            .prop_flat_map(|len| crate::collection::vec(0u8..10, len).prop_map(move |v| (len, v)));
        TestRunner::new(ProptestConfig::with_cases(64))
            .run(&(strategy,), |((len, v),)| {
                assert_eq!(v.len(), len);
                assert!(v.iter().all(|&b| b < 10));
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::new(99);
        let (a, b) = (0u16..4, 10u64..20).generate(&mut rng);
        assert!(a < 4);
        assert!((10..20).contains(&b));
    }
}
