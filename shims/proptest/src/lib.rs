#![allow(clippy::all)]
//! Minimal, dependency-free stand-in for the `proptest` crate covering
//! the subset this workspace uses: the `proptest!` macro, composable
//! strategies (`prop_map`, `prop_flat_map`, ranges, tuples,
//! `collection::vec`, `any`), `prop_assert*` / `prop_assume!`, and
//! `ProptestConfig::with_cases`.
//!
//! Vendored so the workspace builds fully offline. Differences from
//! upstream: cases are generated from a fixed deterministic seed, and
//! there is **no shrinking** — a failing case reports its generated
//! inputs as-is.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Everything a test normally imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-able function that runs the body over generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ($($s,)+);
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner
                .run(&strategy, |($($p,)+)| {
                    $body
                    Ok(())
                })
                .unwrap();
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{}: {:?} != {:?}", format!($($fmt)*), a, b);
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: both sides are {:?}", a);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{}: both sides are {:?}", format!($($fmt)*), a);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
}
