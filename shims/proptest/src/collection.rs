//! Collection strategies (`vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length bounds for collection strategies: `[min, max]` inclusive.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange { min: exact, max: exact }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// lies within `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            let v = vec(any::<u8>(), 3..7).generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
        let exact = vec(any::<u8>(), 5usize).generate(&mut rng);
        assert_eq!(exact.len(), 5);
    }
}
