//! Minimal offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements exactly the API surface the `sdso-bench` benches use:
//! `black_box`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `sample_size`, `Bencher::iter`, and
//! the `criterion_group!`/`criterion_main!` macros. Instead of the real
//! crate's statistical machinery it runs a short warm-up, then times a
//! fixed batch per sample and prints the per-iteration median. Good
//! enough to smoke-run `cargo bench` offline; not a measurement tool —
//! the perf-regression runner in `sdso-bench` uses the deterministic sim
//! for that.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { name: format!("{function_name}/{parameter}") }
    }
}

/// Entry point handed to each registered benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { _criterion: self, samples: 10 }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(name, |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.name.clone();
        self.run(&name, |b| f(b, input));
        self
    }

    fn run<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut medians = Vec::with_capacity(self.samples);
        for sample in 0..self.samples {
            let mut bencher = Bencher { elapsed: Duration::ZERO, iterations: 0 };
            f(&mut bencher);
            if sample > 0 && bencher.iterations > 0 {
                // Sample 0 is warm-up.
                medians.push(bencher.elapsed.as_nanos() / u128::from(bencher.iterations));
            }
        }
        medians.sort_unstable();
        let median = medians.get(medians.len() / 2).copied().unwrap_or(0);
        println!("  {name}: ~{median} ns/iter ({} samples)", medians.len());
    }

    /// Ends the group (kept for API compatibility; prints nothing).
    pub fn finish(&mut self) {}
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine` over a small fixed batch of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        const BATCH: u64 = 16;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += BATCH;
    }
}

/// Registers benchmark functions under a group name, mirroring criterion's
/// macro shape.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running each registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_bodies() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u32;
        group.sample_size(3).bench_function("noop", |b| {
            calls += 1;
            b.iter(|| black_box(1 + 1));
        });
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
        assert_eq!(calls, 3);
    }
}
