#![allow(clippy::all)]
//! Minimal, dependency-free stand-in for the `bytes` crate covering the
//! subset this workspace uses: cheaply-cloneable immutable byte buffers
//! (`Bytes`) and an append-only builder (`BytesMut`).
//!
//! Vendored so the workspace builds fully offline; the API is
//! call-compatible with the real crate for every usage in this repo.

#![warn(missing_docs)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply-cloneable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    inner: Arc<Vec<u8>>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { inner: Arc::new(data.to_vec()) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The contents as a slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.inner
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.as_ref().clone()
    }

    /// Converts back into a [`BytesMut`] without copying when this is the
    /// only handle to the storage; returns `self` unchanged otherwise.
    /// Mirrors the real crate's `Bytes::try_into_mut`, and is what lets a
    /// buffer pool reclaim frozen buffers once their last clone is gone.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` if other clones still share the storage.
    pub fn try_into_mut(self) -> Result<BytesMut, Bytes> {
        match Arc::try_unwrap(self.inner) {
            Ok(vec) => Ok(BytesMut { inner: vec }),
            Err(inner) => Err(Bytes { inner }),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { inner: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes { inner: Arc::new(v.into_bytes()) }
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Bytes {
        v.freeze()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.inner.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.inner.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.inner.as_ref() == other
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates a builder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    /// Appends `data`.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.inner.extend_from_slice(data);
    }

    /// Empties the buffer, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Bytes the buffer can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes { inner: Arc::new(self.inner) }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = BytesMut::with_capacity(8);
        b.extend_from_slice(&[1, 2]);
        b.extend_from_slice(&[3]);
        assert_eq!(b.len(), 3);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3]);
        assert_eq!(frozen.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn conversions_and_equality() {
        let a = Bytes::from(vec![9u8; 4]);
        let b = Bytes::copy_from_slice(&[9u8; 4]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        let s = Bytes::from(b"hi".as_ref());
        assert_eq!(&s[..], b"hi");
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![0u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = BytesMut::with_capacity(64);
        b.extend_from_slice(&[1u8; 48]);
        let cap = b.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
        b.reserve(128);
        assert!(b.capacity() >= 128);
    }

    #[test]
    fn try_into_mut_reclaims_unique_storage() {
        let unique = Bytes::from(vec![1u8, 2, 3]);
        let mut reclaimed = unique.try_into_mut().expect("sole owner reclaims");
        assert_eq!(&reclaimed[..], &[1, 2, 3]);
        reclaimed.clear();
        assert!(reclaimed.is_empty());

        let shared = Bytes::from(vec![9u8; 4]);
        let other = shared.clone();
        let back = shared.try_into_mut().expect_err("shared storage stays frozen");
        assert_eq!(back, other);
    }
}
