#![allow(clippy::all)]
//! Minimal, dependency-free stand-in for the `crossbeam` crate covering
//! the subset this workspace uses: `crossbeam::channel` unbounded MPSC
//! channels, implemented over `std::sync::mpsc`.
//!
//! Vendored so the workspace builds fully offline.

#![warn(missing_docs)]

/// Multi-producer channels (the `crossbeam-channel` API surface we use).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Returns immediately with a message, `Empty`, or `Disconnected`.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        }

        #[test]
        fn timeout_and_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            assert!(matches!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            ));
            drop(tx);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
        }
    }
}
