#![allow(clippy::all)]
//! Minimal, dependency-free stand-in for the `parking_lot` crate covering
//! the subset this workspace uses: `Mutex` (panic-free `lock()` that
//! ignores poisoning) and `Condvar` operating on that guard type.
//!
//! Vendored so the workspace builds fully offline.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Acquires the lock, blocking until available. Poisoning is ignored
    /// (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    // `Option` so Condvar::wait can temporarily take the std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

/// Result of a timed wait: whether the wait timed out.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Atomically releases the guard and blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Like [`Condvar::wait`] but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken");
        let (g, res) = self.inner.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut guard = m.lock();
            while !*guard {
                cv.wait(&mut guard);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn timed_wait_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
