#![allow(clippy::all)]
//! Minimal, dependency-free stand-in for the `rand` crate covering the
//! subset this workspace uses: a seedable deterministic generator
//! (`rngs::StdRng`, backed by SplitMix64) and `Rng::gen_range` over
//! half-open and inclusive integer ranges.
//!
//! Vendored so the workspace builds fully offline. The stream differs
//! from upstream `StdRng`, but every consumer in this workspace only
//! requires determinism for a fixed seed, not a particular stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling interface.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, the standard conversion.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u128) - (start as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $ty;
                }
                start.wrapping_add((rng.next_u64() % span as u64) as $ty)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic 64-bit generator (SplitMix64). Stream-incompatible
    /// with upstream's ChaCha-based `StdRng`, but fully deterministic for
    /// a given seed, which is all this workspace relies on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u16 = rng.gen_range(0..32);
            assert!(x < 32);
            let y = rng.gen_range(5..=25);
            assert!((5..=25).contains(&y));
            let z: usize = rng.gen_range(1..2);
            assert_eq!(z, 1);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
