//! Side-by-side comparison of every implemented consistency protocol on
//! one game configuration — a one-command tour of the paper's headline
//! result.
//!
//! Run with:
//! `cargo run --release -p sdso-harness --example protocol_comparison -- [TEAMS] [RANGE] [TICKS]`

use sdso_game::{Protocol, Scenario};
use sdso_harness::{run_experiment, Table};
use sdso_sim::NetworkModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let teams: u16 = args.first().map(|a| a.parse()).transpose()?.unwrap_or(8);
    let range: u16 = args.get(1).map(|a| a.parse()).transpose()?.unwrap_or(1);
    let ticks: u64 = args.get(2).map(|a| a.parse()).transpose()?.unwrap_or(100);

    let scenario = Scenario::paper(teams, range).with_ticks(ticks);
    let mut table = Table::new(
        format!("{teams} teams, range {range}, {ticks} ticks, 10 Mbps testbed model"),
        &[
            "protocol",
            "ms/modification",
            "total msgs",
            "data msgs",
            "control msgs",
            "avg exec (s)",
            "overhead %",
        ],
    );

    for protocol in Protocol::ALL {
        eprint!("running {protocol} …");
        let summary = run_experiment(&scenario, protocol, NetworkModel::paper_testbed())?;
        eprintln!(" done");
        table.push_row(vec![
            protocol.name().to_owned(),
            format!("{:.2}", summary.avg_time_per_modification_secs() * 1e3),
            summary.total_messages().to_string(),
            summary.data_messages().to_string(),
            summary.control_messages().to_string(),
            format!("{:.3}", summary.avg_exec_secs()),
            format!("{:.1}", 100.0 * summary.overhead_fraction()),
        ]);
    }

    println!("\n{table}");
    println!(
        "The paper's ordering to look for: EC slowest per modification but fewest\n\
         data messages (pull-based); MSYNC2 fastest (its s-function captures the\n\
         application's spatial semantics most precisely); BSYNC pays the broadcast\n\
         worst case; LRC adds interval history transfer on top of locking; causal\n\
         memory pushes every write to everyone."
    );
    Ok(())
}
