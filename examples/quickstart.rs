//! Quickstart: two processes share objects through S-DSO.
//!
//! Each process registers the same shared objects, writes its own, and
//! performs one synchronous exchange (BSYNC-style every-tick schedule).
//! After the rendezvous both replicas contain both writes.
//!
//! Run with: `cargo run -p sdso-harness --example quickstart`

use sdso_core::{DsoConfig, DsoError, EveryTick, ObjectId, SdsoRuntime, SendMode};
use sdso_net::memory::MemoryHub;
use sdso_net::Endpoint;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let endpoints = MemoryHub::new(2).into_endpoints();

    let mut handles = Vec::new();
    for ep in endpoints {
        handles.push(std::thread::spawn(move || -> Result<String, DsoError> {
            let me = ep.node_id();
            let mut runtime = SdsoRuntime::new(ep, DsoConfig::paper());

            // Everything is declared shared once, at initialisation — S-DSO
            // has no unshare (paper §3.1).
            runtime.share(ObjectId(0), b"....".to_vec())?;
            runtime.share(ObjectId(1), b"....".to_vec())?;
            runtime.init_schedule(&mut EveryTick)?;

            // Each process writes its own object...
            let text: &[u8] = if me == 0 { b"ping" } else { b"pong" };
            runtime.write(ObjectId(u32::from(me)), 0, text)?;

            // ...and exchanges with whoever is due (here: the other side).
            let report = runtime.exchange(true, SendMode::Multicast, &mut EveryTick)?;
            assert_eq!(report.peers.len(), 1);

            Ok(format!(
                "process {me}: obj0={:?} obj1={:?} after tick {}",
                String::from_utf8_lossy(runtime.read(ObjectId(0))?),
                String::from_utf8_lossy(runtime.read(ObjectId(1))?),
                report.time,
            ))
        }));
    }

    for handle in handles {
        println!("{}", handle.join().expect("thread panicked")?);
    }
    println!("both replicas converged: obj0=ping obj1=pong everywhere");
    Ok(())
}
