//! An n-body simulation with a cut-off radius, built on S-DSO lookahead
//! consistency.
//!
//! The paper (§2.1) points out that "even scientific applications exhibit
//! such spatial consistency constraints, as is evident in n-body
//! simulations, where the gravitational effects of bodies on each other are
//! considered only when two bodies are within minimum distance d of each
//! other. Likewise, molecular dynamics simulations tend to consider only
//! those interactions of molecules within some known cut-off radius."
//!
//! Each process owns one body (an S-DSO object holding position and
//! velocity). The s-function bounds when two bodies could come within the
//! cut-off radius given the global speed limit, so processes exchange state
//! only when an interaction is imminent — instead of broadcasting every
//! step.
//!
//! Run with: `cargo run -p sdso-harness --example nbody -- [BODIES] [STEPS]`

use sdso_core::{DsoConfig, LogicalTime, ObjectId, ObjectStore, SFunction, SdsoRuntime};
use sdso_net::{Endpoint, NodeId};
use sdso_protocols::Lookahead;
use sdso_sim::{NetworkModel, SimCluster};

/// World is a square of this side length.
const WORLD: f64 = 1000.0;
/// Interaction cut-off radius.
const CUTOFF: f64 = 60.0;
/// Hard speed limit per step (the bound the s-function exploits).
const VMAX: f64 = 4.0;
/// Attraction strength inside the cut-off.
const G: f64 = 3.0;

#[derive(Debug, Clone, Copy)]
struct Body {
    x: f64,
    y: f64,
    vx: f64,
    vy: f64,
}

impl Body {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        for v in [self.x, self.y, self.vx, self.vy] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn decode(bytes: &[u8]) -> Body {
        let f =
            |i: usize| f64::from_le_bytes(bytes[8 * i..8 * (i + 1)].try_into().expect("8 bytes"));
        Body { x: f(0), y: f(1), vx: f(2), vy: f(3) }
    }

    fn distance(&self, other: &Body) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

fn body_object(owner: NodeId) -> ObjectId {
    ObjectId(u32::from(owner))
}

fn initial_body(owner: NodeId, n: usize) -> Body {
    // A ring of bodies falling toward the centre with a slight tangential
    // component: they repeatedly converge (close encounters inside the
    // cut-off), sling past each other, bounce off the walls and return —
    // exercising the lookahead schedule's tighten/relax cycle.
    let angle = (f64::from(owner) / n as f64) * std::f64::consts::TAU;
    Body {
        x: WORLD / 2.0 + (WORLD / 3.0) * angle.cos(),
        y: WORLD / 2.0 + (WORLD / 3.0) * angle.sin(),
        vx: -VMAX * 0.85 * angle.cos() - VMAX * 0.15 * angle.sin(),
        vy: -VMAX * 0.85 * angle.sin() + VMAX * 0.15 * angle.cos(),
    }
}

/// Rendezvous when two bodies could have closed to the cut-off radius:
/// with both moving at most `VMAX` per step toward each other, that takes
/// at least `(dist - CUTOFF) / (2 VMAX)` steps.
struct CutoffLookahead {
    me: NodeId,
}

impl SFunction for CutoffLookahead {
    fn next_exchange(
        &mut self,
        peer: NodeId,
        now: LogicalTime,
        view: &ObjectStore,
    ) -> Option<LogicalTime> {
        let mine = Body::decode(view.read(body_object(self.me)).expect("body shared"));
        let theirs = Body::decode(view.read(body_object(peer)).expect("body shared"));
        let gap = (mine.distance(&theirs) - CUTOFF).max(0.0);
        let steps = (gap / (2.0 * VMAX)).floor() as u64;
        Some(now.plus(steps.max(1)))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bodies: usize = args.first().map(|a| a.parse()).transpose()?.unwrap_or(8);
    let steps: u64 = args.get(1).map(|a| a.parse()).transpose()?.unwrap_or(500);

    let outcome = SimCluster::new(bodies, NetworkModel::modern_lan()).run(move |ep| {
        let me = ep.node_id();
        let n = ep.num_nodes();
        let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
        for owner in 0..n as NodeId {
            rt.share(body_object(owner), initial_body(owner, n).encode()).map_err(stringify)?;
        }
        let mut node = Lookahead::new(rt, CutoffLookahead { me }).map_err(stringify)?;

        let mut interactions = 0u64;
        for _ in 0..steps {
            let store_read = |rt: &SdsoRuntime<_>, o: NodeId| {
                Body::decode(rt.read(body_object(o)).expect("body shared"))
            };
            let mut mine = store_read(node.runtime(), me);
            // Accumulate attraction from every body inside the cut-off
            // (replicas of distant bodies may be stale — by construction
            // they cannot be inside the cut-off for real).
            let (mut ax, mut ay) = (0.0f64, 0.0f64);
            for other in 0..node.runtime().num_nodes() as NodeId {
                if other == me {
                    continue;
                }
                let theirs = store_read(node.runtime(), other);
                let dist = mine.distance(&theirs);
                if dist < CUTOFF && dist > 1e-6 {
                    ax += G * (theirs.x - mine.x) / (dist * dist);
                    ay += G * (theirs.y - mine.y) / (dist * dist);
                    interactions += 1;
                }
            }
            mine.vx = (mine.vx + ax).clamp(-VMAX, VMAX);
            mine.vy = (mine.vy + ay).clamp(-VMAX, VMAX);
            // Bounce off the walls rather than wrapping: a wrap would
            // teleport the body and break the speed bound the s-function's
            // prediction relies on.
            mine.x += mine.vx;
            mine.y += mine.vy;
            if !(0.0..=WORLD).contains(&mine.x) {
                mine.vx = -mine.vx;
                mine.x = mine.x.clamp(0.0, WORLD);
            }
            if !(0.0..=WORLD).contains(&mine.y) {
                mine.vy = -mine.vy;
                mine.y = mine.y.clamp(0.0, WORLD);
            }
            node.runtime_mut().write(body_object(me), 0, &mine.encode()).map_err(stringify)?;
            node.step().map_err(stringify)?;
        }
        let rt = node.into_runtime();
        Ok((interactions, rt.metrics(), rt.net_metrics()))
    })?;

    let mut msgs = 0u64;
    let mut rendezvous = 0u64;
    let mut interactions = 0u64;
    for node in &outcome.nodes {
        let (i, dso, net) = node.result.as_ref().map_err(|e| format!("body failed: {e}"))?;
        msgs += net.total_sent();
        rendezvous += dso.rendezvous_peers;
        interactions += i;
    }
    let every_step = bodies as u64 * (bodies as u64 - 1) * steps * 2;
    println!("{bodies} bodies, {steps} steps, cut-off {CUTOFF}: {interactions} interactions");
    println!("cut-off lookahead: {msgs} messages, {rendezvous} rendezvous");
    println!(
        "an every-step broadcast would have sent ~{every_step} messages ({:.1}x more)",
        every_step as f64 / msgs.max(1) as f64
    );
    println!("virtual makespan: {}", outcome.makespan());
    Ok(())
}

fn stringify(e: sdso_core::DsoError) -> sdso_net::NetError {
    e.into()
}
