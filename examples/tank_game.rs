//! The paper's evaluation application: the distributed tank game, run on
//! the virtual-time cluster with a protocol of your choice.
//!
//! ```text
//! cargo run -p sdso-harness --example tank_game -- [PROTOCOL] [TEAMS] [RANGE] [TICKS]
//! ```
//!
//! * `PROTOCOL` — `bsync` | `msync` | `msync2` | `msync2-shard` | `ec` |
//!   `lrc` | `causal` (default `msync2`)
//! * `TEAMS` — number of processes/teams, ≥ 2 (default 4)
//! * `RANGE` — sensing range in blocks (default 1)
//! * `TICKS` — iterations per process (default 200)
//!
//! Add `--render` to draw each process's final replica of the world —
//! under MSYNC2 the views visibly differ in regions whose tanks never
//! came within interaction range (spatial consistency at work).
//!
//! Add `--trace FILE` to record the run with the flight recorder in
//! full mode and write a Chrome trace (one track per process, spans
//! for exchanges/waits/lock holds) — open it at
//! <https://ui.perfetto.dev>. The merged counters and latency
//! histograms are printed to stdout as well.
//!
//! Add `--churn` to run under dynamic membership: two players leave at
//! staggered mid-run barriers and two late joiners take their slots via
//! snapshot transfer (needs ≥ 4 teams and a lookahead/EC protocol).
//!
//! Add `--crash` to run under fail-stop crashes: one player dies abruptly
//! in the first half of the run and recovers from its write-ahead log
//! (rejoining via snapshot with its pre-crash identity), another dies in
//! the second half and stays down (needs ≥ 4 teams and a lookahead/EC
//! protocol).

use sdso_core::{text_histogram_dump, ObsSet};
use sdso_game::{
    render, run_churn_node_obs, run_crash_node_obs, run_node_obs, scoreboard, Pos, Protocol,
    RenderOptions, Scenario,
};
use sdso_harness::{default_churn_plan, default_crash_plan};
use sdso_net::SimSpan;
use sdso_net::TraceConfig;
use sdso_sim::{NetworkModel, SimCluster};

fn parse_protocol(name: &str) -> Option<Protocol> {
    match name.to_ascii_lowercase().as_str() {
        "bsync" => Some(Protocol::Bsync),
        "msync" => Some(Protocol::Msync),
        "msync2" => Some(Protocol::Msync2),
        "msync2-shard" | "shard" => Some(Protocol::Msync2Shard),
        "ec" | "entry" => Some(Protocol::Entry),
        "lrc" => Some(Protocol::Lrc),
        "causal" => Some(Protocol::Causal),
        _ => None,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let do_render = args.iter().any(|a| a == "--render");
    args.retain(|a| a != "--render");
    let do_churn = args.iter().any(|a| a == "--churn");
    args.retain(|a| a != "--churn");
    let do_crash = args.iter().any(|a| a == "--crash");
    args.retain(|a| a != "--crash");
    if do_churn && do_crash {
        return Err("--churn and --crash are separate experiments; pick one".into());
    }
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .map(|at| {
            if at + 1 >= args.len() {
                return Err("--trace needs a file path");
            }
            Ok(args.drain(at..=at + 1).nth(1).expect("two drained"))
        })
        .transpose()?;
    let protocol = args
        .first()
        .map(|a| parse_protocol(a).ok_or(format!("unknown protocol {a:?}")))
        .transpose()?
        .unwrap_or(Protocol::Msync2);
    let teams: u16 = args.get(1).map(|a| a.parse()).transpose()?.unwrap_or(4);
    if teams < 2 {
        return Err("TEAMS must be at least 2 (the game needs an opponent)".into());
    }
    let range: u16 = args.get(2).map(|a| a.parse()).transpose()?.unwrap_or(1);
    let ticks: u64 = args.get(3).map(|a| a.parse()).transpose()?.unwrap_or(200);

    let plan = if do_churn {
        if !Protocol::PAPER.contains(&protocol) {
            return Err(format!(
                "{protocol} has no view-change barrier; --churn needs one of \
                                bsync/msync/msync2/ec"
            )
            .into());
        }
        if teams < 4 {
            return Err("--churn needs at least 4 teams (donor, leavers, spare slots)".into());
        }
        Some(default_churn_plan(usize::from(teams), ticks))
    } else {
        None
    };
    let faults = if do_crash {
        if !Protocol::PAPER.contains(&protocol) {
            return Err(format!(
                "{protocol} has no view-change barrier; --crash needs one of \
                                bsync/msync/msync2/ec"
            )
            .into());
        }
        if teams < 4 {
            return Err("--crash needs at least 4 teams (donor, crashers, a bystander)".into());
        }
        if ticks < 8 {
            return Err("--crash needs at least 8 ticks (crash, restart, a tail of play)".into());
        }
        Some(default_crash_plan(0x5D50_C4A5, usize::from(teams), ticks))
    } else {
        None
    };

    let scenario = Scenario::paper(teams, range).with_ticks(ticks);
    println!(
        "running {protocol} with {teams} teams, range {range}, {ticks} ticks{} \
         on a simulated {}-node cluster (10 Mbps switched Ethernet model)…",
        if do_churn {
            ", with mid-run churn"
        } else if do_crash {
            ", with seeded crashes"
        } else {
            ""
        },
        teams
    );
    if let Some(plan) = &plan {
        for (tick, change) in plan.changes() {
            println!("  tick {tick}: {:?} join, {:?} leave", change.joined, change.left);
        }
    }
    if let Some(faults) = &faults {
        for crash in &faults.crashes {
            match crash.restart_tick {
                Some(r) => println!(
                    "  tick {}: process {} crashes, restarts at tick {r}",
                    crash.crash_tick, crash.node
                ),
                None => println!(
                    "  tick {}: process {} crashes and stays down",
                    crash.crash_tick, crash.node
                ),
            }
        }
    }

    let config = if trace_path.is_some() { TraceConfig::full() } else { TraceConfig::off() };
    let obs_set = ObsSet::new(teams, config);
    let obs_for_nodes = obs_set.clone();
    let run_scenario = scenario.clone();
    let run_plan = plan.clone();
    let run_faults = faults.clone();
    let outcome =
        SimCluster::new(usize::from(teams), NetworkModel::paper_testbed()).run(move |ep| {
            let obs = obs_for_nodes.node(sdso_net::Endpoint::node_id(&ep));
            match (&run_plan, &run_faults) {
                (Some(plan), _) => run_churn_node_obs(ep, &run_scenario, protocol, plan, obs)
                    .map_err(sdso_net::NetError::from),
                (None, Some(faults)) => {
                    run_crash_node_obs(ep, &run_scenario, protocol, faults, obs)
                        .map_err(sdso_net::NetError::from)
                }
                (None, None) => {
                    run_node_obs(ep, &run_scenario, protocol, obs).map_err(sdso_net::NetError::from)
                }
            }
        })?;

    println!(
        "{:>4} {:>7} {:>6} {:>6} {:>6} {:>6} {:>10} {:>10} {:>9}",
        "team", "score", "goals", "deaths", "shots", "bonus", "exec", "ms/mod", "msgs sent"
    );
    for node in &outcome.nodes {
        let stats = node.result.as_ref().map_err(|e| format!("node failed: {e}"))?;
        println!(
            "{:>4} {:>7} {:>6} {:>6} {:>6} {:>6} {:>10} {:>10.2} {:>9}",
            stats.node,
            stats.score,
            stats.goals,
            stats.deaths,
            stats.shots,
            stats.bonuses,
            format!("{}", stats.exec_time),
            stats.time_per_modification().as_millis_f64(),
            stats.net.total_sent(),
        );
    }
    let total = outcome.total_metrics();
    println!(
        "\ncluster totals: {} messages ({} data, {} control), {:.2} MB modelled wire traffic",
        total.total_sent(),
        total.data_sent.msgs,
        total.control_sent.msgs,
        total.bytes_sent() as f64 / 1e6,
    );
    println!("virtual makespan: {}", outcome.makespan());

    if plan.is_some() || faults.is_some() {
        let stats: Vec<_> = outcome.nodes.iter().filter_map(|n| n.result.as_ref().ok()).collect();
        let view_changes: u64 = stats.iter().map(|s| s.dso.view_changes).sum();
        let snapshots: u64 = stats.iter().map(|s| s.dso.snapshots_sent).sum();
        let snapshot_bytes: u64 = stats.iter().map(|s| s.dso.snapshot_bytes).sum();
        let compacted: u64 = stats.iter().map(|s| s.dso.slots_compacted).sum();
        println!(
            "membership: {view_changes} view-change applications, {snapshots} snapshot(s) \
             ({snapshot_bytes} bytes) to late joiners, {compacted} diff slot(s) compacted"
        );
    }
    if faults.is_some() {
        let stats: Vec<_> = outcome.nodes.iter().filter_map(|n| n.result.as_ref().ok()).collect();
        let recoveries: u64 = stats.iter().map(|s| s.recoveries).sum();
        let wal_replayed: u64 = stats.iter().map(|s| s.wal_replayed).sum();
        let downtime = stats.iter().fold(SimSpan::ZERO, |acc, s| acc + s.recovery_time);
        println!(
            "recovery: {recoveries} WAL recover{} ({wal_replayed} record(s) replayed), \
             {downtime} of summed virtual unavailability",
            if recoveries == 1 { "y" } else { "ies" }
        );
    }

    if let Some(path) = &trace_path {
        std::fs::write(path, obs_set.chrome_trace())?;
        println!(
            "\nchrome trace written to {path} ({} events, {} dropped) — \
             open it at https://ui.perfetto.dev",
            obs_set.total_events(),
            obs_set.total_dropped(),
        );
        print!("{}", text_histogram_dump(&obs_set.merged_snapshot()));
    }

    if do_render {
        for node in &outcome.nodes {
            let stats = node.result.as_ref().expect("checked above");
            let world = stats.final_world.clone();
            let grid = scenario.grid;
            let view = move |pos: Pos| world[grid.object_at(pos).0 as usize];
            println!(
                "
final replica at process {}:",
                stats.node
            );
            print!("{}", render(&scenario, &view, RenderOptions::default()));
            println!("{}", scoreboard(&scenario, &view));
        }
    }
    Ok(())
}
