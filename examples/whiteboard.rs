//! A collaborative shared document ("distributed whiteboard") with a
//! custom, application-specific s-function — the paper's groupware
//! motivation, §2.1: "when manipulating shared documents, it is quite
//! possible that two end users attempt to update the same portion of the
//! document at the same time".
//!
//! The document is a row of paragraph objects. Each editor has a cursor
//! that drifts along the document; every tick it types into the paragraph
//! under its cursor and publishes its cursor position in a per-editor
//! presence object. The s-function exploits the *spatial* structure:
//! editors whose cursors are far apart cannot touch the same paragraph
//! soon, so they only rendezvous when their cursors could collide — the
//! same lookahead idea the tank game uses, on a very different application.
//!
//! Run with: `cargo run -p sdso-harness --example whiteboard -- [EDITORS] [TICKS]`

use sdso_core::{DsoConfig, LogicalTime, ObjectId, ObjectStore, SFunction, SdsoRuntime};
use sdso_net::{Endpoint, NodeId};
use sdso_protocols::Lookahead;
use sdso_sim::{NetworkModel, SimCluster};

/// Paragraphs in the document.
const PARAGRAPHS: u32 = 64;
/// Bytes per paragraph.
const PARA_BYTES: usize = 128;
/// Cursors this close may touch the same paragraph within a tick.
const COLLISION_MARGIN: u64 = 2;

/// Presence object of editor `e` (holds its cursor index).
fn presence_object(editor: NodeId) -> ObjectId {
    ObjectId(PARAGRAPHS + u32::from(editor))
}

fn read_cursor(store: &ObjectStore, editor: NodeId) -> u64 {
    let bytes = store.read(presence_object(editor)).expect("presence shared");
    u64::from_le_bytes(bytes[..8].try_into().expect("8-byte presence"))
}

/// The whiteboard s-function: rendezvous when two cursors could have
/// reached the same paragraph (each drifts at most one paragraph per tick).
struct CursorProximity {
    me: NodeId,
}

impl SFunction for CursorProximity {
    fn next_exchange(
        &mut self,
        peer: NodeId,
        now: LogicalTime,
        view: &ObjectStore,
    ) -> Option<LogicalTime> {
        let mine = read_cursor(view, self.me);
        let theirs = read_cursor(view, peer);
        let gap = mine.abs_diff(theirs).saturating_sub(COLLISION_MARGIN);
        Some(now.plus(gap.div_ceil(2).max(1)))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let editors: usize = args.first().map(|a| a.parse()).transpose()?.unwrap_or(4);
    let ticks: u64 = args.get(1).map(|a| a.parse()).transpose()?.unwrap_or(300);

    let outcome = SimCluster::new(editors, NetworkModel::paper_testbed()).run(move |ep| {
        let me = ep.node_id();
        let n = ep.num_nodes() as u64;
        let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());

        // The document plus one presence object per editor.
        for p in 0..PARAGRAPHS {
            rt.share(ObjectId(p), vec![b' '; PARA_BYTES]).map_err(stringify)?;
        }
        for e in 0..n as NodeId {
            let start = initial_cursor(e, n);
            rt.share(presence_object(e), start.to_le_bytes().to_vec()).map_err(stringify)?;
        }

        let mut node = Lookahead::new(rt, CursorProximity { me }).map_err(stringify)?;

        let mut cursor = initial_cursor(me, n);
        let mut edits = 0u64;
        for tick in 0..ticks {
            // Drift the cursor one paragraph per tick (the bound the
            // s-function relies on), sweeping back and forth with a
            // per-editor period so different editors cross paths.
            let phase = (tick / (16 + 2 * u64::from(me))) % 2;
            cursor = if phase == 0 {
                (cursor + 1).min(u64::from(PARAGRAPHS) - 1)
            } else {
                cursor.saturating_sub(1)
            };
            // Type a character into the paragraph under the cursor.
            let col = (tick % (PARA_BYTES as u64 - 1)) as u32;
            let glyph = b'a' + (me as u8 % 26);
            node.runtime_mut().write(ObjectId(cursor as u32), col, &[glyph]).map_err(stringify)?;
            node.runtime_mut()
                .write(presence_object(me), 0, &cursor.to_le_bytes())
                .map_err(stringify)?;
            edits += 1;
            node.step().map_err(stringify)?;
        }
        let rt = node.into_runtime();
        Ok((edits, rt.metrics(), rt.net_metrics()))
    })?;

    let mut total_msgs = 0u64;
    let mut total_rendezvous = 0u64;
    let mut total_edits = 0u64;
    for node in &outcome.nodes {
        let (edits, dso, net) = node.result.as_ref().map_err(|e| format!("editor failed: {e}"))?;
        total_msgs += net.total_sent();
        total_rendezvous += dso.rendezvous_peers;
        total_edits += edits;
    }
    let bsync_equivalent = editors as u64 * (editors as u64 - 1) * ticks * 2;
    println!("{editors} editors typed {total_edits} characters over {ticks} ticks");
    println!("cursor-proximity s-function: {total_msgs} messages, {total_rendezvous} rendezvous");
    println!(
        "an every-tick (BSYNC) schedule would have sent ~{bsync_equivalent} messages \
         ({:.1}x more)",
        bsync_equivalent as f64 / total_msgs.max(1) as f64
    );
    println!("virtual makespan: {}", outcome.makespan());
    Ok(())
}

fn initial_cursor(editor: NodeId, editors: u64) -> u64 {
    (u64::from(editor) * u64::from(PARAGRAPHS)) / editors.max(1)
}

fn stringify(e: sdso_core::DsoError) -> sdso_net::NetError {
    e.into()
}
