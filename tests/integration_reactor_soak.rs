//! Reactor soak: a hub-and-spokes cluster where one epoll loop on the hub
//! multiplexes every spoke connection, driven hard enough to catch
//! readiness bugs (lost wakeups, stalled write queues, phantom teardowns)
//! that a two-node smoke test never hits.
//!
//! Two sizes share one harness:
//!
//! * [`soak_64_spokes_smoke`] always runs — small enough for a laptop's
//!   `cargo test`;
//! * [`soak_256_spokes_full`] is `#[ignore]`d and run explicitly by the
//!   `reactor-soak` CI job (`cargo test -- --ignored`) under a hard
//!   wall-clock timeout.
//!
//! When `SDSO_SOAK_TRACE` names a file, the merged flight-recorder trace
//! (Chrome/Perfetto JSON) of every node is written there win or lose; the
//! CI job uploads it as an artifact when the job fails.
//!
//! When `SDSO_SOAK_EVENTS` names a file, tracing switches to full event
//! recording and the raw per-node event log (the `sdso-check race` input
//! format) is written there win or lose, with worker spawn/join edges
//! recorded on the hub's stream so the happens-before replay can order
//! hub and spokes.

#![cfg(target_os = "linux")]

use std::time::{Duration, Instant};

use sdso_net::reactor::ReactorMesh;
use sdso_net::{Endpoint, MsgClass, Payload, PeerEvent};
use sdso_obs::{EventKind, MonoClock, ObsSet, TraceConfig, THREAD_ROLE_WORKER};

/// One spoke's ping body: spoke id + sequence number, echoed verbatim by
/// the hub.
fn ping_body(spoke: u16, seq: u32) -> Vec<u8> {
    let mut body = spoke.to_le_bytes().to_vec();
    body.extend_from_slice(&seq.to_le_bytes());
    body
}

/// Runs the soak: every spoke sends `pings` sequenced messages to the hub,
/// the hub echoes each one back, every spoke checks its echoes arrive in
/// order. Returns an error description instead of panicking so the caller
/// can dump the flight-recorder trace first.
fn run_soak(spokes: usize, pings: u32, deadline: Duration, obs: &ObsSet) -> Result<(), String> {
    let n = spokes + 1;
    let mut endpoints = ReactorMesh::star(n).map_err(|e| format!("star setup: {e}"))?;
    for ep in &mut endpoints {
        ep.attach_recorder(obs.node(ep.node_id()).recorder().clone());
    }
    let mut hub = endpoints.remove(0);
    let started = Instant::now();
    // The soak harness plays the part of node 0's application thread:
    // record that it spawns (and later joins) one worker per spoke, so an
    // exported event log carries the cross-stream happens-before edges.
    let clock = MonoClock::new();
    let hub_rec = obs.node(0).recorder().clone();

    let spoke_handles: Vec<_> = endpoints
        .into_iter()
        .map(|mut ep| {
            hub_rec.record(
                clock.micros(),
                EventKind::ThreadSpawn,
                u32::from(ep.node_id()),
                THREAD_ROLE_WORKER,
                0,
            );
            // The thread hands its endpoint back so every link stays open
            // until after the hub's no-flap check — otherwise spoke exits
            // race the check as legitimate teardown Downs.
            std::thread::spawn(move || -> Result<sdso_net::reactor::ReactorEndpoint, String> {
                let me = ep.node_id();
                // A small send window keeps every spoke's traffic in
                // flight at once without serialising on round trips.
                const WINDOW: u32 = 4;
                let mut sent = 0u32;
                let mut acked = 0u32;
                while acked < pings {
                    while sent < pings && sent - acked < WINDOW {
                        ep.send(0, Payload::control(ping_body(me, sent)))
                            .map_err(|e| format!("spoke {me} send {sent}: {e}"))?;
                        sent += 1;
                    }
                    let echo = ep
                        .recv_deadline(sdso_net::SimSpan::from_millis(10_000))
                        .map_err(|e| format!("spoke {me} recv: {e}"))?
                        .ok_or_else(|| format!("spoke {me} starved waiting for echo {acked}"))?;
                    if echo.payload.bytes[..] != ping_body(me, acked)[..] {
                        return Err(format!(
                            "spoke {me} echo {acked} corrupted: {:?}",
                            &echo.payload.bytes[..]
                        ));
                    }
                    acked += 1;
                }
                Ok(ep)
            })
        })
        .collect();

    // The hub: echo every ping straight back to its sender.
    let total = spokes as u64 * u64::from(pings);
    let mut echoed = 0u64;
    while echoed < total {
        if started.elapsed() > deadline {
            return Err(format!(
                "hub deadline exceeded after {echoed}/{total} echoes in {:?}",
                started.elapsed()
            ));
        }
        let ping = hub
            .recv_deadline(sdso_net::SimSpan::from_millis(10_000))
            .map_err(|e| format!("hub recv: {e}"))?
            .ok_or_else(|| format!("hub starved after {echoed}/{total} echoes"))?;
        hub.send(ping.from, Payload::new(MsgClass::Control, ping.payload.bytes))
            .map_err(|e| format!("hub echo to {}: {e}", ping.from))?;
        echoed += 1;
    }

    let mut spoke_endpoints = Vec::with_capacity(spokes);
    for handle in spoke_handles {
        let ep = handle.join().map_err(|_| "spoke thread panicked".to_string())??;
        hub_rec.record(
            clock.micros(),
            EventKind::ThreadJoin,
            u32::from(ep.node_id()),
            THREAD_ROLE_WORKER,
            0,
        );
        spoke_endpoints.push(ep);
    }
    // Every link must have stayed up for the whole soak: a single Down is
    // a reactor bug (nothing in this test closes a connection).
    let downs: Vec<PeerEvent> =
        hub.take_peer_events().into_iter().filter(|e| matches!(e, PeerEvent::Down(_))).collect();
    if !downs.is_empty() {
        return Err(format!("links flapped during soak: {downs:?}"));
    }
    if started.elapsed() > deadline {
        return Err(format!("soak finished but overran its deadline: {:?}", started.elapsed()));
    }
    drop(spoke_endpoints);
    drop(hub);
    Ok(())
}

/// Runs a soak and, when `SDSO_SOAK_TRACE` / `SDSO_SOAK_EVENTS` are set,
/// writes the merged flight-recorder trace / raw event log there before
/// reporting the outcome.
fn soak_with_trace(spokes: usize, pings: u32, deadline: Duration) {
    let n = spokes + 1;
    let events_path = std::env::var("SDSO_SOAK_EVENTS").ok().filter(|p| !p.is_empty());
    // Full recording only when the event log is wanted: the ring must hold
    // every send/recv of the busiest node (the hub sees 2 events per ping
    // per spoke, plus batching and teardown).
    let config = if events_path.is_some() {
        TraceConfig::full_with_capacity((spokes * pings as usize * 4).max(64 * 1024))
    } else {
        TraceConfig::counters()
    };
    let obs = ObsSet::new(n as u16, config);
    let outcome = run_soak(spokes, pings, deadline, &obs);
    // Best-effort: a trace-write failure must not mask the soak verdict.
    if let Ok(path) = std::env::var("SDSO_SOAK_TRACE") {
        if !path.is_empty() {
            let _ = std::fs::write(&path, obs.chrome_trace());
        }
    }
    if let Some(path) = events_path {
        let _ = std::fs::write(&path, obs.event_log());
    }
    if let Err(why) = outcome {
        panic!("reactor soak ({spokes} spokes, {pings} pings) failed: {why}");
    }
}

#[test]
fn soak_64_spokes_smoke() {
    soak_with_trace(64, 25, Duration::from_secs(60));
}

#[test]
#[ignore = "full-scale soak; run via the reactor-soak CI job (cargo test -- --ignored)"]
fn soak_256_spokes_full() {
    soak_with_trace(256, 50, Duration::from_secs(240));
}
