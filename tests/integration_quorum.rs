//! Quorum wiring tests: [`LockReplica`] state machines carried over real
//! runtime app messages (in-process transport), plus the entry-consistency
//! client side following the elected leader via its manager-route table.
//!
//! The quorum module's own tests drive replicas on a synthetic
//! virtual-time loop; here the identical state machines ride
//! `SdsoRuntime::send_app` / `try_recv_app` over a [`MemoryHub`] with one
//! OS thread per replica — the deployment shape. Leadership is decided by
//! real (wall-clock) timer races, so the assertions are about agreement,
//! not about *who* wins.

use std::collections::BTreeMap;

use sdso_core::{DsoConfig, SdsoRuntime};
use sdso_dur::{LockCmd, LockReplica, QuorumConfig, QuorumMsg};
use sdso_net::memory::MemoryHub;
use sdso_net::{MsgClass, NodeId};
use sdso_protocols::EntryConsistency;

/// Quorum members (the EC client below is node 3, outside the quorum).
const MEMBERS: [NodeId; 3] = [0, 1, 2];

/// The contested lock.
const LOCK: u32 = 7;

/// The commands the leader replicates, in order.
const CMDS: [LockCmd; 3] = [
    LockCmd::Grant { lock: LOCK, to: 1 },
    LockCmd::Release { lock: LOCK, from: 1 },
    LockCmd::Grant { lock: LOCK, to: 2 },
];

/// What one replica host reports at exit.
struct ReplicaReport {
    me: NodeId,
    was_leader: bool,
    leader_hint: Option<NodeId>,
    committed: Vec<LockCmd>,
    holder: Option<NodeId>,
}

/// Hosts one replica over a real runtime: pumps timers off the endpoint
/// clock, carries the outbox as app messages, feeds received app bytes
/// back in. `announce_to` gets a one-byte leadership announcement the
/// first time this replica wins an election (how an EC client learns
/// where the lock manager now lives). Exits after the done/stop exchange:
/// every replica broadcasts `done` once its committed prefix is full,
/// and leaves once all three `done`s (its own included) are in.
fn host_replica<E: sdso_net::Endpoint>(ep: E, announce_to: NodeId) -> ReplicaReport {
    let me = ep.node_id();
    let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
    let mut replica =
        LockReplica::new(me, MEMBERS.to_vec(), QuorumConfig::default(), 0x5D50_0113, rt.now());
    let mut was_leader = false;
    let mut announced = false;
    let mut dones = 0usize;
    let mut done_sent = false;
    loop {
        if done_sent && dones == MEMBERS.len() - 1 {
            break;
        }
        let now = rt.now();
        if replica.next_deadline().is_some_and(|d| d <= now) {
            replica.on_timer(now);
        }
        if replica.is_leader() {
            if !announced {
                announced = true;
                was_leader = true;
                rt.send_app(announce_to, MsgClass::Control, vec![b'L']).unwrap();
            }
            // Replicate the next command once the previous one committed
            // and nothing is in flight — derived from the replica's own
            // log so a mid-run leader takeover picks up where the
            // deposed leader stopped.
            let next = replica.committed().len();
            if next < CMDS.len() && replica.log().len() == next {
                replica.propose(CMDS[next], now).unwrap();
            }
        } else {
            announced = false;
        }
        for (peer, msg) in replica.take_outbox() {
            // A peer that already finished may have dropped its endpoint;
            // a late heartbeat to it is not an error.
            let _ = rt.send_app(peer, MsgClass::Control, msg.encode());
        }
        while let Some((from, bytes)) = rt.try_recv_app().unwrap() {
            if bytes == b"done" {
                dones += 1;
            } else if let Some(msg) = QuorumMsg::decode(&bytes) {
                replica.on_message(from, msg, rt.now());
            }
        }
        if !done_sent && replica.committed().len() == CMDS.len() {
            done_sent = true;
            for peer in MEMBERS.iter().copied().filter(|&p| p != me) {
                rt.send_app(peer, MsgClass::Control, b"done".to_vec()).unwrap();
            }
        }
        std::thread::yield_now();
    }
    // Whoever held the leadership last tells the client the run is over.
    if replica.is_leader() {
        rt.send_app(announce_to, MsgClass::Control, b"stop".to_vec()).unwrap();
    }
    ReplicaReport {
        me,
        was_leader,
        leader_hint: replica.leader_hint(),
        committed: replica.committed().to_vec(),
        holder: replica.grants().holder(LOCK),
    }
}

#[test]
fn quorum_replicates_lock_commands_over_runtime_app_messages() {
    let mut endpoints = MemoryHub::new(4).into_endpoints();
    let client_ep = endpoints.pop().unwrap();
    let handles: Vec<_> =
        endpoints.into_iter().map(|ep| std::thread::spawn(move || host_replica(ep, 3))).collect();

    // Node 3 is the entry-consistency client: the lock's statically
    // placed manager is node 1, but grants now live wherever the quorum
    // elects — each leadership announcement re-points the manager route.
    let mut ec = EntryConsistency::new(SdsoRuntime::new(client_ep, DsoConfig::compact()));
    const PLACED: NodeId = 1;
    loop {
        let (from, bytes) = ec.runtime_mut().recv_app().unwrap();
        if bytes == b"stop" {
            break;
        }
        if bytes == b"L" {
            ec.set_manager_route(PLACED, Some(from));
        }
    }
    let routes: BTreeMap<NodeId, NodeId> = ec.manager_routes().clone();

    let reports: Vec<ReplicaReport> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Exactly the proposed history, bit-identical on every replica, and
    // the re-derived grant table agrees that node 2 holds the lock.
    for r in &reports {
        assert_eq!(r.committed, CMDS, "replica {} committed log", r.me);
        assert_eq!(r.holder, Some(2), "replica {} grant table", r.me);
    }

    // A leader was elected, and the EC client's manager route followed
    // the (final) announcement: lock requests for the placed manager
    // would now flow to a node that actually won an election.
    let leaders: Vec<NodeId> = reports.iter().filter(|r| r.was_leader).map(|r| r.me).collect();
    assert!(!leaders.is_empty(), "someone must have won an election");
    let routed = *routes.get(&PLACED).expect("client must have re-pointed the manager route");
    assert!(leaders.contains(&routed), "route {routed} must point at a past leader {leaders:?}");

    // Followers learned who leads: their hint names a real past leader.
    for r in reports.iter().filter(|r| !r.was_leader) {
        let hint = r.leader_hint.expect("followers of a settled quorum know the leader");
        assert!(leaders.contains(&hint), "replica {} hints {hint}, leaders {leaders:?}", r.me);
    }
}

#[test]
fn quorum_messages_round_trip_the_app_wire_codec() {
    // The exact bytes `send_app` carries: every variant must survive.
    let msgs = [
        QuorumMsg::RequestVote { term: 3, last_index: 9, last_term: 2 },
        QuorumMsg::Vote { term: 3, granted: true },
        QuorumMsg::Append {
            term: 4,
            prev_index: 9,
            prev_term: 2,
            entries: vec![sdso_dur::LogEntry { term: 4, cmd: CMDS[0] }],
            commit: 8,
        },
        QuorumMsg::AppendOk { term: 4, ok: false, match_index: 9 },
    ];
    for msg in msgs {
        assert_eq!(QuorumMsg::decode(&msg.encode()), Some(msg));
    }
    // Client sentinels must never parse as quorum traffic.
    assert_eq!(QuorumMsg::decode(b"done"), None);
    assert_eq!(QuorumMsg::decode(b"stop"), None);
    assert_eq!(QuorumMsg::decode(b"L"), None);
}
