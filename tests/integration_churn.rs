//! End-to-end churn: a 16-slot game where four players leave and four
//! join mid-run, across every protocol with a view-change barrier.
//!
//! The acceptance bar for the membership subsystem:
//!
//! * every remaining member converges to the identical final object state
//!   under BSYNC, MSYNC, MSYNC2 and EC;
//! * the whole run — scores, traffic, virtual timing — replays
//!   bit-identically on the seeded virtual-time cluster;
//! * a late joiner's snapshot is O(objects), not O(history).

use sdso_core::{MembershipPlan, ViewChange};
use sdso_game::{run_churn_node, Block, NodeStats, Protocol, Scenario};
use sdso_harness::{
    chaos_plan, chaos_retry_config, churn_converged, default_churn_plan, run_churn_experiment,
};
use sdso_net::NodeId;
use sdso_sim::{NetworkModel, SimCluster};

const CAPACITY: usize = 16;
const TICKS: u64 = 24;

/// Leavers paired with the joiner that takes over at the same barrier.
const CHANGES: [(u64, NodeId, NodeId); 4] = [(5, 1, 12), (9, 4, 13), (13, 7, 14), (17, 10, 15)];

/// Twelve initial members; one leave + one join at each of four barriers.
fn churn_plan() -> MembershipPlan {
    let mut plan = MembershipPlan::new(CAPACITY, 0..12);
    for (tick, leaver, joiner) in CHANGES {
        plan = plan.with_change(tick, ViewChange::new([joiner], [leaver]));
    }
    plan
}

fn play(scenario: &Scenario, protocol: Protocol) -> Vec<NodeStats> {
    let s = scenario.clone();
    let plan = churn_plan();
    SimCluster::new(CAPACITY, NetworkModel::paper_testbed())
        .run(move |ep| run_churn_node(ep, &s, protocol, &plan).map_err(sdso_net::NetError::from))
        .unwrap()
        .into_results()
        .unwrap()
}

fn survivors() -> Vec<usize> {
    let leavers: Vec<NodeId> = CHANGES.iter().map(|&(_, l, _)| l).collect();
    (0..CAPACITY).filter(|&id| !leavers.contains(&(id as NodeId))).collect()
}

#[test]
fn every_protocol_converges_through_four_view_changes() {
    let scenario = Scenario::paper(CAPACITY as u16, 1).with_ticks(TICKS);
    for protocol in Protocol::PAPER {
        let stats = play(&scenario, protocol);
        let alive = survivors();
        let reference = &stats[alive[0]];
        for &id in &alive {
            assert_eq!(stats[id].ticks, TICKS, "{protocol}: node {id} plays to the end");
            assert_eq!(
                stats[id].final_world, reference.final_world,
                "{protocol}: node {id} diverged from node {}",
                alive[0]
            );
        }
        for (tick, leaver, _) in CHANGES {
            assert_eq!(
                stats[usize::from(leaver)].ticks,
                tick,
                "{protocol}: leaver {leaver} exits at its trigger tick"
            );
        }
        // No departed team leaves a tank on the converged board.
        let tanks: Vec<u16> = reference
            .final_world
            .iter()
            .filter_map(|b| match b {
                Block::Tank { team, .. } => Some(*team),
                _ => None,
            })
            .collect();
        for (_, leaver, _) in CHANGES {
            assert!(!tanks.contains(&leaver), "{protocol}: team {leaver}'s tank must be gone");
        }
    }
}

#[test]
fn churn_runs_replay_bit_identically() {
    let scenario = Scenario::paper(CAPACITY as u16, 1).with_ticks(TICKS);
    for protocol in [Protocol::Bsync, Protocol::Msync2, Protocol::Entry] {
        let a = play(&scenario, protocol);
        let b = play(&scenario, protocol);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.final_world, y.final_world, "{protocol}: deterministic final state");
            assert_eq!(x.score, y.score, "{protocol}: deterministic score");
            assert_eq!(x.modifications, y.modifications, "{protocol}");
            assert_eq!(x.exec_time, y.exec_time, "{protocol}: deterministic timing");
            assert_eq!(x.net.total_sent(), y.net.total_sent(), "{protocol}: deterministic traffic");
        }
    }
}

#[test]
fn every_protocol_survives_churn_on_a_faulty_network() {
    // Regression: continuers used to drop their unacknowledged frames for
    // a leaver the moment the view change applied. When every copy of a
    // barrier frame was lost to fault injection, the leaver was stranded
    // in its barrier with nobody left to retransmit and timed out after
    // exhausting its retry budget. The departing link is now settled
    // before it is pruned, so churn and packet loss compose.
    let plan = default_churn_plan(8, 40);
    let scenario = Scenario::paper(8, 1).with_ticks(40).with_reliability(chaos_retry_config());
    let faults = chaos_plan(0x5D50_1997);
    for protocol in Protocol::PAPER {
        let summary = run_churn_experiment(
            &scenario,
            protocol,
            NetworkModel::paper_testbed(),
            &plan,
            Some(&faults),
        )
        .unwrap_or_else(|e| panic!("{protocol} failed under churn + faults: {e}"));
        assert!(churn_converged(&summary, &plan), "{protocol} diverged under churn + faults");
    }
}

#[test]
fn snapshots_stay_o_objects_as_history_grows() {
    // One joiner, early vs late: the donor's snapshot byte count may vary
    // with how much of the board changed, but it is bounded by the object
    // count — never by the number of elapsed ticks.
    let sizes: Vec<u64> = [6u64, 18]
        .into_iter()
        .map(|join_tick| {
            let scenario = Scenario::paper(CAPACITY as u16, 1).with_ticks(join_tick + 2);
            let s = scenario.clone();
            let plan =
                MembershipPlan::new(CAPACITY, 0..15).with_change(join_tick, ViewChange::join([15]));
            let stats = SimCluster::new(CAPACITY, NetworkModel::paper_testbed())
                .run(move |ep| {
                    run_churn_node(ep, &s, Protocol::Bsync, &plan).map_err(sdso_net::NetError::from)
                })
                .unwrap()
                .into_results()
                .unwrap();
            stats[0].dso.snapshot_bytes
        })
        .collect();
    assert!(sizes[0] > 0, "the donor sent a snapshot");
    let scenario = Scenario::paper(CAPACITY as u16, 1);
    let bound = u64::from(scenario.grid.cells()) * (scenario.block_bytes as u64 + 32);
    assert!(
        sizes.iter().all(|&s| s <= bound),
        "snapshot sizes {sizes:?} exceed the O(objects) bound {bound}"
    );
}
