//! Cross-crate integration tests of the consistency protocols on real
//! (in-process) transports and on the virtual-time cluster.

use std::collections::BTreeSet;

use sdso_core::{DsoConfig, EveryTick, ObjectId, SdsoRuntime};
use sdso_net::memory::MemoryHub;
use sdso_net::{Endpoint, NodeId};
use sdso_protocols::{EntryConsistency, LockRequest, Lookahead};
use sdso_sim::{NetworkModel, SimCluster};

fn spawn_nodes<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(sdso_net::memory::MemoryEndpoint) -> T + Send + Sync + Clone + 'static,
{
    let handles: Vec<_> = MemoryHub::new(n)
        .into_endpoints()
        .into_iter()
        .map(|ep| {
            let f = f.clone();
            std::thread::spawn(move || f(ep))
        })
        .collect();
    handles.into_iter().map(|h| h.join().expect("node panicked")).collect()
}

#[test]
fn bsync_full_visibility_after_every_tick() {
    let results = spawn_nodes(4, |ep| {
        let me = ep.node_id();
        let mut rt = SdsoRuntime::new(ep, DsoConfig::paper());
        for id in 0..4u32 {
            rt.share(ObjectId(id), vec![0u8; 8]).unwrap();
        }
        let mut node = Lookahead::new(rt, EveryTick).unwrap();
        for round in 1..=10u8 {
            node.runtime_mut().write(ObjectId(u32::from(me)), 0, &[round]).unwrap();
            node.step().unwrap();
        }
        let rt = node.into_runtime();
        (0..4u32).map(|id| rt.read(ObjectId(id)).unwrap()[0]).collect::<Vec<_>>()
    });
    for values in &results {
        assert_eq!(values, &vec![10, 10, 10, 10], "every write visible everywhere");
    }
}

#[test]
fn bsync_logical_clocks_stay_within_one_tick() {
    // The paper: "all processes' logical clocks are synchronized to within
    // one time-tick". Exercised by checking every node ends at exactly the
    // same logical time after the same number of exchanges.
    let results = spawn_nodes(3, |ep| {
        let mut rt = SdsoRuntime::new(ep, DsoConfig::paper());
        rt.share(ObjectId(0), vec![0u8; 4]).unwrap();
        let mut node = Lookahead::new(rt, EveryTick).unwrap();
        for _ in 0..7 {
            node.step().unwrap();
        }
        node.into_runtime().logical_now()
    });
    for time in &results {
        assert_eq!(time.as_ticks(), 7);
    }
}

#[test]
fn entry_consistency_serialises_counter_increments() {
    // A shared counter incremented under an exclusive lock must not lose
    // updates — the classic mutual-exclusion check, run over real threads.
    const ROUNDS: u64 = 20;
    let results = spawn_nodes(4, |ep| {
        let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
        rt.share(ObjectId(0), vec![0u8; 8]).unwrap();
        let mut ec = EntryConsistency::new(rt);
        for _ in 0..ROUNDS {
            ec.acquire(&[LockRequest::write(ObjectId(0))]).unwrap();
            let current = u64::from_le_bytes(ec.read(ObjectId(0)).unwrap().try_into().unwrap());
            ec.write(ObjectId(0), 0, &(current + 1).to_le_bytes()).unwrap();
            ec.release_all(&BTreeSet::from([ObjectId(0)])).unwrap();
            ec.service_pending().unwrap();
        }
        ec.finish().unwrap();
        let value = u64::from_le_bytes(ec.read(ObjectId(0)).unwrap().try_into().unwrap());
        (ec.runtime().node_id(), value)
    });
    // The final holder of the lock saw the full count.
    let max = results.iter().map(|&(_, v)| v).max().unwrap();
    assert_eq!(max, 4 * ROUNDS, "no increment lost under exclusive locks");
}

#[test]
fn entry_consistency_read_locks_share() {
    // Multiple readers may hold a lock concurrently; a writer waits. Here
    // we simply verify a mixed workload completes and pulls propagate.
    let results = spawn_nodes(3, |ep| {
        let me = ep.node_id();
        let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
        for id in 0..3u32 {
            rt.share(ObjectId(id), vec![0u8; 8]).unwrap();
        }
        let mut ec = EntryConsistency::new(rt);
        for round in 0..10u8 {
            // Write own object, read the next node's object.
            let own = ObjectId(u32::from(me));
            let next = ObjectId(u32::from((me + 1) % 3));
            ec.acquire(&[LockRequest::write(own), LockRequest::read(next)]).unwrap();
            ec.write(own, 0, &[round + 1]).unwrap();
            let _ = ec.read(next).unwrap()[0];
            ec.release_all(&BTreeSet::from([own])).unwrap();
            ec.service_pending().unwrap();
        }
        ec.finish().unwrap();
        ec.read(ObjectId(u32::from((me + 1) % 3))).unwrap()[0]
    });
    // Each node's final pulled copy of its neighbour is a recent value.
    for value in results {
        assert!(value >= 1, "read locks must have pulled fresh neighbour state");
    }
}

#[test]
fn lookahead_protocols_work_on_the_simulator_too() {
    // The identical protocol code must run unchanged over the virtual-time
    // transport — the substitution DESIGN.md relies on.
    let outcome = SimCluster::new(3, NetworkModel::paper_testbed())
        .run(|ep| {
            let me = ep.node_id();
            let mut rt = SdsoRuntime::new(ep, DsoConfig::paper());
            for id in 0..3u32 {
                rt.share(ObjectId(id), vec![0u8; 8])
                    .map_err(|e| sdso_net::NetError::Codec(e.to_string()))?;
            }
            let mut node = Lookahead::new(rt, EveryTick)
                .map_err(|e| sdso_net::NetError::Codec(e.to_string()))?;
            for round in 1..=5u8 {
                node.runtime_mut()
                    .write(ObjectId(u32::from(me)), 0, &[round])
                    .map_err(|e| sdso_net::NetError::Codec(e.to_string()))?;
                node.step().map_err(|e| sdso_net::NetError::Codec(e.to_string()))?;
            }
            Ok(node.into_runtime().now().as_micros())
        })
        .unwrap();
    let clocks: Vec<u64> = outcome.into_results().unwrap();
    // Virtual clocks advanced and are deterministic (same closure, same
    // schedule ⇒ nodes finish in lockstep).
    for &clock in &clocks {
        assert!(clock > 0);
    }
}

#[test]
fn ec_local_manager_fast_path_sends_no_messages() {
    // With one remote peer and an object managed locally + never contended,
    // acquire/release must not generate traffic.
    let results = spawn_nodes(2, |ep| {
        let me = ep.node_id();
        let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
        rt.share(ObjectId(0), vec![0u8; 4]).unwrap(); // manager: node 0
        rt.share(ObjectId(1), vec![0u8; 4]).unwrap(); // manager: node 1
        let mut ec = EntryConsistency::new(rt);
        let own = ObjectId(u32::from(me));
        for _ in 0..5 {
            ec.acquire(&[LockRequest::write(own)]).unwrap();
            ec.write(own, 0, &[1]).unwrap();
            ec.release_all(&BTreeSet::from([own])).unwrap();
        }
        let sent_before_finish = ec.runtime().net_metrics().total_sent();
        ec.finish().unwrap();
        (sent_before_finish, ec.metrics().local_grants)
    });
    for (sent, local_grants) in results {
        assert_eq!(sent, 0, "local-manager locks must be message-free");
        assert_eq!(local_grants, 5);
    }
}

#[test]
fn distinct_node_ids_and_cluster_sizes_are_reported() {
    let ids = spawn_nodes(5, |ep| (ep.node_id(), ep.num_nodes()));
    let unique: BTreeSet<NodeId> = ids.iter().map(|&(id, _)| id).collect();
    assert_eq!(unique.len(), 5);
    assert!(ids.iter().all(|&(_, n)| n == 5));
}
