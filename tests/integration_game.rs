//! End-to-end games on the virtual-time cluster: determinism, game-level
//! invariants, and cross-protocol sanity.

use std::collections::BTreeMap;

use sdso_game::{run_node, Block, NodeStats, Protocol, Scenario};
use sdso_net::NodeId;
use sdso_sim::{NetworkModel, SimCluster};

fn play(scenario: &Scenario, protocol: Protocol) -> Vec<NodeStats> {
    let s = scenario.clone();
    SimCluster::new(usize::from(scenario.teams), NetworkModel::paper_testbed())
        .run(move |ep| run_node(ep, &s, protocol).map_err(sdso_net::NetError::from))
        .unwrap()
        .into_results()
        .unwrap()
}

#[test]
fn every_protocol_completes_a_small_game() {
    let scenario = Scenario::paper(3, 1).with_ticks(60);
    for protocol in Protocol::ALL {
        let stats = play(&scenario, protocol);
        assert_eq!(stats.len(), 3, "{protocol}: all nodes report");
        for s in &stats {
            assert_eq!(s.ticks, 60, "{protocol}: full run");
            assert!(s.modifications > 0, "{protocol}: the game must move");
            assert!(s.exec_time.as_micros() > 0);
        }
    }
}

#[test]
fn games_are_deterministic_per_protocol() {
    let scenario = Scenario::paper(4, 1).with_ticks(80);
    for protocol in [Protocol::Bsync, Protocol::Msync2, Protocol::Entry] {
        let a = play(&scenario, protocol);
        let b = play(&scenario, protocol);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.score, y.score, "{protocol}: deterministic score");
            assert_eq!(x.modifications, y.modifications, "{protocol}");
            assert_eq!(x.exec_time, y.exec_time, "{protocol}: deterministic timing");
            assert_eq!(x.net.total_sent(), y.net.total_sent(), "{protocol}: deterministic traffic");
        }
    }
}

#[test]
fn lookahead_games_make_scoring_progress() {
    // Over 300 ticks at least one team should reach the goal.
    let scenario = Scenario::paper(4, 1).with_ticks(300);
    for protocol in [Protocol::Bsync, Protocol::Msync, Protocol::Msync2] {
        let stats = play(&scenario, protocol);
        let goals: u64 = stats.iter().map(|s| s.goals).sum();
        assert!(goals > 0, "{protocol}: nobody reached the goal in 300 ticks");
    }
}

#[test]
fn lookahead_message_ordering_matches_paper() {
    // MSYNC2 ⊆ MSYNC ⊆ BSYNC in message volume (paper Figs. 5–6):
    // a sharper s-function can only reduce rendezvous.
    let scenario = Scenario::paper(4, 1).with_ticks(120);
    let bsync: u64 = play(&scenario, Protocol::Bsync).iter().map(|s| s.net.total_sent()).sum();
    let msync: u64 = play(&scenario, Protocol::Msync).iter().map(|s| s.net.total_sent()).sum();
    let msync2: u64 = play(&scenario, Protocol::Msync2).iter().map(|s| s.net.total_sent()).sum();
    assert!(
        msync2 <= msync && msync <= bsync,
        "expected MSYNC2 ({msync2}) <= MSYNC ({msync}) <= BSYNC ({bsync})"
    );
}

#[test]
fn ec_ships_fewest_data_messages() {
    // Figure 7's headline: the pull-based protocol transfers the fewest
    // data messages.
    let scenario = Scenario::paper(4, 1).with_ticks(120);
    let ec: u64 = play(&scenario, Protocol::Entry).iter().map(|s| s.net.data_sent.msgs).sum();
    for protocol in [Protocol::Bsync, Protocol::Msync, Protocol::Msync2] {
        let other: u64 = play(&scenario, protocol).iter().map(|s| s.net.data_sent.msgs).sum();
        assert!(ec <= other, "EC ({ec}) must ship no more data messages than {protocol} ({other})");
    }
}

/// Decodes each process's final replica and checks world-level sanity:
/// every team's tank appears at most once, and block contents decode.
#[test]
fn final_replicas_are_well_formed() {
    let scenario = Scenario::paper(3, 1).with_ticks(100);
    let run_scenario = scenario.clone();
    // Run BSYNC but capture final replica states via a custom closure.
    let outcome = SimCluster::new(3, NetworkModel::paper_testbed())
        .run(move |ep| {
            run_node(ep, &run_scenario, Protocol::Bsync).map_err(sdso_net::NetError::from)
        })
        .unwrap();
    // NodeStats doesn't carry the store; well-formedness is instead checked
    // through the per-team aggregates it reports.
    let stats: Vec<NodeStats> = outcome.into_results().unwrap();
    let mut team_seen: BTreeMap<NodeId, u64> = BTreeMap::new();
    for s in &stats {
        team_seen.insert(s.node, s.modifications);
        // A tank writes at most 3 blocks per tick (respawn + move pair).
        assert!(s.modifications <= s.ticks * 3 + 3);
        // Scores are consistent with goal/bonus accounting.
        assert!(s.score >= s.goals as i64 * sdso_game::GOAL_POINTS);
    }
    assert_eq!(team_seen.len(), 3);
}

#[test]
fn block_payload_size_flows_through_to_bytes() {
    // Bigger blocks ⇒ more bytes on the wire (with realistic framing).
    let mut small = Scenario::paper(2, 1).with_ticks(40);
    small.frame_wire_len = None;
    let mut large = small.clone().with_block_bytes(1024);
    large.frame_wire_len = None;
    let small_bytes: u64 = play(&small, Protocol::Bsync).iter().map(|s| s.net.bytes_sent()).sum();
    let large_bytes: u64 = play(&large, Protocol::Bsync).iter().map(|s| s.net.bytes_sent()).sum();
    assert!(
        large_bytes > small_bytes,
        "1 KiB blocks ({large_bytes} B) must outweigh 64 B blocks ({small_bytes} B)"
    );
}

#[test]
fn network_model_scales_execution_time() {
    // The same logical run on a faster network must finish sooner in
    // virtual time (sanity of the testbed substitution).
    let scenario = Scenario::paper(2, 1).with_ticks(40);
    let slow = {
        let s = scenario.clone();
        SimCluster::new(2, NetworkModel::paper_testbed())
            .run(move |ep| run_node(ep, &s, Protocol::Bsync).map_err(sdso_net::NetError::from))
            .unwrap()
            .makespan()
    };
    let fast = {
        let s = scenario.clone();
        SimCluster::new(2, NetworkModel::modern_lan())
            .run(move |ep| run_node(ep, &s, Protocol::Bsync).map_err(sdso_net::NetError::from))
            .unwrap()
            .makespan()
    };
    assert!(fast < slow, "modern LAN ({fast}) must beat 10 Mbps Ethernet ({slow})");
}

#[test]
fn decoded_blocks_always_roundtrip_through_the_game() {
    // Smoke the Block codec through real game traffic: run a game and
    // verify the initial world decodes everywhere (corruption would have
    // failed the run long before).
    let scenario = Scenario::paper(2, 3).with_ticks(30);
    let world = scenario.initial_world();
    for (idx, block) in world.iter().enumerate() {
        let encoded = block.encode(scenario.block_bytes);
        assert_eq!(Block::decode(&encoded), Some(*block), "block {idx}");
    }
    let stats = play(&scenario, Protocol::Msync2);
    assert_eq!(stats.len(), 2);
}

#[test]
fn msync_survives_dense_respawn_heavy_games() {
    // Regression: a respawning tank must not act in its materialise tick.
    // Before that rule, an invisible just-respawned tank could race an
    // unaware neighbour into one block, desynchronising the pair's replica
    // views and with them the symmetric MSYNC schedules (observed as a
    // "data stamped t during rendezvous at t+1" protocol violation at 16
    // processes, range 3).
    let scenario = Scenario::paper(16, 3).with_ticks(60);
    for protocol in [Protocol::Msync, Protocol::Msync2] {
        let stats = play(&scenario, protocol);
        assert_eq!(stats.len(), 16, "{protocol}: every node must finish cleanly");
    }
}

#[test]
fn bsync_final_replicas_are_identical_everywhere() {
    // BSYNC rendezvouses with everyone at every tick, so after the final
    // exchange every process has every write: the replicas must be
    // byte-identical. (Under MSYNC2 they legitimately differ in regions
    // whose tanks never interacted — that is the paper's point.)
    let scenario = Scenario::paper(4, 1).with_ticks(120);
    let stats = play(&scenario, Protocol::Bsync);
    let reference = &stats[0].final_world;
    assert!(!reference.is_empty());
    for s in &stats[1..] {
        assert_eq!(
            &s.final_world, reference,
            "node {} diverged from node {}",
            s.node, stats[0].node
        );
    }
}

#[test]
fn no_replica_ever_shows_a_team_twice() {
    // A tank occupies exactly one block; a duplicate in any replica means
    // a stale image survived its clearing write.
    let scenario = Scenario::paper(4, 1).with_ticks(150);
    for protocol in [Protocol::Bsync, Protocol::Msync, Protocol::Msync2, Protocol::Entry] {
        let stats = play(&scenario, protocol);
        for s in &stats {
            let mut counts = BTreeMap::new();
            for block in &s.final_world {
                if let Block::Tank { team, .. } = block {
                    *counts.entry(*team).or_insert(0u32) += 1;
                }
            }
            for (team, count) in counts {
                assert!(count <= 1, "{protocol}: node {} sees team {team} {count} times", s.node);
            }
        }
    }
}
