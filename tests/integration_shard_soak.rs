//! Shard soak: the region-sharded MSYNC2-SHARD protocol on a real
//! reactor-transport mesh with chaos faults injected at the endpoint
//! layer ([`FaultyEndpoint`]), far past the paper's 16-node testbed.
//!
//! Two sizes share one harness, mirroring the reactor soak:
//!
//! * [`shard_soak_32_nodes_smoke`] always runs — a 32-node mesh is ~500
//!   loopback connections, laptop-sized;
//! * [`shard_soak_256_nodes_full`] is `#[ignore]`d and run explicitly by
//!   the `shard-soak` CI job under a hard wall-clock timeout: 256
//!   reactor endpoints (~33k connections, the constructor raises
//!   `RLIMIT_NOFILE`), each node's traffic routed by interest.
//!
//! The oracle is the sharding contract end to end: every replica
//! converges to the identical final world even though live diffs were
//! routed only to interested nodes, faults dropped/duplicated/reordered
//! frames, and a partition isolated node 0 before healing. When
//! `SDSO_SHARD_TRACE` names a file, the merged flight-recorder trace is
//! written there win or lose; the CI job uploads it on failure.

#![cfg(target_os = "linux")]

use sdso_core::{ObsSet, RetryConfig};
use sdso_game::{run_node_obs, NodeStats, Protocol, Scenario};
use sdso_net::reactor::ReactorMesh;
use sdso_net::{Endpoint, FaultPlan, FaultyEndpoint, SimInstant, SimSpan, TraceConfig};

/// Seeded drops, duplicates and reordering, plus one partition that
/// isolates node 0 and heals. The window is later and wider than the
/// virtual-time chaos plan's: over real sockets the run reaches it
/// after mesh setup instead of skipping past it.
fn soak_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_drop(0.02)
        .with_dup(0.01)
        .with_reorder(0.10, SimSpan::from_millis(2))
        .with_partition(vec![0], SimInstant::from_micros(50_000), SimInstant::from_micros(250_000))
}

fn retry() -> RetryConfig {
    RetryConfig { rto: SimSpan::from_millis(5), max_retries: 2_000 }
}

/// Runs the sharded game on an `n`-node reactor mesh with faults, one
/// thread per node, returning per-node stats. Errors are returned, not
/// panicked, so the caller can dump the trace first.
fn run_soak(n: u16, ticks: u64, obs: &ObsSet) -> Result<Vec<NodeStats>, String> {
    let scenario = Scenario::scaled(n, 1).with_ticks(ticks).with_reliability(retry());
    let endpoints = ReactorMesh::local(usize::from(n)).map_err(|e| format!("mesh setup: {e}"))?;
    let handles: Vec<_> = endpoints
        .into_iter()
        .map(|ep| {
            let s = scenario.clone();
            let node_obs = obs.node(ep.node_id());
            let faulty = FaultyEndpoint::new(ep, soak_plan(0x5AADD));
            std::thread::spawn(move || {
                run_node_obs(faulty, &s, Protocol::Msync2Shard, node_obs)
                    .map_err(|e| format!("node run: {e}"))
            })
        })
        .collect();
    let mut stats = Vec::with_capacity(usize::from(n));
    for (id, handle) in handles.into_iter().enumerate() {
        let s = handle.join().map_err(|_| format!("node {id} panicked"))??;
        stats.push(s);
    }
    Ok(stats)
}

/// Runs a soak, writes the flight-recorder trace when `SDSO_SHARD_TRACE`
/// is set, and asserts the sharding contract: faults actually fired,
/// interest routing actually suppressed diffs, and every replica still
/// converged to one world.
fn soak_with_trace(n: u16, ticks: u64) {
    let obs = ObsSet::new(n, TraceConfig::counters());
    let outcome = run_soak(n, ticks, &obs);
    // Best-effort: a trace-write failure must not mask the soak verdict.
    if let Ok(path) = std::env::var("SDSO_SHARD_TRACE") {
        if !path.is_empty() {
            let _ = std::fs::write(&path, obs.chrome_trace());
        }
    }
    let stats = match outcome {
        Ok(stats) => stats,
        Err(why) => panic!("shard soak ({n} nodes) failed: {why}"),
    };
    let drops: u64 = stats.iter().map(|s| s.net.drops_injected).sum();
    assert!(drops > 0, "the fault plan must actually drop frames");
    let suppressed: u64 = stats.iter().map(|s| s.dso.shard_suppressed).sum();
    assert!(suppressed > 0, "interest routing must actually suppress diffs");
    let reference = &stats[0].final_world;
    assert!(!reference.is_empty());
    for s in &stats[1..] {
        assert_eq!(
            &s.final_world, reference,
            "node {} diverged from node 0 despite recovery",
            s.node
        );
    }
}

#[test]
fn shard_soak_32_nodes_smoke() {
    soak_with_trace(32, 6);
}

#[test]
#[ignore = "full-scale soak; run via the shard-soak CI job (cargo test -- --ignored)"]
fn shard_soak_256_nodes_full() {
    soak_with_trace(256, 6);
}
