//! End-to-end chaos runs: seeded fault injection (drops, duplication,
//! reordering, a healing partition) on the virtual-time cluster, with the
//! reliability layer recovering every loss. The oracles: all four paper
//! protocols still converge every replica to the identical final world,
//! and the whole faulty run replays bit-identically from its seed.

use sdso_core::RetryConfig;
use sdso_game::{run_node, NodeStats, Protocol, Scenario};
use sdso_net::{FaultPlan, SimInstant, SimSpan};
use sdso_sim::{NetworkModel, SimCluster};

/// ≥5% drops, reordering via hold-back, duplicates, and one partition that
/// isolates node 0 early in the run and then heals.
fn plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_drop(0.05)
        .with_dup(0.02)
        .with_reorder(0.25, SimSpan::from_millis(2))
        .with_partition(vec![0], SimInstant::from_micros(2_000), SimInstant::from_micros(8_000))
}

fn retry() -> RetryConfig {
    RetryConfig { rto: SimSpan::from_millis(5), max_retries: 2_000 }
}

fn play_chaos(scenario: &Scenario, protocol: Protocol, fault_seed: u64) -> Vec<NodeStats> {
    let s = scenario.clone();
    SimCluster::new(usize::from(scenario.teams), NetworkModel::paper_testbed())
        .with_faults(plan(fault_seed))
        .run(move |ep| run_node(ep, &s, protocol).map_err(sdso_net::NetError::from))
        .unwrap()
        .into_results()
        .unwrap()
}

#[test]
fn all_paper_protocols_converge_under_chaos() {
    let scenario = Scenario::paper(4, 1).with_ticks(60).with_reliability(retry());
    for protocol in Protocol::PAPER {
        let stats = play_chaos(&scenario, protocol, 0xBAD_CAB1E);
        assert_eq!(stats.len(), 4, "{protocol}: every node survives the faults");

        let drops: u64 = stats.iter().map(|s| s.net.drops_injected).sum();
        assert!(drops > 0, "{protocol}: the plan must actually drop messages");

        let reference = &stats[0].final_world;
        assert!(!reference.is_empty());
        for s in &stats[1..] {
            assert_eq!(
                &s.final_world, reference,
                "{protocol}: node {} diverged from node 0 despite recovery",
                s.node
            );
        }
    }
}

#[test]
fn lookahead_recovery_uses_the_resync_path() {
    let scenario = Scenario::paper(4, 1).with_ticks(60).with_reliability(retry());
    for protocol in [Protocol::Bsync, Protocol::Msync, Protocol::Msync2] {
        let stats = play_chaos(&scenario, protocol, 0xBAD_CAB1E);
        let resyncs: u64 = stats.iter().map(|s| s.dso.resyncs).sum();
        let retransmits: u64 = stats.iter().map(|s| s.dso.retransmits).sum();
        assert!(resyncs > 0, "{protocol}: dropped rendezvous traffic must trigger resyncs");
        assert!(retransmits > 0, "{protocol}: resyncs must retransmit unacked messages");
    }
}

#[test]
fn chaos_runs_replay_bit_identically() {
    let scenario = Scenario::paper(3, 1).with_ticks(50).with_reliability(retry());
    for protocol in [Protocol::Bsync, Protocol::Entry] {
        let a = play_chaos(&scenario, protocol, 0x5EED);
        let b = play_chaos(&scenario, protocol, 0x5EED);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.score, y.score, "{protocol}: deterministic score");
            assert_eq!(x.modifications, y.modifications, "{protocol}");
            assert_eq!(x.exec_time, y.exec_time, "{protocol}: deterministic timing");
            assert_eq!(x.net.total_sent(), y.net.total_sent(), "{protocol}: deterministic traffic");
            assert_eq!(
                x.net.drops_injected, y.net.drops_injected,
                "{protocol}: deterministic fault stream"
            );
            assert_eq!(x.final_world, y.final_world, "{protocol}: identical final replicas");
        }
    }
}

#[test]
fn different_fault_seeds_inject_different_faults() {
    let scenario = Scenario::paper(2, 1).with_ticks(40).with_reliability(retry());
    let a: u64 =
        play_chaos(&scenario, Protocol::Bsync, 1).iter().map(|s| s.net.drops_injected).sum();
    let b: u64 =
        play_chaos(&scenario, Protocol::Bsync, 2).iter().map(|s| s.net.drops_injected).sum();
    // Both runs drop something, but the seeded streams differ.
    assert!(a > 0 && b > 0);
    assert_ne!(a, b, "independent seeds should produce distinct drop counts");
}

#[test]
fn a_healing_partition_alone_is_survivable() {
    // No random faults: only the timed partition. Every protocol must stall
    // through the window (resync retransmissions) and converge after it
    // heals.
    let scenario = Scenario::paper(4, 1).with_ticks(40).with_reliability(retry());
    let partition_only = FaultPlan::new(9).with_partition(
        vec![1],
        SimInstant::from_micros(1_000),
        SimInstant::from_micros(6_000),
    );
    for protocol in Protocol::PAPER {
        let s = scenario.clone();
        let p = partition_only.clone();
        let stats: Vec<NodeStats> = SimCluster::new(4, NetworkModel::paper_testbed())
            .with_faults(p)
            .run(move |ep| run_node(ep, &s, protocol).map_err(sdso_net::NetError::from))
            .unwrap()
            .into_results()
            .unwrap();
        let drops: u64 = stats.iter().map(|s| s.net.drops_injected).sum();
        assert!(drops > 0, "{protocol}: the partition must sever live traffic");
        let reference = &stats[0].final_world;
        for s in &stats[1..] {
            assert_eq!(&s.final_world, reference, "{protocol}: node {}", s.node);
        }
    }
}
