//! Lookahead consistency on *non-game* applications: the paper argues
//! s-functions generalise beyond the tank game (§2.1 names collaborative
//! documents and n-body/molecular dynamics). These tests run miniature
//! versions of both patterns end-to-end and check the protocol-level
//! guarantees the examples rely on.

use sdso_core::{DsoConfig, LogicalTime, ObjectId, ObjectStore, SFunction, SdsoRuntime};
use sdso_net::{Endpoint, NodeId};
use sdso_protocols::Lookahead;
use sdso_sim::{NetworkModel, SimCluster};

/// A 1D "cursor proximity" s-function over per-editor presence objects:
/// the whiteboard example's schedule, reduced to its core.
struct CursorProximity {
    me: NodeId,
    num_cells: u64,
}

fn presence(editor: NodeId, num_cells: u64) -> ObjectId {
    ObjectId(num_cells as u32 + u32::from(editor))
}

fn cursor_of(store: &ObjectStore, editor: NodeId, num_cells: u64) -> u64 {
    let bytes = store.read(presence(editor, num_cells)).expect("presence shared");
    u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"))
}

impl SFunction for CursorProximity {
    fn next_exchange(
        &mut self,
        peer: NodeId,
        now: LogicalTime,
        view: &ObjectStore,
    ) -> Option<LogicalTime> {
        let mine = cursor_of(view, self.me, self.num_cells);
        let theirs = cursor_of(view, peer, self.num_cells);
        // Cursors move ≤ 1 cell/tick; they can touch the same cell only
        // after closing the gap minus a 1-cell margin.
        let gap = mine.abs_diff(theirs).saturating_sub(1);
        Some(now.plus(gap.div_ceil(2).max(1)))
    }
}

/// Runs `editors` cursor processes for `ticks`; editor e sweeps right from
/// cell `e * spread`, writing its id into each visited cell.
fn run_cursor_app(editors: usize, ticks: u64) -> Vec<(u64, Vec<u8>)> {
    const CELLS: u64 = 48;
    let outcome = SimCluster::new(editors, NetworkModel::paper_testbed())
        .run(move |ep| {
            let me = ep.node_id();
            let n = ep.num_nodes() as u64;
            let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
            for c in 0..CELLS as u32 {
                rt.share(ObjectId(c), vec![0xFF; 2]).map_err(to_net)?;
            }
            for e in 0..n as NodeId {
                let start = u64::from(e) * (CELLS / n);
                rt.share(presence(e, CELLS), start.to_le_bytes().to_vec()).map_err(to_net)?;
            }
            let mut node =
                Lookahead::new(rt, CursorProximity { me, num_cells: CELLS }).map_err(to_net)?;
            for tick in 0..ticks {
                // Sweep right, bouncing at the end (1 cell per tick).
                let period = 2 * (CELLS - 1);
                let phase = (u64::from(me) * (CELLS / n) + tick) % period;
                let cursor = if phase < CELLS { phase } else { period - phase };
                node.runtime_mut()
                    .write(ObjectId(cursor as u32), 0, &[me as u8, tick as u8])
                    .map_err(to_net)?;
                node.runtime_mut()
                    .write(presence(me, CELLS), 0, &cursor.to_le_bytes())
                    .map_err(to_net)?;
                node.step().map_err(to_net)?;
            }
            let rt = node.into_runtime();
            let msgs = rt.net_metrics().total_sent();
            let cells: Vec<u8> =
                (0..CELLS as u32).map(|c| rt.read(ObjectId(c)).unwrap()[0]).collect();
            Ok((msgs, cells))
        })
        .unwrap();
    outcome.into_results().unwrap()
}

fn to_net(e: sdso_core::DsoError) -> sdso_net::NetError {
    e.into()
}

#[test]
fn cursor_app_completes_with_proximity_schedule() {
    // The schedule is symmetric (both sides compute from exchanged
    // presence objects), so the run must complete without protocol
    // violations — that is the load-bearing assertion.
    let results = run_cursor_app(3, 60);
    assert_eq!(results.len(), 3);
    for (msgs, _) in &results {
        assert!(*msgs > 0, "editors must have rendezvoused at least once");
    }
}

#[test]
fn cursor_app_saves_messages_versus_every_tick() {
    let proximity: u64 = run_cursor_app(4, 80).iter().map(|(m, _)| m).sum();
    // BSYNC equivalent: n(n-1) pairs × ticks × ≥1 msg each way.
    let bsync_floor = 4 * 3 * 80;
    assert!(
        proximity < bsync_floor,
        "proximity schedule ({proximity}) must beat the every-tick floor ({bsync_floor})"
    );
}

#[test]
fn cursor_app_is_deterministic() {
    let a = run_cursor_app(3, 50);
    let b = run_cursor_app(3, 50);
    assert_eq!(a, b);
}

/// The n-body pattern reduced to a protocol test: bodies on a line with a
/// speed bound, cut-off lookahead, convergence check on final positions.
#[test]
fn cutoff_lookahead_agrees_on_interacting_pairs() {
    const BODIES: usize = 4;
    let outcome = SimCluster::new(BODIES, NetworkModel::modern_lan())
        .run(|ep| {
            let me = ep.node_id();
            let n = ep.num_nodes();
            let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
            for b in 0..n as u32 {
                // Position object: i64 LE, bodies start spread 40 apart.
                let x = i64::from(b) * 40;
                rt.share(ObjectId(b), x.to_le_bytes().to_vec()).map_err(to_net)?;
            }
            struct Cutoff {
                me: NodeId,
            }
            impl SFunction for Cutoff {
                fn next_exchange(
                    &mut self,
                    peer: NodeId,
                    now: LogicalTime,
                    view: &ObjectStore,
                ) -> Option<LogicalTime> {
                    let read = |o: NodeId| {
                        i64::from_le_bytes(
                            view.read(ObjectId(u32::from(o))).unwrap()[..8].try_into().unwrap(),
                        )
                    };
                    let gap = (read(self.me) - read(peer)).unsigned_abs().saturating_sub(10);
                    // Speed bound 1/tick each → close at ≤ 2/tick.
                    Some(now.plus((gap / 2).max(1)))
                }
            }
            let mut node = Lookahead::new(rt, Cutoff { me }).map_err(to_net)?;
            // Everyone drifts toward the centre of mass at speed 1.
            for _ in 0..100 {
                let x = i64::from_le_bytes(
                    node.runtime().read(ObjectId(u32::from(me))).unwrap()[..8].try_into().unwrap(),
                );
                let target = i64::from(BODIES as u32 - 1) * 40 / 2;
                let step = (target - x).signum();
                node.runtime_mut()
                    .write(ObjectId(u32::from(me)), 0, &(x + step).to_le_bytes())
                    .map_err(to_net)?;
                node.step().map_err(to_net)?;
            }
            let rt = node.into_runtime();
            let positions: Vec<i64> = (0..n as u32)
                .map(|b| i64::from_le_bytes(rt.read(ObjectId(b)).unwrap()[..8].try_into().unwrap()))
                .collect();
            Ok(positions)
        })
        .unwrap();
    let all: Vec<Vec<i64>> = outcome.into_results().unwrap();
    // All bodies converged on the centre: every replica must know every
    // body is within the cut-off of its own (they all ended interacting).
    for (node, positions) in all.iter().enumerate() {
        let own = positions[node];
        for (other, &p) in positions.iter().enumerate() {
            if other != node {
                assert!(
                    (own - p).abs() <= 12,
                    "node {node} thinks body {other} is at {p}, own at {own} — \
                     cut-off freshness violated"
                );
            }
        }
    }
}
