//! Property-based tests of the consistency machinery's invariants
//! (DESIGN.md §6).

use proptest::prelude::*;
use sdso_core::SFunction;
use sdso_core::{
    Diff, DsoConfig, EveryTick, LogicalTime, ObjectId, SdsoRuntime, SendMode, Version,
};
use sdso_game::{team_positions, Msync, Msync2, Pos, Scenario};
use sdso_net::memory::MemoryHub;
use sdso_net::NodeId;

// ---------------------------------------------------------------------
// Invariant 1: diff algebra
// ---------------------------------------------------------------------

fn buffer_strategy() -> impl Strategy<Value = (Vec<u8>, Vec<u8>, Vec<u8>)> {
    (1usize..200).prop_flat_map(|len| {
        (
            proptest::collection::vec(any::<u8>(), len),
            proptest::collection::vec(any::<u8>(), len),
            proptest::collection::vec(any::<u8>(), len),
        )
    })
}

proptest! {
    #[test]
    fn diff_between_then_apply_reconstructs((old, new, _) in buffer_strategy()) {
        let diff = Diff::between(&old, &new);
        let mut patched = old.clone();
        diff.apply(&mut patched).unwrap();
        prop_assert_eq!(patched, new);
    }

    #[test]
    fn diff_merge_equals_sequential_application((base, mid, fin) in buffer_strategy()) {
        let d1 = Diff::between(&base, &mid);
        let d2 = Diff::between(&mid, &fin);
        let merged = d1.merge(&d2);

        let mut via_merge = base.clone();
        merged.apply(&mut via_merge).unwrap();

        let mut sequential = base.clone();
        d1.apply(&mut sequential).unwrap();
        d2.apply(&mut sequential).unwrap();

        prop_assert_eq!(via_merge, sequential);
    }

    #[test]
    fn diff_wire_roundtrip((old, new, _) in buffer_strategy()) {
        let diff = Diff::between(&old, &new);
        let encoded = sdso_net::wire::encode(&diff);
        let decoded: Diff = sdso_net::wire::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, diff);
    }

    #[test]
    fn diff_merge_is_associative_in_effect(
        (a, b, c) in buffer_strategy(),
    ) {
        // (d1 ∘ d2) ∘ d3 and d1 ∘ (d2 ∘ d3) produce the same patched buffer.
        let d1 = Diff::between(&a, &b);
        let d2 = Diff::between(&b, &c);
        let d3 = Diff::between(&c, &a);
        let left = d1.merge(&d2).merge(&d3);
        let right = d1.merge(&d2.merge(&d3));
        let mut via_left = a.clone();
        left.apply(&mut via_left).unwrap();
        let mut via_right = a.clone();
        right.apply(&mut via_right).unwrap();
        prop_assert_eq!(via_left, via_right);
    }
}

// ---------------------------------------------------------------------
// Invariant 4: rendezvous symmetry of the game s-functions
// ---------------------------------------------------------------------

fn pos_strategy() -> impl Strategy<Value = Pos> {
    (0u16..32, 0u16..24).prop_map(|(x, y)| Pos::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn msync_schedules_are_symmetric(pa in pos_strategy(), pb in pos_strategy(), now in 0u64..1000) {
        prop_assume!(pa != pb);
        let scenario = Scenario::paper(2, 1);
        let store = store_with(&scenario, &[(0, pa), (1, pb)]);
        let t = LogicalTime::from_ticks(now);
        let a = Msync::new(0, scenario.clone()).next_exchange(1, t, &store);
        let b = Msync::new(1, scenario.clone()).next_exchange(0, t, &store);
        prop_assert_eq!(a, b);
        let a2 = Msync2::new(0, scenario.clone()).next_exchange(1, t, &store);
        let b2 = Msync2::new(1, scenario).next_exchange(0, t, &store);
        prop_assert_eq!(a2, b2);
    }

    #[test]
    fn msync2_never_schedules_before_msync(pa in pos_strategy(), pb in pos_strategy()) {
        prop_assume!(pa != pb);
        let scenario = Scenario::paper(2, 3);
        let store = store_with(&scenario, &[(0, pa), (1, pb)]);
        let t = LogicalTime::ZERO;
        let m1 = Msync::new(0, scenario.clone()).next_exchange(1, t, &store).unwrap();
        let m2 = Msync2::new(0, scenario).next_exchange(1, t, &store).unwrap();
        prop_assert!(m2 >= m1, "MSYNC2 is a refinement: it may only exchange less often");
    }

    #[test]
    fn sfunction_schedules_are_always_in_the_future(
        pa in pos_strategy(), pb in pos_strategy(), now in 0u64..10_000
    ) {
        prop_assume!(pa != pb);
        let scenario = Scenario::paper(2, 1);
        let store = store_with(&scenario, &[(0, pa), (1, pb)]);
        let t = LogicalTime::from_ticks(now);
        let next = Msync2::new(0, scenario).next_exchange(1, t, &store).unwrap();
        prop_assert!(next > t);
    }
}

fn store_with(scenario: &Scenario, tanks: &[(NodeId, Pos)]) -> sdso_core::ObjectStore {
    let mut store = sdso_core::ObjectStore::new();
    for pos in scenario.grid.iter() {
        let block = tanks
            .iter()
            .find(|&&(_, p)| p == pos)
            .map(|&(team, _)| sdso_game::Block::Tank {
                team,
                tank: 0,
                hp: 2,
                facing: sdso_game::Direction::North,
                fired: None,
            })
            .unwrap_or(sdso_game::Block::Empty);
        store.share(scenario.grid.object_at(pos), block.encode(scenario.block_bytes)).unwrap();
    }
    store
}

// Sanity of the helper itself.
#[test]
fn store_with_places_tanks() {
    let scenario = Scenario::paper(2, 1);
    let store = store_with(&scenario, &[(0, Pos::new(3, 4)), (1, Pos::new(9, 9))]);
    assert_eq!(team_positions(&store, &scenario, 0), vec![Pos::new(3, 4)]);
    assert_eq!(team_positions(&store, &scenario, 1), vec![Pos::new(9, 9)]);
}

// ---------------------------------------------------------------------
// Replica convergence: random concurrent writes + exchange ⇒ equal stores
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn concurrent_whole_object_writes_converge(
        writes_a in proptest::collection::vec((0u32..6, any::<u8>()), 1..12),
        writes_b in proptest::collection::vec((0u32..6, any::<u8>()), 1..12),
    ) {
        let mut endpoints = MemoryHub::new(2).into_endpoints();
        let eb = endpoints.pop().unwrap();
        let ea = endpoints.pop().unwrap();

        let run = |ep: sdso_net::memory::MemoryEndpoint,
                   writes: Vec<(u32, u8)>|
         -> std::thread::JoinHandle<Vec<Vec<u8>>> {
            std::thread::spawn(move || {
                let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
                for id in 0..6u32 {
                    rt.share(ObjectId(id), vec![0u8; 4]).unwrap();
                }
                rt.init_schedule(&mut EveryTick).unwrap();
                // Whole-object writes (the documented convergence unit).
                for (obj, value) in writes {
                    rt.write(ObjectId(obj), 0, &[value; 4]).unwrap();
                    rt.exchange(true, SendMode::Multicast, &mut EveryTick).unwrap();
                }
                // Drain the tick difference: keep exchanging until both
                // sides have performed the same number of exchanges.
                (0..16)
                    .map(|_| ())
                    .for_each(|()| {
                        rt.exchange(true, SendMode::Multicast, &mut EveryTick).unwrap();
                    });
                (0..6u32).map(|id| rt.read(ObjectId(id)).unwrap().to_vec()).collect()
            })
        };

        // Pad both write sequences to the same length so the BSYNC-style
        // rendezvous count matches on both sides.
        let len = writes_a.len().max(writes_b.len());
        let mut wa = writes_a;
        let mut wb = writes_b;
        while wa.len() < len { wa.push((0, 0)); }
        while wb.len() < len { wb.push((1, 0)); }

        let ha = run(ea, wa);
        let hb = run(eb, wb);
        let sa = ha.join().unwrap();
        let sb = hb.join().unwrap();
        prop_assert_eq!(sa, sb, "replicas must converge after synchronous exchanges");
    }
}

// ---------------------------------------------------------------------
// Version total order sanity
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn version_order_is_total_and_writer_breaks_ties(
        t1 in 0u64..100, w1 in 0u16..8, t2 in 0u64..100, w2 in 0u16..8
    ) {
        let a = Version::new(LogicalTime::from_ticks(t1), w1);
        let b = Version::new(LogicalTime::from_ticks(t2), w2);
        if t1 != t2 {
            prop_assert_eq!(a < b, t1 < t2);
        } else if w1 != w2 {
            prop_assert_eq!(a < b, w1 < w2);
        } else {
            prop_assert_eq!(a, b);
        }
    }
}
