//! Transport-equivalence tests: the same protocol code must behave
//! identically (at the logical level) over in-process channels, a real TCP
//! mesh, and the virtual-time simulator.

use sdso_core::{DsoConfig, EveryTick, ObjectId, SdsoRuntime};
use sdso_game::{run_node, Protocol, Scenario};
use sdso_net::memory::MemoryHub;
use sdso_net::tcp::TcpMesh;
use sdso_net::{Endpoint, NetMetricsSnapshot};
use sdso_protocols::Lookahead;
use sdso_sim::{NetworkModel, SimCluster};

/// Runs a small BSYNC game over any set of endpoints, returning per-node
/// (score, modifications, messages-sent).
fn play_game<E: Endpoint + 'static>(
    endpoints: Vec<E>,
    scenario: &Scenario,
) -> Vec<(i64, u64, u64)> {
    let handles: Vec<_> = endpoints
        .into_iter()
        .map(|ep| {
            let s = scenario.clone();
            std::thread::spawn(move || {
                let stats = run_node(ep, &s, Protocol::Bsync).expect("game run");
                (stats.score, stats.modifications, stats.net.total_sent())
            })
        })
        .collect();
    let mut results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    results.sort_by_key(|&(score, mods, _)| (score, mods));
    results
}

#[test]
fn game_outcome_is_identical_across_all_three_transports() {
    // The lookahead rendezvous are logically synchronous, so the *game*
    // (scores, modifications, message counts) must not depend on the
    // transport's timing at all.
    let scenario = Scenario::paper(3, 1).with_ticks(40);

    let memory = play_game(MemoryHub::new(3).into_endpoints(), &scenario);
    let tcp = play_game(TcpMesh::local(3).unwrap(), &scenario);

    let sim_scenario = scenario.clone();
    let sim_outcome = SimCluster::new(3, NetworkModel::paper_testbed())
        .run(move |ep| {
            run_node(ep, &sim_scenario, Protocol::Bsync).map_err(sdso_net::NetError::from)
        })
        .unwrap();
    let mut sim: Vec<(i64, u64, u64)> = sim_outcome
        .into_results()
        .unwrap()
        .into_iter()
        .map(|s| (s.score, s.modifications, s.net.total_sent()))
        .collect();
    sim.sort_by_key(|&(score, mods, _)| (score, mods));

    assert_eq!(memory, tcp, "memory vs TCP");
    assert_eq!(memory, sim, "memory vs simulator");
}

#[test]
fn tcp_mesh_supports_the_full_exchange_protocol() {
    let scenario = Scenario::paper(2, 1).with_ticks(25);
    let results = play_game(TcpMesh::local(2).unwrap(), &scenario);
    assert_eq!(results.len(), 2);
    for (_, mods, msgs) in results {
        assert!(mods > 0);
        assert!(msgs > 0);
    }
}

#[test]
fn runtime_works_over_tcp_for_puts_and_gets() {
    let mut endpoints = TcpMesh::local(2).unwrap();
    let b = endpoints.pop().unwrap();
    let a = endpoints.pop().unwrap();

    let tb = std::thread::spawn(move || {
        let mut rt = SdsoRuntime::new(b, DsoConfig::compact());
        rt.share(ObjectId(0), vec![0u8; 8]).unwrap();
        // Service A's put, then answer its app message.
        let (_, bytes) = rt.recv_app().unwrap();
        assert_eq!(bytes, b"check");
        assert_eq!(rt.read(ObjectId(0)).unwrap(), &[7u8; 8]);
    });

    let mut rt = SdsoRuntime::new(a, DsoConfig::compact());
    rt.share(ObjectId(0), vec![0u8; 8]).unwrap();
    rt.write(ObjectId(0), 0, &[7u8; 8]).unwrap();
    rt.sync_put(1, ObjectId(0)).unwrap();
    rt.send_app(1, sdso_net::MsgClass::Control, b"check".to_vec()).unwrap();
    tb.join().unwrap();
}

#[test]
fn metrics_agree_between_transports_for_identical_traffic() {
    // Send the same frames over memory and TCP: counters must agree.
    let run = |snapshotter: &dyn Fn() -> (NetMetricsSnapshot, NetMetricsSnapshot)| snapshotter();

    let memory = run(&|| {
        let mut eps = MemoryHub::new(2).into_endpoints();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, sdso_net::Payload::data(vec![0u8; 100]).with_wire_len(2048)).unwrap();
        a.send(1, sdso_net::Payload::control(vec![0u8; 10])).unwrap();
        let _ = b.recv().unwrap();
        let _ = b.recv().unwrap();
        (a.metrics(), b.metrics())
    });
    let tcp = run(&|| {
        let mut eps = TcpMesh::local(2).unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, sdso_net::Payload::data(vec![0u8; 100]).with_wire_len(2048)).unwrap();
        a.send(1, sdso_net::Payload::control(vec![0u8; 10])).unwrap();
        let _ = b.recv().unwrap();
        let _ = b.recv().unwrap();
        (a.metrics(), b.metrics())
    });

    assert_eq!(memory.0.data_sent, tcp.0.data_sent);
    assert_eq!(memory.0.control_sent, tcp.0.control_sent);
    assert_eq!(memory.1.data_recv, tcp.1.data_recv);
    assert_eq!(memory.1.control_recv, tcp.1.control_recv);
}

#[test]
fn lookahead_over_tcp_matches_memory_visibility() {
    // Writes exchanged over TCP land exactly as over channels.
    fn game(eps: Vec<Box<dyn Endpoint + Send>>) -> Vec<Vec<u8>> {
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                std::thread::spawn(move || {
                    let me = ep.node_id();
                    let mut rt = SdsoRuntime::new(BoxedEndpoint(ep), DsoConfig::paper());
                    for id in 0..2u32 {
                        rt.share(ObjectId(id), vec![0u8; 4]).unwrap();
                    }
                    let mut node = Lookahead::new(rt, EveryTick).unwrap();
                    node.runtime_mut().write(ObjectId(u32::from(me)), 0, &[me as u8 + 1]).unwrap();
                    node.step().unwrap();
                    let rt = node.into_runtime();
                    (0..2u32)
                        .flat_map(|id| rt.read(ObjectId(id)).unwrap().to_vec())
                        .collect::<Vec<u8>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    let mem: Vec<Box<dyn Endpoint + Send>> = MemoryHub::new(2)
        .into_endpoints()
        .into_iter()
        .map(|e| Box::new(e) as Box<dyn Endpoint + Send>)
        .collect();
    let tcp: Vec<Box<dyn Endpoint + Send>> = TcpMesh::local(2)
        .unwrap()
        .into_iter()
        .map(|e| Box::new(e) as Box<dyn Endpoint + Send>)
        .collect();

    let mut via_mem = game(mem);
    let mut via_tcp = game(tcp);
    via_mem.sort();
    via_tcp.sort();
    assert_eq!(via_mem, via_tcp);
}

/// Adapter: `Box<dyn Endpoint + Send>` as an owned `Endpoint`.
struct BoxedEndpoint(Box<dyn Endpoint + Send>);

impl Endpoint for BoxedEndpoint {
    fn node_id(&self) -> sdso_net::NodeId {
        self.0.node_id()
    }
    fn num_nodes(&self) -> usize {
        self.0.num_nodes()
    }
    fn send(
        &mut self,
        to: sdso_net::NodeId,
        payload: sdso_net::Payload,
    ) -> Result<(), sdso_net::NetError> {
        self.0.send(to, payload)
    }
    fn recv(&mut self) -> Result<sdso_net::Incoming, sdso_net::NetError> {
        self.0.recv()
    }
    fn try_recv(&mut self) -> Result<Option<sdso_net::Incoming>, sdso_net::NetError> {
        self.0.try_recv()
    }
    fn advance(&mut self, dt: sdso_net::SimSpan) {
        self.0.advance(dt);
    }
    fn now(&self) -> sdso_net::SimInstant {
        self.0.now()
    }
    fn metrics(&self) -> NetMetricsSnapshot {
        self.0.metrics()
    }
}
