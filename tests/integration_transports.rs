//! Transport-equivalence tests: the same protocol code must behave
//! identically (at the logical level) over in-process channels, a real TCP
//! mesh, and the virtual-time simulator.

use sdso_core::{DsoConfig, EveryTick, ObjectId, SdsoRuntime};
use sdso_game::{run_node, Protocol, Scenario};
use sdso_harness::transports::local_cluster;
use sdso_net::memory::MemoryHub;
use sdso_net::tcp::TcpMesh;
use sdso_net::{Endpoint, NetMetricsSnapshot, TransportKind};
use sdso_protocols::Lookahead;
use sdso_sim::{NetworkModel, SimCluster};

/// Runs a small BSYNC game over any set of endpoints, returning per-node
/// (score, modifications, messages-sent).
fn play_game<E: Endpoint + 'static>(
    endpoints: Vec<E>,
    scenario: &Scenario,
) -> Vec<(i64, u64, u64)> {
    let handles: Vec<_> = endpoints
        .into_iter()
        .map(|ep| {
            let s = scenario.clone();
            std::thread::spawn(move || {
                let stats = run_node(ep, &s, Protocol::Bsync).expect("game run");
                (stats.score, stats.modifications, stats.net.total_sent())
            })
        })
        .collect();
    let mut results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    results.sort_by_key(|&(score, mods, _)| (score, mods));
    results
}

#[test]
fn game_outcome_is_identical_across_all_three_transports() {
    // The lookahead rendezvous are logically synchronous, so the *game*
    // (scores, modifications, message counts) must not depend on the
    // transport's timing at all.
    let scenario = Scenario::paper(3, 1).with_ticks(40);

    let memory = play_game(MemoryHub::new(3).into_endpoints(), &scenario);
    let tcp = play_game(TcpMesh::local(3).unwrap(), &scenario);

    let sim_scenario = scenario.clone();
    let sim_outcome = SimCluster::new(3, NetworkModel::paper_testbed())
        .run(move |ep| {
            run_node(ep, &sim_scenario, Protocol::Bsync).map_err(sdso_net::NetError::from)
        })
        .unwrap();
    let mut sim: Vec<(i64, u64, u64)> = sim_outcome
        .into_results()
        .unwrap()
        .into_iter()
        .map(|s| (s.score, s.modifications, s.net.total_sent()))
        .collect();
    sim.sort_by_key(|&(score, mods, _)| (score, mods));

    assert_eq!(memory, tcp, "memory vs TCP");
    assert_eq!(memory, sim, "memory vs simulator");
}

#[cfg(target_os = "linux")]
#[test]
fn game_outcome_is_identical_over_the_reactor() {
    // The reactor multiplexes every peer behind one poll loop instead of
    // spawning reader/writer threads, but at the logical level it must be
    // indistinguishable from the other transports.
    let scenario = Scenario::paper(3, 1).with_ticks(40);
    let memory = play_game(MemoryHub::new(3).into_endpoints(), &scenario);
    let reactor = play_game(sdso_net::reactor::ReactorMesh::local(3).unwrap(), &scenario);
    assert_eq!(memory, reactor, "memory vs reactor");
}

#[test]
fn config_selected_transport_runs_the_game() {
    // The same path deployment code takes: DsoConfig names a TransportKind,
    // the harness builds the cluster, the game neither knows nor cares.
    let scenario = Scenario::paper(2, 1).with_ticks(20);
    let config = DsoConfig::paper(); // platform-default transport
    let via_config = play_game(local_cluster(config.transport, 2).unwrap(), &scenario);
    let via_memory = play_game(MemoryHub::new(2).into_endpoints(), &scenario);
    assert_eq!(via_config, via_memory);
}

#[test]
fn tcp_mesh_supports_the_full_exchange_protocol() {
    let scenario = Scenario::paper(2, 1).with_ticks(25);
    let results = play_game(TcpMesh::local(2).unwrap(), &scenario);
    assert_eq!(results.len(), 2);
    for (_, mods, msgs) in results {
        assert!(mods > 0);
        assert!(msgs > 0);
    }
}

#[test]
fn runtime_works_over_tcp_for_puts_and_gets() {
    let mut endpoints = TcpMesh::local(2).unwrap();
    let b = endpoints.pop().unwrap();
    let a = endpoints.pop().unwrap();

    let tb = std::thread::spawn(move || {
        let mut rt = SdsoRuntime::new(b, DsoConfig::compact());
        rt.share(ObjectId(0), vec![0u8; 8]).unwrap();
        // Service A's put, then answer its app message.
        let (_, bytes) = rt.recv_app().unwrap();
        assert_eq!(bytes, b"check");
        assert_eq!(rt.read(ObjectId(0)).unwrap(), &[7u8; 8]);
    });

    let mut rt = SdsoRuntime::new(a, DsoConfig::compact());
    rt.share(ObjectId(0), vec![0u8; 8]).unwrap();
    rt.write(ObjectId(0), 0, &[7u8; 8]).unwrap();
    rt.sync_put(1, ObjectId(0)).unwrap();
    rt.send_app(1, sdso_net::MsgClass::Control, b"check".to_vec()).unwrap();
    tb.join().unwrap();
}

#[test]
fn metrics_agree_between_transports_for_identical_traffic() {
    // Send the same frames over memory and TCP: counters must agree.
    let run = |snapshotter: &dyn Fn() -> (NetMetricsSnapshot, NetMetricsSnapshot)| snapshotter();

    let memory = run(&|| {
        let mut eps = MemoryHub::new(2).into_endpoints();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, sdso_net::Payload::data(vec![0u8; 100]).with_wire_len(2048)).unwrap();
        a.send(1, sdso_net::Payload::control(vec![0u8; 10])).unwrap();
        let _ = b.recv().unwrap();
        let _ = b.recv().unwrap();
        (a.metrics(), b.metrics())
    });
    let tcp = run(&|| {
        let mut eps = TcpMesh::local(2).unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, sdso_net::Payload::data(vec![0u8; 100]).with_wire_len(2048)).unwrap();
        a.send(1, sdso_net::Payload::control(vec![0u8; 10])).unwrap();
        let _ = b.recv().unwrap();
        let _ = b.recv().unwrap();
        (a.metrics(), b.metrics())
    });

    assert_eq!(memory.0.data_sent, tcp.0.data_sent);
    assert_eq!(memory.0.control_sent, tcp.0.control_sent);
    assert_eq!(memory.1.data_recv, tcp.1.data_recv);
    assert_eq!(memory.1.control_recv, tcp.1.control_recv);
}

#[test]
fn lookahead_over_tcp_matches_memory_visibility() {
    // Writes exchanged over TCP land exactly as over channels.
    fn game(eps: Vec<Box<dyn Endpoint + Send>>) -> Vec<Vec<u8>> {
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                std::thread::spawn(move || {
                    let me = ep.node_id();
                    let mut rt = SdsoRuntime::new(ep, DsoConfig::paper());
                    for id in 0..2u32 {
                        rt.share(ObjectId(id), vec![0u8; 4]).unwrap();
                    }
                    let mut node = Lookahead::new(rt, EveryTick).unwrap();
                    node.runtime_mut().write(ObjectId(u32::from(me)), 0, &[me as u8 + 1]).unwrap();
                    node.step().unwrap();
                    let rt = node.into_runtime();
                    (0..2u32)
                        .flat_map(|id| rt.read(ObjectId(id)).unwrap().to_vec())
                        .collect::<Vec<u8>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    let mem: Vec<Box<dyn Endpoint + Send>> = MemoryHub::new(2)
        .into_endpoints()
        .into_iter()
        .map(|e| Box::new(e) as Box<dyn Endpoint + Send>)
        .collect();
    let tcp = local_cluster(TransportKind::Tcp, 2).unwrap();

    let mut via_mem = game(mem);
    let mut via_tcp = game(tcp);
    via_mem.sort();
    via_tcp.sort();
    assert_eq!(via_mem, via_tcp);

    #[cfg(target_os = "linux")]
    {
        let mut via_reactor = game(local_cluster(TransportKind::TcpReactor, 2).unwrap());
        via_reactor.sort();
        assert_eq!(via_mem, via_reactor);
    }
}
