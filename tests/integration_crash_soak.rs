//! Crash soak: games under seeded fail-stop crashes with WAL-backed
//! recovery, at two sizes plus a real-transport detection check.
//!
//! * [`crash_soak_16_smoke`] always runs — 16 teams, three seeded
//!   crash/restart events, all four paper protocols;
//! * [`crash_soak_64_full`] is `#[ignore]`d and run explicitly by the
//!   `crash-soak` CI job (`cargo test -- --ignored`);
//! * [`reactor_abrupt_death_is_detected_as_a_leave`] exercises crash
//!   *detection* on the real TCP transport: spokes die abruptly and the
//!   hub's peer events must derive exactly that leave set.
//!
//! When `SDSO_CRASH_TRACE` names a file, the merged flight-recorder trace
//! (Chrome/Perfetto JSON) of every node — recovery and WAL events
//! included — is written there win or lose; the CI job uploads it as an
//! artifact when the job fails.

use sdso_game::{run_crash_node_obs, Protocol, Scenario};
use sdso_harness::{crash_converged, default_crash_plan, run_crash_experiment};
use sdso_net::{FaultPlan, NetError};
use sdso_obs::{ObsSet, TraceConfig};
use sdso_sim::{NetworkModel, SimCluster};

/// Runs one seeded crash soak and returns an error description instead of
/// panicking so the caller can dump the flight-recorder trace first.
fn run_crash_soak(
    n: u16,
    ticks: u64,
    faults: &FaultPlan,
    protocol: Protocol,
    obs: &ObsSet,
) -> Result<(), String> {
    let scenario = Scenario::paper(n, 1).with_ticks(ticks);
    let s = scenario.clone();
    let f = faults.clone();
    let obs_for_nodes = obs.clone();
    let stats = SimCluster::new(usize::from(n), NetworkModel::paper_testbed())
        .run(move |ep| {
            let node_obs = obs_for_nodes.node(sdso_net::Endpoint::node_id(&ep));
            run_crash_node_obs(ep, &s, protocol, &f, node_obs).map_err(NetError::from)
        })
        .map_err(|e| format!("{protocol} soak setup: {e}"))?
        .into_results()
        .map_err(|e| format!("{protocol} node failed: {e}"))?;

    let restarters: Vec<_> =
        faults.crashes.iter().filter(|c| c.restart_tick.is_some()).map(|c| c.node).collect();
    for &node in &restarters {
        let s = &stats[usize::from(node)];
        if s.recoveries != 1 {
            return Err(format!("{protocol}: node {node} recorded {} recoveries", s.recoveries));
        }
        if s.wal_replayed == 0 {
            return Err(format!("{protocol}: node {node} replayed nothing from its WAL"));
        }
        if s.ticks != ticks {
            return Err(format!("{protocol}: restarted node {node} stopped at tick {}", s.ticks));
        }
    }
    // Every final-view member agrees; crashers without a restart need not.
    let gone: Vec<_> =
        faults.crashes.iter().filter(|c| c.restart_tick.is_none()).map(|c| c.node).collect();
    let reference =
        stats.iter().find(|s| !gone.contains(&s.node)).expect("some node survives the plan");
    for s in stats.iter().filter(|s| !gone.contains(&s.node)) {
        if s.final_world != reference.final_world {
            return Err(format!(
                "{protocol}: node {} diverged from node {} after recovery",
                s.node, reference.node
            ));
        }
    }
    Ok(())
}

/// Runs a soak across protocols and, when `SDSO_CRASH_TRACE` is set,
/// writes the merged flight-recorder trace there before reporting.
fn soak_with_trace(n: u16, ticks: u64, crashes: usize, seed: u64, protocols: &[Protocol]) {
    let faults =
        FaultPlan::new(seed).with_seeded_crashes(usize::from(n), crashes, ticks / 6, ticks - 2);
    let obs = ObsSet::new(n, TraceConfig::counters());
    let mut failure = None;
    for &protocol in protocols {
        if let Err(why) = run_crash_soak(n, ticks, &faults, protocol, &obs) {
            failure = Some(why);
            break;
        }
    }
    if let Ok(path) = std::env::var("SDSO_CRASH_TRACE") {
        if !path.is_empty() {
            let _ = std::fs::write(&path, obs.chrome_trace());
        }
    }
    if let Some(why) = failure {
        panic!("crash soak ({n} teams, {crashes} crashes) failed: {why}");
    }
}

#[test]
fn crash_soak_16_smoke() {
    soak_with_trace(16, 24, 3, 0x5D50_C4A5, &Protocol::PAPER);
}

#[test]
#[ignore = "full-scale soak; run via the crash-soak CI job (cargo test -- --ignored)"]
fn crash_soak_64_full() {
    soak_with_trace(64, 36, 6, 0x5D50_C4A5_0064, &[Protocol::Bsync, Protocol::Msync2]);
}

#[test]
fn crash_experiment_is_deterministic_across_replays() {
    let scenario = Scenario::paper(8, 1).with_ticks(16);
    let faults = default_crash_plan(0xD15C, 8, 16);
    let a =
        run_crash_experiment(&scenario, Protocol::Msync2, NetworkModel::paper_testbed(), &faults)
            .unwrap();
    let b =
        run_crash_experiment(&scenario, Protocol::Msync2, NetworkModel::paper_testbed(), &faults)
            .unwrap();
    assert!(crash_converged(&a, &scenario, &faults));
    for (x, y) in a.per_node.iter().zip(&b.per_node) {
        assert_eq!(x.final_world, y.final_world, "node {}: deterministic final state", x.node);
        assert_eq!(x.score, y.score, "node {}: deterministic score", x.node);
        assert_eq!(x.recovery_time, y.recovery_time, "node {}: deterministic downtime", x.node);
        assert_eq!(x.wal_replayed, y.wal_replayed, "node {}: deterministic replay", x.node);
    }
}

/// Crash *detection* on the real transport: when spokes die abruptly
/// (their process vanishes without a goodbye), the hub's reactor surfaces
/// peer-down events and the membership layer derives exactly the dead
/// nodes as the leave set.
#[cfg(target_os = "linux")]
#[test]
fn reactor_abrupt_death_is_detected_as_a_leave() {
    use sdso_core::{leave_change_from_events, MembershipPlan};
    use sdso_net::reactor::ReactorMesh;
    use sdso_net::{Endpoint, Payload, PeerEvent};
    use std::time::{Duration, Instant};

    const N: usize = 8;
    const DEAD: [u16; 3] = [2, 5, 7];
    let mut endpoints = ReactorMesh::star(N).expect("star setup");
    let mut hub = endpoints.remove(0);
    // Every spoke announces itself so the hub has live links, then the
    // doomed ones drop their endpoint — an abrupt TCP teardown, the
    // closest a test harness gets to SIGKILL.
    let handles: Vec<_> = endpoints
        .into_iter()
        .map(|mut ep| {
            std::thread::spawn(move || {
                let me = ep.node_id();
                ep.send(0, Payload::control(vec![me as u8])).expect("hello");
                if DEAD.contains(&me) {
                    drop(ep);
                    None
                } else {
                    // Survivors park until the hub has seen the deaths.
                    Some((
                        ep,
                        std::sync::mpsc::channel::<()>().1.recv_timeout(Duration::from_secs(30)),
                    ))
                }
            })
        })
        .collect();

    let mut hellos = 0;
    let mut downs: Vec<PeerEvent> = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    while (hellos < N - 1 || downs.len() < DEAD.len()) && Instant::now() < deadline {
        if hub.recv_deadline(sdso_net::SimSpan::from_millis(200)).expect("hub recv").is_some() {
            hellos += 1;
        }
        downs
            .extend(hub.take_peer_events().into_iter().filter(|e| matches!(e, PeerEvent::Down(_))));
    }
    assert_eq!(hellos, N - 1, "every spoke said hello before the cull");
    let view = MembershipPlan::new(N, 0..N as u16).view_at(0);
    let change = leave_change_from_events(&view, &downs);
    let left: Vec<u16> = change.left.iter().copied().collect();
    assert_eq!(left, DEAD.to_vec(), "the derived leave set is exactly the dead spokes");
    for h in handles {
        let _ = h.join();
    }
}
