//! The region lattice: a total partition of the grid into rectangular
//! regions.

use sdso_core::ObjectId;

/// A region's index in its lattice, row-major (`ry * regions_x + rx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u16);

/// Partitions a `width x height` grid of cells into a `regions_x x
/// regions_y` lattice of rectangular regions.
///
/// Every cell belongs to exactly one region (the partition proptest pins
/// this totality), and the cell → object mapping follows the game's
/// row-major convention: cell `(x, y)` is `ObjectId(y * width + x)`.
/// Regions are `width.div_ceil(regions_x)` cells wide, so when the grid
/// does not divide evenly the right/bottom edge regions are smaller,
/// never empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionLattice {
    width: u16,
    height: u16,
    regions_x: u16,
    regions_y: u16,
    /// Cells per region column (`width.div_ceil(regions_x)`).
    cell_w: u16,
    /// Cells per region row (`height.div_ceil(regions_y)`).
    cell_h: u16,
}

/// The region edge length the default lattices aim for: the paper's
/// 32x24 grid becomes 4x3 regions of 8x8 cells.
pub const DEFAULT_REGION_EDGE: u16 = 8;

impl RegionLattice {
    /// A lattice of `regions_x x regions_y` regions over a `width x
    /// height` grid. Region counts are clamped into `1..=dimension`, so
    /// any positive inputs produce a valid total partition.
    pub fn new(width: u16, height: u16, regions_x: u16, regions_y: u16) -> Self {
        assert!(width > 0 && height > 0, "lattice over an empty grid");
        let cell_w = width.div_ceil(regions_x.clamp(1, width));
        let cell_h = height.div_ceil(regions_y.clamp(1, height));
        RegionLattice {
            width,
            height,
            // Re-derive the counts from the cell size: with ceiling cell
            // sizing the requested count can overshoot what the grid uses
            // (11 cells / 7 regions → 2-wide cells → 6 regions), and the
            // trailing region would be empty. `width.div_ceil(cell_w)`
            // regions of `cell_w` cells are all nonempty.
            regions_x: width.div_ceil(cell_w),
            regions_y: height.div_ceil(cell_h),
            cell_w,
            cell_h,
        }
    }

    /// The default lattice for a grid: regions of (at most)
    /// [`DEFAULT_REGION_EDGE`] cells per side — 4x3 regions on the
    /// paper's 32x24 grid, scaling with the grid for larger clusters.
    pub fn for_grid(width: u16, height: u16) -> Self {
        RegionLattice::new(
            width,
            height,
            width.div_ceil(DEFAULT_REGION_EDGE),
            height.div_ceil(DEFAULT_REGION_EDGE),
        )
    }

    /// The paper-grid lattice: 4x3 regions of 8x8 cells over 32x24.
    pub fn paper() -> Self {
        RegionLattice::for_grid(32, 24)
    }

    /// Grid width in cells.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Grid height in cells.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Region columns.
    pub fn regions_x(&self) -> u16 {
        self.regions_x
    }

    /// Region rows.
    pub fn regions_y(&self) -> u16 {
        self.regions_y
    }

    /// Total region count.
    pub fn regions(&self) -> u16 {
        self.regions_x * self.regions_y
    }

    /// The region containing cell `(x, y)`. Coordinates beyond the grid
    /// clamp to the edge region, so callers working from possibly-stale
    /// positions always get a valid region.
    pub fn region_of_xy(&self, x: u16, y: u16) -> RegionId {
        let rx = (x / self.cell_w).min(self.regions_x - 1);
        let ry = (y / self.cell_h).min(self.regions_y - 1);
        RegionId(ry * self.regions_x + rx)
    }

    /// The region containing an object, under the row-major cell → object
    /// convention. Ids beyond the grid clamp to the last cell.
    pub fn region_of_object(&self, object: ObjectId) -> RegionId {
        let idx = object.0.min(u32::from(self.width) * u32::from(self.height) - 1);
        let x = (idx % u32::from(self.width)) as u16;
        let y = (idx / u32::from(self.width)) as u16;
        self.region_of_xy(x, y)
    }

    /// All regions intersecting the Chebyshev box of radius `d` around
    /// `(x, y)` (a superset of the Manhattan ball the game's sensing
    /// range uses — conservative on purpose), ascending.
    pub fn regions_within(&self, x: u16, y: u16, d: u16) -> Vec<RegionId> {
        let x0 = x.saturating_sub(d);
        let y0 = y.saturating_sub(d);
        let x1 = (x.saturating_add(d)).min(self.width - 1);
        let y1 = (y.saturating_add(d)).min(self.height - 1);
        let RegionId(first) = self.region_of_xy(x0, y0);
        let RegionId(last) = self.region_of_xy(x1, y1);
        let (rx0, ry0) = (first % self.regions_x, first / self.regions_x);
        let (rx1, ry1) = (last % self.regions_x, last / self.regions_x);
        let mut out = Vec::with_capacity(usize::from(rx1 - rx0 + 1) * usize::from(ry1 - ry0 + 1));
        for ry in ry0..=ry1 {
            for rx in rx0..=rx1 {
                out.push(RegionId(ry * self.regions_x + rx));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lattice_is_4x3_of_8x8() {
        let l = RegionLattice::paper();
        assert_eq!((l.regions_x(), l.regions_y()), (4, 3));
        assert_eq!(l.regions(), 12);
        assert_eq!(l.region_of_xy(0, 0), RegionId(0));
        assert_eq!(l.region_of_xy(7, 7), RegionId(0));
        assert_eq!(l.region_of_xy(8, 0), RegionId(1));
        assert_eq!(l.region_of_xy(31, 23), RegionId(11));
    }

    #[test]
    fn object_mapping_matches_row_major_cells() {
        let l = RegionLattice::paper();
        for (x, y) in [(0u16, 0u16), (9, 3), (31, 23), (15, 8)] {
            let object = ObjectId(u32::from(y) * 32 + u32::from(x));
            assert_eq!(l.region_of_object(object), l.region_of_xy(x, y));
        }
    }

    #[test]
    fn every_cell_maps_to_exactly_one_in_range_region() {
        let l = RegionLattice::new(33, 10, 4, 3); // non-dividing edges
        let mut per_region = vec![0u32; usize::from(l.regions())];
        for y in 0..10 {
            for x in 0..33 {
                per_region[usize::from(l.region_of_xy(x, y).0)] += 1;
            }
        }
        assert_eq!(per_region.iter().sum::<u32>(), 330, "partition is total");
        assert!(per_region.iter().all(|&c| c > 0), "no region is empty");
    }

    #[test]
    fn regions_within_covers_the_sensing_box() {
        let l = RegionLattice::paper();
        // Radius 3 around (8, 8): straddles regions 0, 1, 4, 5.
        let within = l.regions_within(8, 8, 3);
        assert_eq!(within, vec![RegionId(0), RegionId(1), RegionId(4), RegionId(5)]);
        // Every cell in the Chebyshev box is in one of the regions.
        for y in 5..=11u16 {
            for x in 5..=11u16 {
                assert!(within.contains(&l.region_of_xy(x, y)));
            }
        }
        // Corner positions clamp instead of wrapping.
        assert_eq!(l.regions_within(0, 0, 2), vec![RegionId(0)]);
        assert_eq!(l.regions_within(31, 23, 40).len(), usize::from(l.regions()));
    }

    #[test]
    fn out_of_range_coordinates_clamp_to_the_edge_region() {
        let l = RegionLattice::paper();
        assert_eq!(l.region_of_xy(500, 500), RegionId(11));
        assert_eq!(l.region_of_object(ObjectId(u32::MAX)), RegionId(11));
    }
}
