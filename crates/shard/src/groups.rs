//! Per-region exchange groups over the epoch/membership machinery.
//!
//! Each region gets its own exchange group: the live members whose
//! interest covers it. Groups are *views* derived from the global
//! [`MembershipView`] — the global epoch/barrier protocol stays the one
//! source of membership truth, and sharding only narrows which peers a
//! node schedules live exchanges with.
//!
//! A node near a boundary belongs to several groups at once. When every
//! group proposes its own exchange time for such a peer, the proposals
//! are merged through [`sdso_core::ExchangeList::schedule_min`] so the
//! peer keeps exactly one `(exchange-time, process)` entry — the
//! earliest proposal — and therefore rendezvouses (and receives each
//! diff) once, not once per overlapping region.

use std::collections::BTreeSet;

use sdso_core::{ExchangeList, LogicalTime, MemberError, MembershipView};
use sdso_net::NodeId;

use crate::interest::SubscriptionManager;
use crate::lattice::{RegionId, RegionLattice};

/// The per-region exchange groups implied by a membership view and the
/// current subscriptions.
#[derive(Debug, Clone)]
pub struct RegionGroups {
    lattice: RegionLattice,
    /// groups\[region\] — the members whose interest covers the region.
    /// Members with no observation this epoch are in every group
    /// (unknown interest is total interest).
    groups: Vec<BTreeSet<NodeId>>,
}

impl RegionGroups {
    /// Builds the groups for `view`'s live members from `subs`.
    pub fn from_subscriptions(subs: &SubscriptionManager, view: &MembershipView) -> Self {
        let lattice = *subs.lattice();
        let mut groups = vec![BTreeSet::new(); usize::from(lattice.regions())];
        for &member in view.members() {
            for (r, group) in groups.iter_mut().enumerate() {
                if subs.covers(member, RegionId(r as u16)) {
                    group.insert(member);
                }
            }
        }
        RegionGroups { lattice, groups }
    }

    /// The lattice the groups partition.
    pub fn lattice(&self) -> &RegionLattice {
        &self.lattice
    }

    /// The exchange group of `region` (empty for an out-of-range id).
    pub fn group(&self, region: RegionId) -> &BTreeSet<NodeId> {
        static EMPTY: BTreeSet<NodeId> = BTreeSet::new();
        self.groups.get(usize::from(region.0)).unwrap_or(&EMPTY)
    }

    /// A per-region membership view: `region`'s group as a
    /// [`MembershipView`] over the same slot capacity as the global view.
    /// (Its epoch restarts at zero — region views are derived scopes; the
    /// global view's epoch remains the barrier clock.)
    ///
    /// # Errors
    ///
    /// Returns [`MemberError::EmptyGroup`] when nobody is interested in
    /// the region.
    pub fn view_for(
        &self,
        region: RegionId,
        capacity: usize,
    ) -> Result<MembershipView, MemberError> {
        MembershipView::initial(capacity, self.group(region).iter().copied())
    }

    /// The peers sharing at least one region group with `me`, ascending.
    pub fn shared_peers(&self, me: NodeId) -> BTreeSet<NodeId> {
        let mut peers = BTreeSet::new();
        for group in &self.groups {
            if group.contains(&me) {
                peers.extend(group.iter().copied().filter(|&p| p != me));
            }
        }
        peers
    }

    /// Merges per-region exchange proposals into `list`: for every region
    /// group containing `me`, asks `propose(region, peer)` for a time per
    /// fellow member and installs it with
    /// [`ExchangeList::schedule_min`] — a peer straddling several of
    /// `me`'s regions ends up with one entry at the earliest proposal.
    pub fn propose_exchanges(
        &self,
        me: NodeId,
        list: &mut ExchangeList,
        mut propose: impl FnMut(RegionId, NodeId) -> Option<LogicalTime>,
    ) {
        for (r, group) in self.groups.iter().enumerate() {
            if !group.contains(&me) {
                continue;
            }
            let region = RegionId(r as u16);
            for &peer in group.iter().filter(|&&p| p != me) {
                if let Some(time) = propose(region, peer) {
                    list.schedule_min(peer, time);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subs_three_nodes() -> SubscriptionManager {
        let mut subs = SubscriptionManager::new(RegionLattice::paper());
        subs.observe(0, 2, 2, 1); // region 0 only
        subs.observe(1, 8, 4, 2); // straddles regions 0 and 1
        subs.observe(2, 30, 20, 1); // region 11 only
        subs
    }

    #[test]
    fn groups_follow_interest_with_unknown_members_everywhere() {
        let subs = subs_three_nodes();
        let view = MembershipView::full(4); // node 3 never observed
        let groups = RegionGroups::from_subscriptions(&subs, &view);
        assert!(groups.group(RegionId(0)).contains(&0));
        assert!(groups.group(RegionId(0)).contains(&1));
        assert!(!groups.group(RegionId(0)).contains(&2));
        assert!(groups.group(RegionId(1)).contains(&1));
        assert!(groups.group(RegionId(11)).contains(&2));
        for r in 0..groups.lattice().regions() {
            assert!(groups.group(RegionId(r)).contains(&3), "unknown node is in every group");
        }
        assert_eq!(groups.shared_peers(2), [3].into_iter().collect());
    }

    #[test]
    fn region_views_scope_the_global_membership() {
        let subs = subs_three_nodes();
        let view = MembershipView::initial(4, [0, 1, 2]).unwrap();
        let groups = RegionGroups::from_subscriptions(&subs, &view);
        let r0 = groups.view_for(RegionId(0), view.capacity()).unwrap();
        assert_eq!(r0.members().iter().copied().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(r0.capacity(), 4);
        // A region nobody watches has no view.
        assert_eq!(groups.view_for(RegionId(5), view.capacity()), Err(MemberError::EmptyGroup));
    }

    #[test]
    fn straddling_peer_gets_one_merged_entry() {
        let mut subs = SubscriptionManager::new(RegionLattice::paper());
        subs.observe(0, 8, 4, 2); // me: straddles regions 0 and 1
        subs.observe(1, 8, 4, 2); // peer: same straddle
        let view = MembershipView::initial(2, [0, 1]).unwrap();
        let groups = RegionGroups::from_subscriptions(&subs, &view);
        let mut list = ExchangeList::new();
        // Region 0 proposes t=9 for peer 1, region 1 proposes t=4.
        groups.propose_exchanges(0, &mut list, |region, peer| {
            assert_eq!(peer, 1);
            Some(LogicalTime::from_ticks(if region == RegionId(0) { 9 } else { 4 }))
        });
        assert_eq!(list.len(), 1, "one entry despite two overlapping groups");
        assert_eq!(list.time_for(1), Some(LogicalTime::from_ticks(4)), "earliest wins");
    }
}
