//! The interest router: a [`DiffRouter`] implementation built from a
//! region lattice, a subscription manager and a handoff log.

use std::collections::BTreeMap;

use sdso_core::{DiffRouter, Epoch, LogicalTime, ObjectId};
use sdso_net::NodeId;

use crate::handoff::{HandoffLog, HandoffRecord};
use crate::interest::SubscriptionManager;
use crate::lattice::{RegionId, RegionLattice};

/// How many ticks a handoff record stays active after its crossing: long
/// enough for every live exchange cadence in the workspace to have
/// shipped both cells to every interested peer, short enough to bound
/// the log. Records also retire wholesale at view-change barriers.
pub const HANDOFF_WINDOW_TICKS: u64 = 32;

/// Routes diffs by region interest, with handoff coupling for
/// boundary-crossing write pairs.
///
/// The router is fed observations (entity positions and sensing ranges)
/// by the layer above — in the game, the region-aware driver decodes
/// tank positions out of the store each exchange and calls
/// [`InterestRouter::note_position`] for every team. The router itself
/// is game-agnostic: it never inspects object bodies.
///
/// Routing decisions are *conservative* in three ways: a peer with no
/// observation this epoch receives everything; region granularity gives
/// up to a region's width of slack around the exact sensing range; and
/// callers are expected to widen `range` by their staleness bound (a
/// peer's position read from the local replica can lag by the
/// inter-exchange gap). None of this affects convergence — suppressed
/// diffs stay buffered and flush at the next broadcast exchange — it
/// only tunes how much live traffic survives.
#[derive(Debug)]
pub struct InterestRouter {
    subs: SubscriptionManager,
    handoffs: HandoffLog,
    /// Last observed cell per node, for boundary-crossing detection.
    last_pos: BTreeMap<NodeId, (u16, u16)>,
    /// Mirrors the membership epoch: bumped once per `on_view_change`.
    epoch: Epoch,
}

impl InterestRouter {
    /// A router over `lattice` with empty interest (routes everything
    /// until observations arrive).
    pub fn new(lattice: RegionLattice) -> Self {
        InterestRouter {
            subs: SubscriptionManager::new(lattice),
            handoffs: HandoffLog::new(),
            last_pos: BTreeMap::new(),
            epoch: Epoch::ZERO,
        }
    }

    /// The lattice routing is expressed over.
    pub fn lattice(&self) -> &RegionLattice {
        self.subs.lattice()
    }

    /// The live subscription manager (interest per node).
    pub fn subscriptions(&self) -> &SubscriptionManager {
        &self.subs
    }

    /// The active handoff log.
    pub fn handoffs(&self) -> &HandoffLog {
        &self.handoffs
    }

    /// The epoch the router believes it is in (one bump per view change).
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Records that `node` senses radius `range` around cell `(x, y)` at
    /// tick `now`. Widens `node`'s interest set (monotone within the
    /// epoch) and, when the node moved across a region boundary since its
    /// previous observation, appends an epoch-stamped [`HandoffRecord`]
    /// coupling the vacated and occupied cells.
    pub fn note_position(&mut self, node: NodeId, x: u16, y: u16, range: u16, now: LogicalTime) {
        self.subs.observe(node, x, y, range);
        let lattice = *self.subs.lattice();
        if let Some(&(px, py)) = self.last_pos.get(&node) {
            if (px, py) != (x, y) {
                let from_region = lattice.region_of_xy(px, py);
                let to_region = lattice.region_of_xy(x, y);
                if from_region != to_region {
                    self.handoffs.record(HandoffRecord {
                        from: cell_object(&lattice, px, py),
                        to: cell_object(&lattice, x, y),
                        from_region,
                        to_region,
                        epoch: self.epoch,
                        tick: now,
                    });
                }
            }
        }
        self.last_pos.insert(node, (x, y));
    }

    /// Widens `node`'s interest set with radius `range` around `(x, y)`
    /// *without* treating the cell as the node's position — no
    /// boundary-crossing detection, no handoff record. This is for
    /// standing interests a node holds beyond its current location, such
    /// as a spawn point it may teleport back to.
    pub fn note_interest(&mut self, node: NodeId, x: u16, y: u16, range: u16) {
        self.subs.observe(node, x, y, range);
    }

    /// Housekeeping at the start of an observation round: retires handoff
    /// records older than [`HANDOFF_WINDOW_TICKS`].
    pub fn begin_round(&mut self, now: LogicalTime) {
        let horizon = now.as_ticks().saturating_sub(HANDOFF_WINDOW_TICKS);
        self.handoffs.retire_before_tick(LogicalTime::from_ticks(horizon));
    }

    /// The region that decides `object`'s routing.
    pub fn region_of(&self, object: ObjectId) -> RegionId {
        self.subs.lattice().region_of_object(object)
    }
}

/// The row-major object id of cell `(x, y)` under `lattice`'s grid.
fn cell_object(lattice: &RegionLattice, x: u16, y: u16) -> ObjectId {
    ObjectId(u32::from(y) * u32::from(lattice.width()) + u32::from(x))
}

impl DiffRouter for InterestRouter {
    fn routes(&self, peer: NodeId, object: ObjectId) -> bool {
        let region = self.subs.lattice().region_of_object(object);
        if self.subs.covers(peer, region) {
            return true;
        }
        // Handoff coupling: ship a boundary pair's cells to any peer
        // interested in either side, so a crossing is never half-seen.
        self.handoffs.coupled_regions(object).any(|r| self.subs.covers(peer, r))
    }

    fn on_view_change(&mut self, _joined: &[NodeId], _left: &[NodeId]) {
        self.epoch = self.epoch.next();
        // The barrier's broadcast exchange flushed every slot: interest
        // rebuilds from post-barrier observations and pre-barrier
        // handoffs are no longer needed.
        self.subs.on_epoch(self.epoch);
        self.handoffs.retire_before_epoch(self.epoch);
        self.last_pos.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> LogicalTime {
        LogicalTime::from_ticks(n)
    }

    #[test]
    fn routes_everything_until_observed() {
        let router = InterestRouter::new(RegionLattice::paper());
        assert!(router.routes(3, ObjectId(0)));
        assert!(router.routes(3, ObjectId(500)));
    }

    #[test]
    fn suppresses_out_of_interest_regions_after_observation() {
        let mut router = InterestRouter::new(RegionLattice::paper());
        // Peer 1 sits at (2, 2) with range 2: interest = region 0 only.
        router.note_position(1, 2, 2, 2, t(1));
        assert!(router.routes(1, ObjectId(0)), "own region routed");
        // Cell (31, 23) is region 11 — far outside peer 1's interest.
        assert!(!router.routes(1, ObjectId(23 * 32 + 31)));
        // An unobserved peer still gets everything.
        assert!(router.routes(2, ObjectId(23 * 32 + 31)));
    }

    #[test]
    fn boundary_crossing_couples_both_cells() {
        let mut router = InterestRouter::new(RegionLattice::paper());
        // Peer 5 interested only in region 0 (left of the x=8 boundary).
        router.note_position(5, 4, 4, 1, t(1));
        // Peer 9 (the mover) steps from (7, 4) in region 0 to (8, 4) in
        // region 1.
        router.note_position(9, 7, 4, 1, t(1));
        router.note_position(9, 8, 4, 1, t(2));
        assert_eq!(router.handoffs().len(), 1);
        let dest = ObjectId(4 * 32 + 8); // region 1: outside peer 5's interest...
        assert!(
            router.routes(5, dest),
            "...but the handoff couples it to region 0, so peer 5 still gets it"
        );
        let src = ObjectId(4 * 32 + 7);
        assert!(router.routes(5, src));
    }

    #[test]
    fn same_region_moves_record_no_handoff() {
        let mut router = InterestRouter::new(RegionLattice::paper());
        router.note_position(9, 2, 2, 1, t(1));
        router.note_position(9, 3, 2, 1, t(2));
        assert!(router.handoffs().is_empty());
    }

    #[test]
    fn view_change_resets_interest_and_retires_handoffs() {
        let mut router = InterestRouter::new(RegionLattice::paper());
        router.note_position(1, 2, 2, 1, t(1));
        router.note_position(9, 7, 4, 1, t(1));
        router.note_position(9, 8, 4, 1, t(2));
        assert!(!router.routes(1, ObjectId(23 * 32 + 31)));
        assert_eq!(router.handoffs().len(), 1);
        router.on_view_change(&[3], &[9]);
        assert_eq!(router.epoch(), Epoch(1));
        assert!(router.routes(1, ObjectId(23 * 32 + 31)), "interest reset to unknown");
        assert!(router.handoffs().is_empty(), "pre-barrier handoffs retired");
    }

    #[test]
    fn begin_round_retires_stale_handoffs() {
        let mut router = InterestRouter::new(RegionLattice::paper());
        router.note_position(9, 7, 4, 1, t(1));
        router.note_position(9, 8, 4, 1, t(2));
        router.begin_round(t(3));
        assert_eq!(router.handoffs().len(), 1, "fresh record survives");
        router.begin_round(t(HANDOFF_WINDOW_TICKS + 10));
        assert!(router.handoffs().is_empty());
    }
}
