//! Cross-region handoff: epoch-stamped records coupling the two cells a
//! boundary-crossing write pair touches.
//!
//! A tank crossing a region boundary is, at the object layer, two writes
//! in the same interval: the source cell (now empty) in the old region
//! and the destination cell (now the tank) in the new region. If diffs
//! were routed purely per-region, a peer interested in only one side
//! would see a tank duplicated (destination delivered, source cleared
//! late) or vanished (source delivered, destination withheld). A
//! [`HandoffRecord`] couples the pair: while the record is active, the
//! router ships *both* cells' diffs to any peer interested in *either*
//! region. Records are epoch-stamped; at a view-change barrier the
//! broadcast exchange flushes every slot, so records from earlier epochs
//! are retired ([`HandoffLog::retire_before_epoch`]). Within an epoch a
//! tick-window retirement ([`HandoffLog::retire_before_tick`]) bounds the
//! log once both sides have long since shipped.

use sdso_core::{Epoch, LogicalTime, ObjectId};

use crate::lattice::RegionId;

/// One ownership transfer: the write pair of a boundary crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandoffRecord {
    /// The vacated source cell.
    pub from: ObjectId,
    /// The newly occupied destination cell.
    pub to: ObjectId,
    /// Region the tank left.
    pub from_region: RegionId,
    /// Region the tank entered.
    pub to_region: RegionId,
    /// Membership epoch the crossing happened in.
    pub epoch: Epoch,
    /// Logical tick of the crossing.
    pub tick: LogicalTime,
}

/// The active handoff records a router consults.
#[derive(Debug, Clone, Default)]
pub struct HandoffLog {
    records: Vec<HandoffRecord>,
}

impl HandoffLog {
    /// An empty log.
    pub fn new() -> Self {
        HandoffLog::default()
    }

    /// Appends a record.
    pub fn record(&mut self, record: HandoffRecord) {
        self.records.push(record);
    }

    /// The active records, oldest first.
    pub fn records(&self) -> &[HandoffRecord] {
        &self.records
    }

    /// Number of active records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no handoffs are active.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The region `object` is coupled to through active handoffs: for a
    /// source cell its destination region and vice versa. Yields one
    /// entry per active record touching `object`.
    pub fn coupled_regions(&self, object: ObjectId) -> impl Iterator<Item = RegionId> + '_ {
        self.records.iter().filter_map(move |r| {
            if r.from == object {
                Some(r.to_region)
            } else if r.to == object {
                Some(r.from_region)
            } else {
                None
            }
        })
    }

    /// Retires records from epochs before `epoch` (the barrier's
    /// broadcast exchange has flushed every slot, so the coupling is no
    /// longer needed).
    pub fn retire_before_epoch(&mut self, epoch: Epoch) {
        self.records.retain(|r| r.epoch >= epoch);
    }

    /// Retires records older than `tick` (both sides have shipped to
    /// every interested peer long ago; callers pass `now - window`).
    pub fn retire_before_tick(&mut self, tick: LogicalTime) {
        self.records.retain(|r| r.tick >= tick);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(from: u32, to: u32, fr: u16, tr: u16, epoch: u32, tick: u64) -> HandoffRecord {
        HandoffRecord {
            from: ObjectId(from),
            to: ObjectId(to),
            from_region: RegionId(fr),
            to_region: RegionId(tr),
            epoch: Epoch(epoch),
            tick: LogicalTime::from_ticks(tick),
        }
    }

    #[test]
    fn coupling_is_symmetric_across_the_pair() {
        let mut log = HandoffLog::new();
        log.record(rec(7, 8, 0, 1, 0, 5));
        assert_eq!(log.coupled_regions(ObjectId(7)).collect::<Vec<_>>(), vec![RegionId(1)]);
        assert_eq!(log.coupled_regions(ObjectId(8)).collect::<Vec<_>>(), vec![RegionId(0)]);
        assert_eq!(log.coupled_regions(ObjectId(9)).count(), 0);
    }

    #[test]
    fn epoch_retirement_drops_only_older_epochs() {
        let mut log = HandoffLog::new();
        log.record(rec(1, 2, 0, 1, 0, 3));
        log.record(rec(3, 4, 1, 2, 1, 9));
        log.retire_before_epoch(Epoch(1));
        assert_eq!(log.len(), 1);
        assert_eq!(log.records()[0].from, ObjectId(3));
    }

    #[test]
    fn tick_retirement_bounds_the_log() {
        let mut log = HandoffLog::new();
        for t in 0..10 {
            log.record(rec(t, t + 1, 0, 1, 0, u64::from(t)));
        }
        log.retire_before_tick(LogicalTime::from_ticks(6));
        assert_eq!(log.len(), 4);
        assert!(log.records().iter().all(|r| r.tick >= LogicalTime::from_ticks(6)));
        assert!(!log.is_empty());
    }
}
