//! Interest sets and the subscription manager that maintains them as
//! sensing ranges move.

use std::collections::BTreeMap;

use sdso_core::Epoch;
use sdso_net::NodeId;

use crate::lattice::{RegionId, RegionLattice};

/// The set of regions a node currently cares about: a fixed-width bitset
/// over a lattice's region indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterestSet {
    bits: Vec<u64>,
    regions: u16,
}

impl InterestSet {
    /// The empty interest set over `regions` regions.
    pub fn empty(regions: u16) -> Self {
        InterestSet { bits: vec![0; usize::from(regions).div_ceil(64)], regions }
    }

    /// The full interest set (every region) — the conservative default.
    pub fn full(regions: u16) -> Self {
        let mut set = InterestSet::empty(regions);
        for r in 0..regions {
            set.insert(RegionId(r));
        }
        set
    }

    /// Adds `region`; returns whether it was newly added. Out-of-range
    /// regions are ignored.
    pub fn insert(&mut self, region: RegionId) -> bool {
        if region.0 >= self.regions {
            return false;
        }
        let (word, bit) = (usize::from(region.0) / 64, region.0 % 64);
        let mask = 1u64 << bit;
        let fresh = self.bits[word] & mask == 0;
        self.bits[word] |= mask;
        fresh
    }

    /// Whether `region` is in the set.
    pub fn contains(&self, region: RegionId) -> bool {
        region.0 < self.regions
            && self.bits[usize::from(region.0) / 64] & (1u64 << (region.0 % 64)) != 0
    }

    /// Unions `other` into `self` (same-lattice sets only; extra regions
    /// in a differently-sized `other` are ignored).
    pub fn union_with(&mut self, other: &InterestSet) {
        for (dst, src) in self.bits.iter_mut().zip(&other.bits) {
            *dst |= src;
        }
    }

    /// Whether every region of `other` is also in `self` — the
    /// monotonicity relation the subscription proptest checks.
    pub fn is_superset_of(&self, other: &InterestSet) -> bool {
        self.bits.iter().zip(&other.bits).all(|(a, b)| a & b == *b)
            && other.bits.len() <= self.bits.len()
    }

    /// Number of regions in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// The regions in the set, ascending.
    pub fn iter(&self) -> impl Iterator<Item = RegionId> + '_ {
        (0..self.regions).map(RegionId).filter(|&r| self.contains(r))
    }
}

/// Maintains per-node interest sets as sensing ranges move.
///
/// Within one membership epoch interest only *grows* (each observation
/// unions in the regions the node's sensing box intersects), so a
/// suppression decision made against an older observation is never less
/// conservative than one made against a newer observation of the same
/// epoch. At an epoch change ([`SubscriptionManager::on_epoch`]) the sets
/// reset and rebuild from fresh observations — the view-change barrier's
/// broadcast exchange has flushed every slot, so nothing can be lost in
/// the gap.
#[derive(Debug, Clone)]
pub struct SubscriptionManager {
    lattice: RegionLattice,
    epoch: Epoch,
    interest: BTreeMap<NodeId, InterestSet>,
}

impl SubscriptionManager {
    /// A manager over `lattice`, starting at epoch 0 with no
    /// subscriptions.
    pub fn new(lattice: RegionLattice) -> Self {
        SubscriptionManager { lattice, epoch: Epoch::ZERO, interest: BTreeMap::new() }
    }

    /// The lattice subscriptions are expressed over.
    pub fn lattice(&self) -> &RegionLattice {
        &self.lattice
    }

    /// The epoch the current subscriptions were observed in.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Records that `node` senses radius `range` around `(x, y)`: unions
    /// the intersecting regions into its interest set (monotone within
    /// the epoch).
    pub fn observe(&mut self, node: NodeId, x: u16, y: u16, range: u16) {
        let regions = self.lattice.regions();
        let set = self.interest.entry(node).or_insert_with(|| InterestSet::empty(regions));
        for region in self.lattice.regions_within(x, y, range) {
            set.insert(region);
        }
    }

    /// The interest set observed for `node`, if any observation has been
    /// made this epoch.
    pub fn interest_of(&self, node: NodeId) -> Option<&InterestSet> {
        self.interest.get(&node)
    }

    /// Whether `node`'s interest covers `region`. A node with *no*
    /// observation this epoch covers everything — unknown interest must
    /// never suppress traffic.
    pub fn covers(&self, node: NodeId, region: RegionId) -> bool {
        self.interest.get(&node).is_none_or(|set| set.contains(region))
    }

    /// Crosses into `epoch`: drops every subscription so interest
    /// rebuilds from post-barrier observations. A same-epoch call is a
    /// no-op, so callers can invoke this unconditionally per tick.
    pub fn on_epoch(&mut self, epoch: Epoch) {
        if epoch != self.epoch {
            self.epoch = epoch;
            self.interest.clear();
        }
    }

    /// Forgets nodes that left the group (their slots are gone; keeping
    /// their sets would only leak).
    pub fn forget(&mut self, nodes: &[NodeId]) {
        for node in nodes {
            self.interest.remove(node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interest_set_basics() {
        let mut set = InterestSet::empty(12);
        assert!(set.is_empty());
        assert!(set.insert(RegionId(3)));
        assert!(!set.insert(RegionId(3)), "re-insert is not fresh");
        assert!(set.insert(RegionId(11)));
        assert!(!set.insert(RegionId(12)), "out of range ignored");
        assert!(set.contains(RegionId(3)) && set.contains(RegionId(11)));
        assert!(!set.contains(RegionId(4)) && !set.contains(RegionId(40)));
        assert_eq!(set.len(), 2);
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![RegionId(3), RegionId(11)]);
        assert_eq!(InterestSet::full(12).len(), 12);
    }

    #[test]
    fn union_and_superset() {
        let mut a = InterestSet::empty(70);
        a.insert(RegionId(1));
        a.insert(RegionId(65));
        let mut b = InterestSet::empty(70);
        b.insert(RegionId(65));
        assert!(a.is_superset_of(&b));
        assert!(!b.is_superset_of(&a));
        b.union_with(&a);
        assert!(b.is_superset_of(&a) && a.is_superset_of(&b));
    }

    #[test]
    fn observations_grow_interest_monotonically() {
        let mut subs = SubscriptionManager::new(RegionLattice::paper());
        subs.observe(3, 4, 4, 2);
        let before = subs.interest_of(3).unwrap().clone();
        subs.observe(3, 20, 20, 2); // moved across the grid
        let after = subs.interest_of(3).unwrap().clone();
        assert!(after.is_superset_of(&before), "interest only grows within an epoch");
        assert!(after.len() > before.len());
    }

    #[test]
    fn unknown_interest_covers_everything() {
        let subs = SubscriptionManager::new(RegionLattice::paper());
        assert!(subs.covers(9, RegionId(0)));
        assert!(subs.covers(9, RegionId(11)));
    }

    #[test]
    fn epoch_change_resets_subscriptions() {
        let mut subs = SubscriptionManager::new(RegionLattice::paper());
        subs.observe(1, 0, 0, 1);
        assert!(!subs.covers(1, RegionId(11)));
        subs.on_epoch(Epoch(0)); // same epoch: no-op
        assert!(!subs.covers(1, RegionId(11)));
        subs.on_epoch(Epoch(1));
        assert!(subs.covers(1, RegionId(11)), "post-barrier interest is unknown again");
        assert_eq!(subs.epoch(), Epoch(1));
    }

    #[test]
    fn forget_drops_departed_nodes() {
        let mut subs = SubscriptionManager::new(RegionLattice::paper());
        subs.observe(1, 0, 0, 1);
        subs.observe(2, 0, 0, 1);
        subs.forget(&[1]);
        assert!(subs.interest_of(1).is_none());
        assert!(subs.interest_of(2).is_some());
    }
}
