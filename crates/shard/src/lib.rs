//! # sdso-shard — spatial sharding and interest management for S-DSO
//!
//! The paper exploits its spatial constraint only *within* a full mesh:
//! every process holds a slot for every other process, so per-node
//! traffic grows with the cluster even when the s-function rarely
//! schedules distant peers. This crate turns the spatial constraint into
//! a scaling mechanism:
//!
//! * [`RegionLattice`] partitions the grid into rectangular regions (a
//!   total partition — every cell belongs to exactly one region);
//! * [`InterestSet`] / [`SubscriptionManager`] track which regions each
//!   node's sensing range intersects, growing monotonically within a
//!   membership epoch and resetting at view-change barriers;
//! * [`RegionGroups`] derives a per-region exchange group (a
//!   [`sdso_core::MembershipView`] scope) from the global view, merging
//!   overlapping per-group schedules through
//!   [`sdso_core::ExchangeList::schedule_min`] so boundary-straddling
//!   peers rendezvous once;
//! * [`HandoffRecord`] / [`HandoffLog`] couple the two cells a
//!   boundary-crossing write pair touches, so a crossing is delivered to
//!   every interested peer whole — no lost and no duplicated updates;
//! * [`InterestRouter`] assembles these into a
//!   [`sdso_core::DiffRouter`]: live multicast exchanges ship only the
//!   objects inside each peer's interest set, turning per-node traffic
//!   into O(interest set) instead of O(cluster x grid).
//!
//! Correctness does not rest on interest precision: a suppressed diff
//! stays merged in the destination's slot and flushes at the next
//! broadcast exchange (epoch barriers, the terminal sync), so final
//! worlds are bit-identical with and without sharding. The crate is
//! game-agnostic — it never decodes object bodies; the game layer feeds
//! it positions (`sdso-game`'s region-aware driver) and the bench gates
//! the traffic ratio (`BENCH_4.json`).

#![warn(missing_docs)]

pub mod groups;
pub mod handoff;
pub mod interest;
pub mod lattice;
pub mod router;

pub use groups::RegionGroups;
pub use handoff::{HandoffLog, HandoffRecord};
pub use interest::{InterestSet, SubscriptionManager};
pub use lattice::{RegionId, RegionLattice, DEFAULT_REGION_EDGE};
pub use router::{InterestRouter, HANDOFF_WINDOW_TICKS};
