//! Property tests of the sharding invariants:
//!
//! 1. region assignment is a *total partition* of the grid;
//! 2. handoff preserves object state — draining a slot split by any
//!    region predicate and applying both halves equals applying the
//!    unfiltered drain (transfer then merge == no-op);
//! 3. interest-set updates are monotone within an epoch.

use proptest::prelude::*;
use sdso_core::{Diff, LogicalTime, ObjectId, SlottedBuffer, Version};
use sdso_shard::{InterestRouter, RegionId, RegionLattice, SubscriptionManager};

proptest! {
    // ------------------------------------------------------------------
    // 1. Total partition: every cell maps to exactly one region, every
    //    region id is in range, and no region is empty.
    // ------------------------------------------------------------------
    #[test]
    fn region_assignment_is_a_total_partition(
        width in 1u16..48,
        height in 1u16..48,
        regions_x in 1u16..8,
        regions_y in 1u16..8,
    ) {
        let lattice = RegionLattice::new(width, height, regions_x, regions_y);
        let mut per_region = vec![0u32; usize::from(lattice.regions())];
        for y in 0..height {
            for x in 0..width {
                let RegionId(r) = lattice.region_of_xy(x, y);
                prop_assert!(r < lattice.regions(), "region id in range");
                per_region[usize::from(r)] += 1;
                // The object mapping agrees with the coordinate mapping.
                let object = ObjectId(u32::from(y) * u32::from(width) + u32::from(x));
                prop_assert_eq!(lattice.region_of_object(object), RegionId(r));
            }
        }
        let total: u32 = per_region.iter().sum();
        prop_assert_eq!(total, u32::from(width) * u32::from(height), "partition is total");
        prop_assert!(per_region.iter().all(|&c| c > 0), "no region is empty");
    }

    // ------------------------------------------------------------------
    // 2. Handoff preserves object state: splitting a peer's slot along
    //    any region boundary and delivering both halves (in either
    //    order) reproduces exactly the state the unsplit drain produces.
    // ------------------------------------------------------------------
    #[test]
    fn handoff_transfer_then_merge_is_a_no_op(
        writes in proptest::collection::vec((0u32..24, 0u32..15, any::<u8>()), 1..48),
        boundary in 0u32..24,
    ) {
        const SIZE: usize = 16;
        let lattice = RegionLattice::new(6, 4, 2, 2);
        let fill = |buf: &mut SlottedBuffer| {
            for (i, &(obj, offset, byte)) in writes.iter().enumerate() {
                let stamp = Version::new(LogicalTime::from_ticks(i as u64 + 1), 0);
                buf.buffer_for_all(ObjectId(obj), &Diff::single(offset, vec![byte]), stamp, &[]);
            }
        };
        let apply = |target: &mut Vec<Vec<u8>>, updates: Vec<sdso_core::PendingUpdate>| {
            for u in updates {
                u.diff.apply(&mut target[u.object.0 as usize]).unwrap();
            }
        };

        // Reference: one unfiltered drain (what a broadcast flush ships).
        let mut whole = SlottedBuffer::new(2, 0, true);
        fill(&mut whole);
        let mut reference = vec![vec![0u8; SIZE]; 24];
        apply(&mut reference, whole.drain_slot(1));

        // Split: the "transferred" region half first, then the merge of
        // what stayed behind — and the reverse order too.
        let side = |obj: ObjectId| {
            lattice.region_of_object(obj) == lattice.region_of_object(ObjectId(boundary))
        };
        for flip in [false, true] {
            let mut split = SlottedBuffer::new(2, 0, true);
            fill(&mut split);
            let first = split.drain_slot_filtered(1, |o| side(o) != flip);
            let second = split.drain_slot_filtered(1, |o| side(o) == flip);
            let mut state = vec![vec![0u8; SIZE]; 24];
            apply(&mut state, first);
            apply(&mut state, second);
            prop_assert_eq!(&state, &reference, "split delivery diverged (flip={})", flip);
            prop_assert_eq!(split.slot_len(1), 0, "nothing lost in the split");
        }
    }

    // ------------------------------------------------------------------
    // 3. Interest monotonicity: within one epoch, every observation only
    //    grows a node's interest set, and covered regions stay covered.
    // ------------------------------------------------------------------
    #[test]
    fn interest_updates_are_monotone_within_an_epoch(
        moves in proptest::collection::vec((0u16..32, 0u16..24, 0u16..6), 1..32),
        node in 0u16..4,
    ) {
        let mut subs = SubscriptionManager::new(RegionLattice::paper());
        let mut previous = None;
        for &(x, y, range) in &moves {
            subs.observe(node, x, y, range);
            let current = subs.interest_of(node).unwrap().clone();
            if let Some(prev) = previous {
                prop_assert!(
                    current.is_superset_of(&prev),
                    "interest shrank within an epoch"
                );
            }
            previous = Some(current);
        }
        // And the router built on top never *starts* suppressing an
        // object it once routed (same epoch, same peer).
        let mut router = InterestRouter::new(RegionLattice::paper());
        let probe = ObjectId(12 * 32 + 16);
        let mut routed_before = false;
        for (i, &(x, y, range)) in moves.iter().enumerate() {
            router.note_position(node, x, y, range, LogicalTime::from_ticks(i as u64 + 1));
            let routed_now = sdso_core::DiffRouter::routes(&router, node, probe);
            if routed_before {
                prop_assert!(routed_now, "a routed object became suppressed mid-epoch");
            }
            routed_before = routed_now;
        }
    }
}
