//! Epoch-based dynamic membership for the S-DSO runtime.
//!
//! The paper fixes the process group at startup: `share()` is called once
//! and the exchange list (Fig. 2) and slotted buffer (Fig. 3) are sized for
//! a static cluster. This crate adds the vocabulary for groups that change
//! at runtime:
//!
//! * [`MembershipView`] — the current group: an [`Epoch`] number plus the
//!   set of live members, drawn from a fixed capacity of node-id slots
//!   (transports stay provisioned at capacity; the view scopes which slots
//!   are active);
//! * [`ViewChange`] — one reconfiguration step: who joins and who leaves.
//!   Applying it bumps the epoch by exactly one, so every process that
//!   applies the same change sequence computes the same epoch;
//! * [`MembershipPlan`] — a deterministic, logical-time-ordered sequence of
//!   view changes. It stands in for a membership sequencer: every process
//!   (and the late joiners themselves) read the same plan, so view changes
//!   are applied at identical logical times everywhere and runs replay
//!   bit-identically.
//!
//! The runtime layers on top: `sdso-core` tags every rendezvous message
//! with the epoch it was computed under and rejects cross-epoch traffic at
//! its view-change barrier; late joiners reach a consistent state via an
//! object snapshot transfer instead of full-history replay.

#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::fmt;

use sdso_net::{NodeId, PeerEvent};

/// A monotonically increasing view number. Every process that applies the
/// same [`ViewChange`] sequence computes the same epoch, so the epoch tag
/// on a message identifies exactly which membership view it was computed
/// under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Epoch(pub u32);

impl Epoch {
    /// The initial epoch (before any view change).
    pub const ZERO: Epoch = Epoch(0);

    /// The epoch after one more view change.
    #[must_use]
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Errors from membership bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberError {
    /// A joiner was already a member, or a node joined and left in one
    /// change.
    AlreadyMember(NodeId),
    /// A leaver was not a member.
    NotAMember(NodeId),
    /// A node id at or beyond the provisioned capacity.
    BeyondCapacity(NodeId),
    /// A change would leave the group empty.
    EmptyGroup,
}

impl fmt::Display for MemberError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemberError::AlreadyMember(n) => write!(f, "node {n} is already a member"),
            MemberError::NotAMember(n) => write!(f, "node {n} is not a member"),
            MemberError::BeyondCapacity(n) => write!(f, "node {n} is beyond the capacity"),
            MemberError::EmptyGroup => write!(f, "view change would empty the group"),
        }
    }
}

impl std::error::Error for MemberError {}

/// One reconfiguration step: the processes that join and the processes
/// that leave (or are evicted) together, atomically, at one view-change
/// barrier.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ViewChange {
    /// Processes entering the group at this change.
    pub joined: BTreeSet<NodeId>,
    /// Processes leaving (or evicted from) the group at this change.
    pub left: BTreeSet<NodeId>,
}

impl ViewChange {
    /// A change where `joined` enter and `left` leave.
    pub fn new(
        joined: impl IntoIterator<Item = NodeId>,
        left: impl IntoIterator<Item = NodeId>,
    ) -> Self {
        ViewChange { joined: joined.into_iter().collect(), left: left.into_iter().collect() }
    }

    /// A pure-join change.
    pub fn join(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        ViewChange::new(nodes, [])
    }

    /// A pure-leave change.
    pub fn leave(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        ViewChange::new([], nodes)
    }

    /// Whether the change does nothing.
    pub fn is_empty(&self) -> bool {
        self.joined.is_empty() && self.left.is_empty()
    }
}

/// The current membership: an epoch number plus the live member set, over a
/// fixed capacity of node-id slots `0..capacity`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipView {
    epoch: Epoch,
    members: BTreeSet<NodeId>,
    capacity: usize,
}

impl MembershipView {
    /// The static view: every slot `0..capacity` is a member, epoch 0.
    /// This is what a runtime without churn uses — it reproduces the
    /// paper's fixed group exactly.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds `NodeId::MAX`.
    pub fn full(capacity: usize) -> Self {
        assert!(capacity > 0, "membership capacity must be positive");
        assert!(capacity <= usize::from(NodeId::MAX), "capacity too large");
        MembershipView { epoch: Epoch::ZERO, members: (0..capacity as NodeId).collect(), capacity }
    }

    /// An initial view with an explicit member subset of `0..capacity`.
    ///
    /// # Errors
    ///
    /// Returns [`MemberError`] if a member is beyond capacity or the set is
    /// empty.
    pub fn initial(
        capacity: usize,
        members: impl IntoIterator<Item = NodeId>,
    ) -> Result<Self, MemberError> {
        let mut view = MembershipView::full(capacity);
        view.members = members.into_iter().collect();
        if view.members.is_empty() {
            return Err(MemberError::EmptyGroup);
        }
        if let Some(&beyond) = view.members.iter().find(|&&m| usize::from(m) >= capacity) {
            return Err(MemberError::BeyondCapacity(beyond));
        }
        Ok(view)
    }

    /// The view's epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The provisioned slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The live members, ascending.
    pub fn members(&self) -> &BTreeSet<NodeId> {
        &self.members
    }

    /// Number of live members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group is empty (never true for a valid view).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `node` is a live member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// The live members other than `me`, ascending.
    pub fn peers_of(&self, me: NodeId) -> Vec<NodeId> {
        self.members.iter().copied().filter(|&m| m != me).collect()
    }

    /// The designated snapshot donor for a joiner: the lowest-numbered
    /// member that is neither joining nor leaving in `change` — it holds
    /// pre-change state and survives the change, so its post-barrier
    /// replicas are exactly what the joiner must converge to.
    pub fn donor_for(&self, change: &ViewChange) -> Option<NodeId> {
        self.members
            .iter()
            .copied()
            .find(|m| !change.left.contains(m) && !change.joined.contains(m))
    }

    /// Applies one view change, bumping the epoch.
    ///
    /// # Errors
    ///
    /// Returns [`MemberError`] on overlapping/invalid join or leave sets,
    /// members beyond capacity, or a change that empties the group. On
    /// error the view is unchanged.
    pub fn apply(&mut self, change: &ViewChange) -> Result<(), MemberError> {
        for &j in &change.joined {
            if usize::from(j) >= self.capacity {
                return Err(MemberError::BeyondCapacity(j));
            }
            if self.members.contains(&j) || change.left.contains(&j) {
                return Err(MemberError::AlreadyMember(j));
            }
        }
        for &l in &change.left {
            if !self.members.contains(&l) {
                return Err(MemberError::NotAMember(l));
            }
        }
        if self.members.len() + change.joined.len() == change.left.len() {
            return Err(MemberError::EmptyGroup);
        }
        for &l in &change.left {
            self.members.remove(&l);
        }
        for &j in &change.joined {
            self.members.insert(j);
        }
        self.epoch = self.epoch.next();
        Ok(())
    }
}

/// A deterministic, logical-time-ordered membership schedule: the stand-in
/// for a membership sequencer. Each entry is a trigger tick (logical time,
/// in rendezvous ticks) paired with the [`ViewChange`] every process
/// applies at its barrier after completing that tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipPlan {
    capacity: usize,
    initial: BTreeSet<NodeId>,
    changes: Vec<(u64, ViewChange)>,
}

impl MembershipPlan {
    /// A plan with no churn: the paper's static group of `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds `NodeId::MAX`.
    pub fn static_group(n: usize) -> Self {
        let view = MembershipView::full(n);
        MembershipPlan { capacity: n, initial: view.members.clone(), changes: Vec::new() }
    }

    /// A plan over `capacity` slots with an explicit initial member set.
    ///
    /// # Panics
    ///
    /// Panics if the initial set is empty or a member is beyond capacity
    /// (plans are built by test/driver code; a bad one is a bug, not a
    /// runtime condition).
    pub fn new(capacity: usize, initial: impl IntoIterator<Item = NodeId>) -> Self {
        let view = MembershipView::initial(capacity, initial).expect("valid initial member set");
        MembershipPlan { capacity, initial: view.members.clone(), changes: Vec::new() }
    }

    /// Appends a view change triggered after logical tick `tick`.
    ///
    /// # Panics
    ///
    /// Panics if `tick` does not strictly increase over the previous
    /// change, or if replaying the plan with this change appended is
    /// invalid (bad joins/leaves).
    #[must_use]
    pub fn with_change(mut self, tick: u64, change: ViewChange) -> Self {
        if let Some(&(last, _)) = self.changes.last() {
            assert!(tick > last, "view-change triggers must strictly increase");
        }
        self.changes.push((tick, change));
        // Replay to validate: panics early at construction, not mid-run.
        let _ = self.final_view();
        self
    }

    /// The provisioned slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The initial member set.
    pub fn initial_members(&self) -> &BTreeSet<NodeId> {
        &self.initial
    }

    /// The scheduled changes, ascending by trigger tick.
    pub fn changes(&self) -> &[(u64, ViewChange)] {
        &self.changes
    }

    /// The view change triggered after `tick`, if any.
    pub fn change_at(&self, tick: u64) -> Option<&ViewChange> {
        self.changes.iter().find(|&&(t, _)| t == tick).map(|(_, c)| c)
    }

    /// The membership view in force *after* all changes triggered at or
    /// before `tick` have been applied.
    pub fn view_at(&self, tick: u64) -> MembershipView {
        let mut view = MembershipView::initial(self.capacity, self.initial.iter().copied())
            .expect("plan invariant: valid initial set");
        for (t, change) in &self.changes {
            if *t > tick {
                break;
            }
            view.apply(change).expect("plan invariant: valid change sequence");
        }
        view
    }

    /// The view after every change has been applied.
    pub fn final_view(&self) -> MembershipView {
        self.view_at(u64::MAX)
    }

    /// The trigger tick at which `node` joins, if it is a planned joiner.
    pub fn join_tick_of(&self, node: NodeId) -> Option<u64> {
        self.changes.iter().find(|(_, c)| c.joined.contains(&node)).map(|&(t, _)| t)
    }

    /// The trigger tick at which `node` leaves, if it is a planned leaver.
    pub fn leave_tick_of(&self, node: NodeId) -> Option<u64> {
        self.changes.iter().find(|(_, c)| c.left.contains(&node)).map(|&(t, _)| t)
    }

    /// Whether `node` is in the initial member set.
    pub fn is_initial(&self, node: NodeId) -> bool {
        self.initial.contains(&node)
    }
}

/// Folds a transport's drained [`PeerEvent`]s into the leave half of a
/// [`ViewChange`].
///
/// This is the bridge from connection teardown to membership: when a
/// transport (the reactor, or `TcpMesh` after its reconnect budget runs
/// out) reports links going down via
/// [`Endpoint::take_peer_events`](sdso_net::Endpoint::take_peer_events),
/// the *net* effect of the drain decides who leaves. A peer whose **last**
/// event in the batch is [`PeerEvent::Down`] and who is a live member of
/// `view` becomes a leaver; a peer that flapped (`Down` then `Up` within
/// the same drain — a successful reconnect) stays. Events for nodes that
/// are not members of `view` are ignored, so a transport-level hiccup on a
/// slot that already left cannot produce an invalid change.
///
/// The returned change is empty when nothing needs to happen; callers
/// should check [`ViewChange::is_empty`] before applying it (applying an
/// empty change would still bump the epoch). The caller remains
/// responsible for the one failure this helper cannot rule out:
/// [`MembershipView::apply`] rejects a change that would empty the group.
pub fn leave_change_from_events(view: &MembershipView, events: &[PeerEvent]) -> ViewChange {
    let mut down: BTreeSet<NodeId> = BTreeSet::new();
    for event in events {
        match *event {
            PeerEvent::Down(peer) => {
                if view.contains(peer) {
                    down.insert(peer);
                }
            }
            PeerEvent::Up(peer) => {
                down.remove(&peer);
            }
        }
    }
    ViewChange::leave(down)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_view_matches_static_group() {
        let v = MembershipView::full(4);
        assert_eq!(v.epoch(), Epoch::ZERO);
        assert_eq!(v.len(), 4);
        assert_eq!(v.peers_of(2), vec![0, 1, 3]);
        assert!(v.contains(0) && v.contains(3) && !v.contains(4));
    }

    #[test]
    fn apply_join_and_leave_bumps_epoch() {
        let mut v = MembershipView::full(6);
        v.members = [0, 1, 2, 3].into_iter().collect();
        let change = ViewChange::new([4, 5], [0, 1]);
        v.apply(&change).unwrap();
        assert_eq!(v.epoch(), Epoch(1));
        assert_eq!(v.members().iter().copied().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn apply_rejects_invalid_changes() {
        let mut v = MembershipView::initial(4, [0, 1]).unwrap();
        assert_eq!(v.apply(&ViewChange::join([1])), Err(MemberError::AlreadyMember(1)));
        assert_eq!(v.apply(&ViewChange::leave([3])), Err(MemberError::NotAMember(3)));
        assert_eq!(v.apply(&ViewChange::join([9])), Err(MemberError::BeyondCapacity(9)));
        assert_eq!(v.apply(&ViewChange::leave([0, 1])), Err(MemberError::EmptyGroup));
        // Join-and-leave in one change is contradictory.
        assert_eq!(v.apply(&ViewChange::new([2], [2])), Err(MemberError::AlreadyMember(2)));
        // Failed applies left the view untouched.
        assert_eq!(v.epoch(), Epoch::ZERO);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn donor_is_lowest_continuing_member() {
        let v = MembershipView::initial(6, [1, 2, 3]).unwrap();
        let change = ViewChange::new([4], [1]);
        assert_eq!(v.donor_for(&change), Some(2));
        // Everybody leaves except the joiner: no donor exists.
        let wipe = ViewChange::new([4], [1, 2, 3]);
        assert_eq!(v.donor_for(&wipe), None);
    }

    #[test]
    fn plan_views_replay_deterministically() {
        let plan = MembershipPlan::new(6, 0..4)
            .with_change(10, ViewChange::new([4], [0]))
            .with_change(20, ViewChange::new([5], [1]));
        assert_eq!(plan.view_at(9), plan.view_at(0));
        assert_eq!(plan.view_at(9).epoch(), Epoch(0));
        let at_10 = plan.view_at(10);
        assert_eq!(at_10.epoch(), Epoch(1));
        assert!(at_10.contains(4) && !at_10.contains(0));
        let final_view = plan.final_view();
        assert_eq!(final_view.epoch(), Epoch(2));
        assert_eq!(final_view.members().iter().copied().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
        assert_eq!(plan.join_tick_of(5), Some(20));
        assert_eq!(plan.leave_tick_of(1), Some(20));
        assert_eq!(plan.join_tick_of(0), None);
        assert!(plan.is_initial(0) && !plan.is_initial(4));
    }

    #[test]
    fn plan_change_lookup_by_tick() {
        let plan = MembershipPlan::new(4, 0..2).with_change(5, ViewChange::join([2]));
        assert!(plan.change_at(5).is_some());
        assert!(plan.change_at(4).is_none());
        assert_eq!(plan.changes().len(), 1);
        assert_eq!(plan.capacity(), 4);
        assert_eq!(plan.initial_members().len(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn plan_rejects_non_increasing_triggers() {
        let _ = MembershipPlan::new(4, 0..2)
            .with_change(5, ViewChange::join([2]))
            .with_change(5, ViewChange::join([3]));
    }

    #[test]
    fn static_group_plan_has_no_churn() {
        let plan = MembershipPlan::static_group(3);
        assert_eq!(plan.final_view(), MembershipView::full(3));
        assert!(plan.changes().is_empty());
    }

    #[test]
    fn epoch_displays_compactly() {
        assert_eq!(Epoch(3).to_string(), "e3");
        assert_eq!(Epoch::ZERO.next(), Epoch(1));
    }

    #[test]
    fn teardown_events_become_a_leave_change() {
        let view = MembershipView::full(4);
        let events = [PeerEvent::Down(2), PeerEvent::Down(3)];
        let change = leave_change_from_events(&view, &events);
        assert_eq!(change, ViewChange::leave([2, 3]));
        let mut after = view.clone();
        after.apply(&change).unwrap();
        assert_eq!(after.epoch(), Epoch(1));
        assert!(!after.contains(2) && !after.contains(3) && after.contains(0));
    }

    #[test]
    fn reconnect_flap_within_one_drain_is_not_a_leave() {
        let view = MembershipView::full(3);
        // Peer 1 dropped and came back before the drain; peer 2 stayed down.
        let events = [PeerEvent::Down(1), PeerEvent::Down(2), PeerEvent::Up(1), PeerEvent::Down(2)];
        let change = leave_change_from_events(&view, &events);
        assert_eq!(change, ViewChange::leave([2]));
    }

    #[test]
    fn events_for_non_members_are_ignored() {
        let view = MembershipView::initial(6, [0, 1, 2]).unwrap();
        // Node 4 is a provisioned slot but not a live member: its link
        // noise must not fabricate a leaver.
        let events = [PeerEvent::Down(4), PeerEvent::Down(1)];
        let change = leave_change_from_events(&view, &events);
        assert_eq!(change, ViewChange::leave([1]));
    }

    #[test]
    fn quiet_drain_yields_an_empty_change() {
        let view = MembershipView::full(2);
        assert!(leave_change_from_events(&view, &[]).is_empty());
        // An Up with no preceding Down (initial connect) is also quiet.
        assert!(leave_change_from_events(&view, &[PeerEvent::Up(1)]).is_empty());
    }
}
