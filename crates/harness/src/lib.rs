//! Experiment harness for the S-DSO reproduction.
//!
//! Ties together the virtual-time cluster (`sdso-sim`), the tank game
//! (`sdso-game`) and the consistency protocols (`sdso-protocols`) into
//! runnable experiments that regenerate every figure of the paper's
//! evaluation section:
//!
//! | Figure | Metric | Function |
//! |---|---|---|
//! | Fig. 5 | normalised execution time | [`Sweep::figure5`] |
//! | Fig. 6 | total messages | [`Sweep::figure6`] |
//! | Fig. 7 | data messages | [`Sweep::figure7`] |
//! | Fig. 8 | protocol overhead % | [`Sweep::figure8`] |
//! | Ext. A | data-size sweep | [`Sweep::ext_data_size`] |
//! | Ext. B | blocking breakdown | [`Sweep::ext_blocking`] |
//! | Ext. C | diff-merging ablation | [`Sweep::ext_diff_merging`] |
//! | Ext. D | LRC + causal comparison | [`Sweep::ext_protocols`] |
//!
//! # Example
//!
//! ```no_run
//! use sdso_harness::Sweep;
//!
//! # fn main() -> Result<(), sdso_sim::SimError> {
//! for table in Sweep::paper().figure5()? {
//!     println!("{table}");
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod chaos;
mod churn;
mod crash;
mod experiment;
mod figures;
mod shard;
mod table;
pub mod transports;

pub use chaos::{chaos_plan, chaos_retry_config, chaos_table, converged, run_chaos_experiment};
pub use churn::{churn_converged, churn_table, default_churn_plan, run_churn_experiment};
pub use crash::{
    crash_converged, crash_plan_membership, crash_table, default_crash_plan, run_crash_experiment,
};
pub use experiment::{mean_of, run_experiment, run_experiment_obs, run_seeds, RunSummary};
pub use figures::Sweep;
pub use shard::{
    bytes_per_node_tick, exchanges_per_node_tick, run_shard_comparison, run_shard_window,
    ShardComparison, ShardWindow,
};
pub use table::Table;
