//! Scale experiments: sharded vs. full-mesh traffic at 64 and 256 nodes.
//!
//! The paper's evaluation stops at 16 processes on a full mesh. This
//! module drives the region-sharded MSYNC2-SHARD protocol (see
//! `sdso_game::shard` and the `sdso-shard` crate) against plain MSYNC2
//! on [`Scenario::scaled`] grids, and reports the first-class scaling
//! metric the perf gate (`BENCH_4.json`) consumes: per-node bytes per
//! tick, sharded as a fraction of full-mesh.

use sdso_game::{Protocol, Scenario};
use sdso_sim::{NetworkModel, SimError};

use crate::chaos::converged;
use crate::experiment::{run_experiment, RunSummary};

/// Result of one sharded-vs-mesh pairing at a given cluster size.
#[derive(Debug, Clone)]
pub struct ShardComparison {
    /// Cluster size (one team per node).
    pub nodes: usize,
    /// The full-mesh MSYNC2 run.
    pub mesh: RunSummary,
    /// The region-sharded MSYNC2-SHARD run.
    pub sharded: RunSummary,
}

/// Mean *live* bytes each node puts on the wire per game tick —
/// excluding the terminal measurement flush, which ships every
/// suppressed diff once at shutdown so cross-replica oracles can compare
/// final worlds, and which would otherwise cancel out exactly the
/// traffic that interest routing avoids in steady state.
pub fn bytes_per_node_tick(summary: &RunSummary) -> f64 {
    let ticks: u64 = summary.per_node.iter().map(|s| s.ticks).sum();
    if ticks == 0 {
        return 0.0;
    }
    summary.live_bytes() as f64 / ticks as f64
}

/// Mean live exchanges each node performs per game tick.
pub fn exchanges_per_node_tick(summary: &RunSummary) -> f64 {
    let ticks: u64 = summary.per_node.iter().map(|s| s.ticks).sum();
    if ticks == 0 {
        return 0.0;
    }
    summary.per_node.iter().map(|s| s.dso.exchanges).sum::<u64>() as f64 / ticks as f64
}

impl ShardComparison {
    /// Sharded bytes/tick over mesh bytes/tick — the gated ratio.
    pub fn traffic_ratio(&self) -> f64 {
        let mesh = bytes_per_node_tick(&self.mesh);
        if mesh == 0.0 {
            return f64::INFINITY;
        }
        bytes_per_node_tick(&self.sharded) / mesh
    }

    /// Sharded exchanges/tick over mesh exchanges/tick.
    pub fn exchange_ratio(&self) -> f64 {
        let mesh = exchanges_per_node_tick(&self.mesh);
        if mesh == 0.0 {
            return f64::INFINITY;
        }
        exchanges_per_node_tick(&self.sharded) / mesh
    }

    /// Total diffs the interest router held back from live exchanges.
    pub fn suppressed(&self) -> u64 {
        self.sharded.per_node.iter().map(|s| s.dso.shard_suppressed).sum()
    }

    /// Whether both runs' replicas each converged to one world.
    pub fn both_converged(&self) -> bool {
        converged(&self.mesh) && converged(&self.sharded)
    }
}

/// Runs MSYNC2 (full mesh) and MSYNC2-SHARD on the same
/// [`Scenario::scaled`] configuration and pairs the results.
///
/// # Errors
///
/// Fails if either cluster run fails.
pub fn run_shard_comparison(
    teams: u16,
    range: u16,
    ticks: u64,
    model: NetworkModel,
) -> Result<ShardComparison, SimError> {
    let scenario = Scenario::scaled(teams, range).with_ticks(ticks);
    let mesh = run_experiment(&scenario, Protocol::Msync2, model)?;
    let sharded = run_experiment(&scenario, Protocol::Msync2Shard, model)?;
    Ok(ShardComparison { nodes: usize::from(teams), mesh, sharded })
}

/// A steady-state windowed pairing: the same comparison at two run
/// lengths, so per-tick rates can be measured over the late window
/// `warmup..ticks` alone.
///
/// Cumulative short-run ratios systematically flatter the full mesh:
/// MSYNC2's far pairs exchange rarely at scale, so early in a run the
/// mesh has not yet shipped the dirty trails those pairs accumulate —
/// traffic it *always* pays eventually. Subtracting a warmup-length run
/// from a full-length run (the simulator is deterministic, so the first
/// `warmup` ticks of both are identical) isolates the steady-state
/// marginal rate, the honest estimator of the infinite-horizon ratio.
#[derive(Debug, Clone)]
pub struct ShardWindow {
    /// The `warmup`-tick cumulative pairing.
    pub warmup: ShardComparison,
    /// The `ticks`-tick cumulative pairing.
    pub full: ShardComparison,
}

/// Live bytes per node-tick accrued strictly inside the late window.
fn marginal_rate(full: &RunSummary, warmup: &RunSummary) -> f64 {
    let ticks: u64 = full.per_node.iter().map(|s| s.ticks).sum::<u64>()
        - warmup.per_node.iter().map(|s| s.ticks).sum::<u64>();
    if ticks == 0 {
        return 0.0;
    }
    full.live_bytes().saturating_sub(warmup.live_bytes()) as f64 / ticks as f64
}

impl ShardWindow {
    /// Sharded over mesh live bytes/node-tick, measured in the
    /// steady-state window only — the gated scale metric.
    pub fn steady_traffic_ratio(&self) -> f64 {
        let mesh = marginal_rate(&self.full.mesh, &self.warmup.mesh);
        if mesh == 0.0 {
            return f64::INFINITY;
        }
        marginal_rate(&self.full.sharded, &self.warmup.sharded) / mesh
    }

    /// Mesh live bytes/node-tick in the steady-state window.
    pub fn mesh_steady_rate(&self) -> f64 {
        marginal_rate(&self.full.mesh, &self.warmup.mesh)
    }

    /// Sharded live bytes/node-tick in the steady-state window.
    pub fn sharded_steady_rate(&self) -> f64 {
        marginal_rate(&self.full.sharded, &self.warmup.sharded)
    }
}

/// Runs the shard comparison at `warmup` and `ticks` and pairs them into
/// a steady-state window.
///
/// # Errors
///
/// Fails if any of the four cluster runs fails.
pub fn run_shard_window(
    teams: u16,
    range: u16,
    warmup: u64,
    ticks: u64,
    model: NetworkModel,
) -> Result<ShardWindow, SimError> {
    let warmup_cmp = run_shard_comparison(teams, range, warmup, model)?;
    let full_cmp = run_shard_comparison(teams, range, ticks, model)?;
    Ok(ShardWindow { warmup: warmup_cmp, full: full_cmp })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All four paper protocols plus the sharded extension converge at 64
    /// nodes (identical final worlds on every replica).
    #[test]
    fn all_protocols_converge_at_64_nodes() {
        let scenario = Scenario::scaled(64, 1).with_ticks(8);
        for protocol in [Protocol::Bsync, Protocol::Msync, Protocol::Msync2, Protocol::Msync2Shard]
        {
            let summary =
                run_experiment(&scenario, protocol, NetworkModel::paper_testbed()).unwrap();
            assert!(converged(&summary), "{protocol} diverged at 64 nodes");
            assert_eq!(summary.per_node.len(), 64);
        }
    }

    /// EC's lock manager reaches convergence at 64 nodes too (slower:
    /// its pulls are pairwise, so keep the run short).
    #[test]
    fn entry_consistency_converges_at_64_nodes() {
        let scenario = Scenario::scaled(64, 1).with_ticks(4);
        let summary =
            run_experiment(&scenario, Protocol::Entry, NetworkModel::paper_testbed()).unwrap();
        assert!(converged(&summary), "EC diverged at 64 nodes");
    }

    /// Interest routing must cut live traffic well below full mesh. The
    /// run must be long enough for mesh far-pair exchanges to ship their
    /// accumulated trails — short runs understate mesh steady-state (far
    /// pairs have not come due yet) and overstate the ratio.
    #[test]
    fn sharding_cuts_traffic_at_64_nodes() {
        let cmp = run_shard_comparison(64, 1, 60, NetworkModel::paper_testbed()).unwrap();
        assert!(cmp.both_converged(), "mesh and sharded runs must both converge");
        assert!(cmp.suppressed() > 0, "the router must actually suppress something");
        assert!(
            cmp.traffic_ratio() < 0.6,
            "sharded traffic should be well under mesh at 64 nodes: {}",
            cmp.traffic_ratio()
        );
    }

    /// The flagship scale gate, mirrored by `perf shard check` (the same
    /// window shape is recorded in `BENCH_4.json`): at 256 nodes, sharded
    /// steady-state bytes/node-tick at most a quarter of full-mesh.
    /// Heavy (four 256-process cluster runs), so ignored in the default
    /// test pass and run explicitly by CI.
    #[test]
    #[ignore = "256-node pairing: run explicitly (CI shard-soak / perf shard)"]
    fn sharding_cuts_traffic_to_a_quarter_at_256_nodes() {
        let win = run_shard_window(256, 1, 48, 96, NetworkModel::paper_testbed()).unwrap();
        assert!(win.full.both_converged());
        assert!(win.full.suppressed() > 0, "the router must actually suppress something");
        assert!(
            win.steady_traffic_ratio() <= 0.25,
            "steady-state sharded bytes/node-tick must be <= 25% of full-mesh \
             at 256 nodes: {}",
            win.steady_traffic_ratio()
        );
    }
}
