//! Chaos experiments: games on a faulty network.
//!
//! The paper's testbed network never lost messages, so its protocols could
//! block on rendezvous forever. This module runs the same evaluation games
//! under a deterministic [`FaultPlan`] — seeded drops, duplication,
//! reordering and healing partitions — with the runtime's reliability
//! layer switched on, and reports per-protocol recovery statistics: how
//! often the resync path fired, how much was retransmitted, and whether
//! every replica still converged to the identical final world.

use sdso_core::RetryConfig;
use sdso_game::{run_node, Protocol, Scenario};
use sdso_net::{FaultPlan, NetError, SimSpan};
use sdso_sim::{NetworkModel, SimCluster, SimError};

use crate::experiment::RunSummary;
use crate::table::Table;

/// A retransmission tuning that recovers briskly on the simulated testbed:
/// the timeout is a few node-to-node latencies, and the retry budget rides
/// out a multi-millisecond partition.
pub fn chaos_retry_config() -> RetryConfig {
    RetryConfig { rto: SimSpan::from_millis(5), max_retries: 2_000 }
}

/// The default chaos fault plan for `seed`: 5% drops, 2% duplicates, 25%
/// of messages held back by up to 2 ms (reordering), and one partition
/// that isolates node 0 for `[2 ms, 8 ms)` and then heals.
pub fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_drop(0.05)
        .with_dup(0.02)
        .with_reorder(0.25, SimSpan::from_millis(2))
        .with_partition(
            vec![0],
            sdso_net::SimInstant::from_micros(2_000),
            sdso_net::SimInstant::from_micros(8_000),
        )
}

/// Runs `scenario` under `protocol` on a simulated cluster whose links
/// misbehave per `plan`. The scenario's reliability layer must be on (use
/// [`Scenario::with_reliability`]) or lost rendezvous traffic will turn
/// into timeouts.
///
/// # Errors
///
/// Returns the first node's error if any process failed (including
/// retry-budget exhaustion, surfaced as a timeout).
pub fn run_chaos_experiment(
    scenario: &Scenario,
    protocol: Protocol,
    model: NetworkModel,
    plan: &FaultPlan,
) -> Result<RunSummary, SimError> {
    let nodes = usize::from(scenario.teams);
    let scenario_for_nodes = scenario.clone();
    let outcome = SimCluster::new(nodes, model)
        .with_faults(plan.clone())
        .run(move |ep| run_node(ep, &scenario_for_nodes, protocol).map_err(NetError::from))?;
    let per_node = outcome.into_results()?;
    Ok(RunSummary { protocol, nodes, range: scenario.range, per_node })
}

/// Whether every process's final replica of the world is identical.
pub fn converged(summary: &RunSummary) -> bool {
    let mut worlds = summary.per_node.iter().map(|s| &s.final_world);
    let Some(reference) = worlds.next() else {
        return true;
    };
    worlds.all(|w| w == reference)
}

/// Runs the chaos scenario for each protocol in `protocols` and renders
/// the per-protocol recovery statistics as a table: faults injected,
/// resyncs triggered, messages retransmitted, duplicates discarded, stale
/// updates dropped by last-writer-wins, and whether the replicas
/// converged.
///
/// # Errors
///
/// Fails on the first protocol whose run fails outright.
pub fn chaos_table(
    scenario: &Scenario,
    model: NetworkModel,
    plan: &FaultPlan,
    protocols: &[Protocol],
) -> Result<Table, SimError> {
    let mut table = Table::new(
        format!(
            "Chaos ({} nodes, drop {:.0}%, seed {:#x})",
            scenario.teams,
            plan.drop_prob * 100.0,
            plan.seed
        ),
        &[
            "protocol",
            "drops",
            "dups",
            "resyncs",
            "retransmits",
            "dup_dropped",
            "stale",
            "converged",
        ],
    );
    for &protocol in protocols {
        let summary = run_chaos_experiment(scenario, protocol, model, plan)?;
        let drops: u64 = summary.per_node.iter().map(|s| s.net.drops_injected).sum();
        let dups: u64 = summary.per_node.iter().map(|s| s.net.dups_injected).sum();
        let resyncs: u64 = summary.per_node.iter().map(|s| s.dso.resyncs).sum();
        let retransmits: u64 = summary.per_node.iter().map(|s| s.dso.retransmits).sum();
        let dup_dropped: u64 = summary.per_node.iter().map(|s| s.dso.duplicates_dropped).sum();
        let stale: u64 = summary.per_node.iter().map(|s| s.dso.updates_stale).sum();
        table.push_row(vec![
            protocol.name().to_owned(),
            drops.to_string(),
            dups.to_string(),
            resyncs.to_string(),
            retransmits.to_string(),
            dup_dropped.to_string(),
            stale.to_string(),
            if converged(&summary) { "yes".to_owned() } else { "NO".to_owned() },
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_run_converges_and_reports_recovery() {
        let scenario = Scenario::paper(3, 1).with_ticks(40).with_reliability(chaos_retry_config());
        let plan = chaos_plan(0xC1A05);
        let summary =
            run_chaos_experiment(&scenario, Protocol::Bsync, NetworkModel::paper_testbed(), &plan)
                .unwrap();
        assert!(converged(&summary), "replicas must agree despite faults");
        let drops: u64 = summary.per_node.iter().map(|s| s.net.drops_injected).sum();
        assert!(drops > 0, "the plan must actually inject drops");
        let resyncs: u64 = summary.per_node.iter().map(|s| s.dso.resyncs).sum();
        assert!(resyncs > 0, "drops must trigger the resync path");
    }

    #[test]
    fn chaos_table_lists_each_protocol() {
        let scenario = Scenario::paper(2, 1).with_ticks(25).with_reliability(chaos_retry_config());
        let plan = FaultPlan::new(11).with_drop(0.05);
        let table = chaos_table(
            &scenario,
            NetworkModel::paper_testbed(),
            &plan,
            &[Protocol::Bsync, Protocol::Msync2],
        )
        .unwrap();
        assert_eq!(table.rows.len(), 2);
        let text = table.to_string();
        assert!(text.contains("BSYNC") && text.contains("MSYNC2"));
        assert!(text.contains("yes"), "both runs converge:\n{text}");
    }
}
