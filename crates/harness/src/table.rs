//! Plain-text tables for experiment output.

use std::fmt;

/// A rendered experiment result: headers plus rows, displayable as aligned
/// text and exportable as CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table caption (e.g. `Figure 5 (range 1)`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders as CSV (title omitted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        out.push_str(&self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let fmt_row = |row: &[String]| {
            row.iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(f, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["proto", "n", "value"]);
        t.push_row(vec!["EC".into(), "2".into(), "1.5".into()]);
        t.push_row(vec!["MSYNC2".into(), "16".into(), "0.25".into()]);
        t
    }

    #[test]
    fn display_aligns_columns() {
        let text = sample().to_string();
        assert!(text.contains("## Demo"));
        assert!(text.contains("MSYNC2"));
        let lines: Vec<&str> = text.lines().collect();
        // Header and rows all share the same width.
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    fn csv_escapes_when_needed() {
        let mut t = Table::new("x", &["a"]);
        t.push_row(vec!["with,comma".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }
}
