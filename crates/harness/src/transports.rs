//! Building real-socket clusters by [`TransportKind`].
//!
//! The runtime is written against the [`Endpoint`] trait and does not care
//! which transport carries its frames; deployment and test code picks one
//! via [`DsoConfig::transport`](sdso_core::DsoConfig). This module is the
//! single place that turns that config knob into live endpoints, so
//! experiments, integration tests, and the bench harness all construct
//! clusters the same way.
//!
//! [`TransportKind::TcpReactor`] maps to the event-driven reactor mesh
//! (Linux only — one poll thread per endpoint, see `sdso_net::reactor`);
//! [`TransportKind::Tcp`] maps to the thread-per-peer `TcpMesh` fallback.
//! On non-Linux hosts asking for the reactor is an error rather than a
//! silent substitution, so CI jobs that gate reactor behaviour cannot pass
//! vacuously.

use sdso_net::tcp::TcpMesh;
use sdso_net::{Endpoint, NetError, TransportKind};

/// An owned, boxed endpoint: what [`local_cluster`] hands back so callers
/// can treat both transports uniformly.
pub type BoxedTransport = Box<dyn Endpoint + Send>;

/// Builds an `n`-node full-mesh cluster on loopback using the requested
/// transport.
///
/// # Errors
///
/// Returns transport setup errors, and [`NetError::Io`] when
/// [`TransportKind::TcpReactor`] is requested on a platform without the
/// reactor.
pub fn local_cluster(kind: TransportKind, n: usize) -> Result<Vec<BoxedTransport>, NetError> {
    match kind {
        TransportKind::Tcp => {
            Ok(TcpMesh::local(n)?.into_iter().map(|e| Box::new(e) as BoxedTransport).collect())
        }
        TransportKind::TcpReactor => reactor_cluster(n),
    }
}

#[cfg(target_os = "linux")]
fn reactor_cluster(n: usize) -> Result<Vec<BoxedTransport>, NetError> {
    use sdso_net::reactor::ReactorMesh;
    Ok(ReactorMesh::local(n)?.into_iter().map(|e| Box::new(e) as BoxedTransport).collect())
}

#[cfg(not(target_os = "linux"))]
fn reactor_cluster(_n: usize) -> Result<Vec<BoxedTransport>, NetError> {
    Err(NetError::Io(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "the tcp-reactor transport requires Linux (epoll)",
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threaded_cluster_builds_and_echoes() {
        let mut eps = local_cluster(TransportKind::Tcp, 2).unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, sdso_net::Payload::control(vec![9u8])).unwrap();
        let got = b.recv().unwrap();
        assert_eq!(got.from, 0);
        assert_eq!(&got.payload.bytes[..], &[9u8]);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reactor_cluster_builds_and_echoes() {
        let mut eps = local_cluster(TransportKind::TcpReactor, 2).unwrap();
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        a.send(1, sdso_net::Payload::control(vec![9u8])).unwrap();
        let got = b.recv().unwrap();
        assert_eq!(got.from, 0);
        assert_eq!(&got.payload.bytes[..], &[9u8]);
    }

    #[test]
    fn default_kind_builds_on_this_platform() {
        let eps = local_cluster(TransportKind::default(), 3).unwrap();
        assert_eq!(eps.len(), 3);
        assert_eq!(eps[2].node_id(), 2);
        assert_eq!(eps[0].num_nodes(), 3);
    }
}
