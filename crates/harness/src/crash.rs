//! Crash experiments: games under planned fail-stop crashes and
//! WAL-backed recovery.
//!
//! Extension G over the paper's evaluation: processes crash abruptly at
//! seeded trigger ticks, survivors excise them through the membership
//! machinery, and scheduled restarts recover from the write-ahead log and
//! rejoin with their pre-crash identity. The experiment reports the
//! recovery statistics the durability layer is gated on — recovery count,
//! WAL records replayed, and the summed virtual absence (downtime) per
//! process — alongside the usual convergence check over the final view.

use sdso_core::MembershipPlan;
use sdso_dur::crash_membership_plan;
use sdso_game::{run_crash_node, Protocol, Scenario};
use sdso_net::{FaultPlan, NetError, SimSpan};
use sdso_sim::{NetworkModel, SimCluster, SimError};

use crate::experiment::RunSummary;
use crate::table::Table;

/// The default crash plan for an `n`-team run over `ticks` ticks: one
/// crash-and-restart in the first half of the run and one unrecovered
/// crash in the second half, both seeded from `seed` (node 0, the
/// perennial snapshot donor, never crashes).
///
/// # Panics
///
/// Panics if `n < 4` (needs a donor, two crashers, and a bystander) or
/// `ticks < 8` (room for crash, restart, and a tail of live play).
pub fn default_crash_plan(seed: u64, n: usize, ticks: u64) -> FaultPlan {
    assert!(n >= 4, "crash runs need at least 4 teams");
    assert!(ticks >= 8, "crash runs need room for a crash, a restart, and a tail");
    FaultPlan::new(seed).with_crash(1, ticks / 4, Some(ticks / 2)).with_crash(
        (n - 1) as sdso_net::NodeId,
        3 * ticks / 4,
        None,
    )
}

/// The membership plan a crash run derives from its fault plan — exposed
/// so callers can reason about the final view (for convergence checks)
/// without re-deriving it.
pub fn crash_plan_membership(scenario: &Scenario, faults: &FaultPlan) -> MembershipPlan {
    crash_membership_plan(usize::from(scenario.teams), 0..scenario.teams, faults)
}

/// Runs `scenario` under `protocol` with the fault plan's crash schedule.
/// Crash realisation happens inside the nodes (abrupt death, WAL
/// recovery, snapshot rejoin); the network itself stays healthy.
///
/// # Errors
///
/// Returns the first node's error if any process failed.
pub fn run_crash_experiment(
    scenario: &Scenario,
    protocol: Protocol,
    model: NetworkModel,
    faults: &FaultPlan,
) -> Result<RunSummary, SimError> {
    let nodes = usize::from(scenario.teams);
    let scenario_for_nodes = scenario.clone();
    let faults_for_nodes = faults.clone();
    let outcome = SimCluster::new(nodes, model).run(move |ep| {
        run_crash_node(ep, &scenario_for_nodes, protocol, &faults_for_nodes).map_err(NetError::from)
    })?;
    let per_node = outcome.into_results()?;
    Ok(RunSummary { protocol, nodes, range: scenario.range, per_node })
}

/// Whether every member of the crash plan's final view — restarted
/// processes included — holds the identical final world. Processes that
/// crashed without a restart are not expected to.
pub fn crash_converged(summary: &RunSummary, scenario: &Scenario, faults: &FaultPlan) -> bool {
    let final_view = crash_plan_membership(scenario, faults).final_view();
    let mut worlds = summary
        .per_node
        .iter()
        .filter(|s| final_view.members().contains(&s.node))
        .map(|s| &s.final_world);
    let Some(reference) = worlds.next() else {
        return true;
    };
    worlds.all(|w| w == reference)
}

/// Runs the crash scenario for each protocol in `protocols` and renders
/// the recovery statistics as an Extension G table.
///
/// # Errors
///
/// Fails on the first protocol whose run fails outright.
pub fn crash_table(
    scenario: &Scenario,
    model: NetworkModel,
    faults: &FaultPlan,
    protocols: &[Protocol],
) -> Result<Table, SimError> {
    let mut table = Table::new(
        format!("Crash recovery ({} teams, {} crash(es))", scenario.teams, faults.crashes.len()),
        &[
            "protocol",
            "recoveries",
            "wal_replayed",
            "downtime_ms",
            "cross_epoch",
            "snapshots",
            "converged",
        ],
    );
    for &protocol in protocols {
        let summary = run_crash_experiment(scenario, protocol, model, faults)?;
        let recoveries: u64 = summary.per_node.iter().map(|s| s.recoveries).sum();
        let wal_replayed: u64 = summary.per_node.iter().map(|s| s.wal_replayed).sum();
        let downtime: SimSpan =
            summary.per_node.iter().fold(SimSpan::ZERO, |acc, s| acc + s.recovery_time);
        let cross_epoch: u64 = summary.per_node.iter().map(|s| s.dso.cross_epoch_dropped).sum();
        let snapshots: u64 = summary.per_node.iter().map(|s| s.dso.snapshots_sent).sum();
        table.push_row(vec![
            protocol.name().to_owned(),
            recoveries.to_string(),
            wal_replayed.to_string(),
            format!("{:.2}", downtime.as_micros() as f64 / 1000.0),
            cross_epoch.to_string(),
            snapshots.to_string(),
            if crash_converged(&summary, scenario, faults) {
                "yes".to_owned()
            } else {
                "NO".to_owned()
            },
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_has_one_restart_and_one_permanent_crash() {
        let plan = default_crash_plan(7, 8, 16);
        assert_eq!(plan.crashes.len(), 2);
        assert!(plan.crash_of(1).is_some_and(|c| c.restart_tick.is_some()));
        assert!(plan.crash_of(7).is_some_and(|c| c.restart_tick.is_none()));
        assert!(plan.crash_of(0).is_none(), "the donor never crashes");
    }

    #[test]
    fn crash_experiment_recovers_and_converges() {
        let scenario = Scenario::paper(4, 1).with_ticks(12);
        let faults = default_crash_plan(3, 4, 12);
        let summary = run_crash_experiment(
            &scenario,
            Protocol::Bsync,
            NetworkModel::paper_testbed(),
            &faults,
        )
        .unwrap();
        assert!(crash_converged(&summary, &scenario, &faults));
        let recoveries: u64 = summary.per_node.iter().map(|s| s.recoveries).sum();
        assert_eq!(recoveries, 1, "one process came back");
        let replayed: u64 = summary.per_node.iter().map(|s| s.wal_replayed).sum();
        assert!(replayed > 0, "the WAL carried state across the crash");
    }

    #[test]
    fn crash_table_lists_each_protocol() {
        let scenario = Scenario::paper(4, 1).with_ticks(12);
        let faults = default_crash_plan(5, 4, 12);
        let table = crash_table(
            &scenario,
            NetworkModel::paper_testbed(),
            &faults,
            &[Protocol::Bsync, Protocol::Entry],
        )
        .unwrap();
        assert_eq!(table.rows.len(), 2);
        let text = table.to_string();
        assert!(text.contains("BSYNC") && text.contains("EC"));
        assert!(text.contains("yes"), "both runs converge:\n{text}");
    }
}
