//! Running one game configuration across a simulated cluster and
//! aggregating its statistics.

use sdso_core::ObsSet;
use sdso_game::{run_node, run_node_obs, NodeStats, Protocol, Scenario};
use sdso_net::{Endpoint, NetError, SimSpan, TraceConfig};
use sdso_sim::{NetworkModel, SimCluster, SimError};

/// Aggregated result of one cluster run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// The protocol measured.
    pub protocol: Protocol,
    /// Number of processes.
    pub nodes: usize,
    /// Sensing range.
    pub range: u16,
    /// Per-process statistics, indexed by node id.
    pub per_node: Vec<NodeStats>,
}

impl RunSummary {
    /// Mean per-process execution time, seconds.
    pub fn avg_exec_secs(&self) -> f64 {
        self.per_node.iter().map(|s| s.exec_time.as_secs_f64()).sum::<f64>()
            / self.per_node.len() as f64
    }

    /// The paper's Figure 5 metric: mean over processes of execution time
    /// divided by that process's object-modification count, in seconds.
    pub fn avg_time_per_modification_secs(&self) -> f64 {
        self.per_node.iter().map(|s| s.time_per_modification().as_secs_f64()).sum::<f64>()
            / self.per_node.len() as f64
    }

    /// Figure 6: total messages (control + data) across the cluster.
    pub fn total_messages(&self) -> u64 {
        self.per_node.iter().map(|s| s.net.total_sent()).sum()
    }

    /// Figure 7: data messages only.
    pub fn data_messages(&self) -> u64 {
        self.per_node.iter().map(|s| s.net.data_sent.msgs).sum()
    }

    /// Control messages only.
    pub fn control_messages(&self) -> u64 {
        self.per_node.iter().map(|s| s.net.control_sent.msgs).sum()
    }

    /// Total modelled bytes on the wire.
    pub fn total_bytes(&self) -> u64 {
        self.per_node.iter().map(|s| s.net.bytes_sent()).sum()
    }

    /// Bytes on the wire before the terminal measurement flush — the
    /// steady-state traffic a long-running deployment sustains (see
    /// [`sdso_game::NodeStats::net_live`]).
    pub fn live_bytes(&self) -> u64 {
        self.per_node.iter().map(|s| s.net_live.bytes_sent()).sum()
    }

    /// Total object modifications.
    pub fn total_modifications(&self) -> u64 {
        self.per_node.iter().map(|s| s.modifications).sum()
    }

    /// Figure 8: the share of execution time that is protocol overhead
    /// (everything that is not modelled application compute), in `[0, 1]`.
    pub fn overhead_fraction(&self) -> f64 {
        let exec: f64 = self.per_node.iter().map(|s| s.exec_time.as_secs_f64()).sum();
        let compute: f64 = self.per_node.iter().map(|s| s.compute_time.as_secs_f64()).sum();
        if exec == 0.0 {
            0.0
        } else {
            (exec - compute) / exec
        }
    }

    /// Mean per-process time blocked inside `recv` (the blocking component
    /// of the overhead; Ext. B).
    pub fn avg_blocked_secs(&self) -> f64 {
        self.per_node.iter().map(|s| s.net.blocked().as_secs_f64()).sum::<f64>()
            / self.per_node.len() as f64
    }

    /// Mean per-process EC lock-wait time, seconds (zero for non-EC runs).
    pub fn avg_lock_wait_secs(&self) -> f64 {
        let lock: SimSpan = self.per_node.iter().map(|s| s.ec.lock_wait + s.lrc.lock_wait).sum();
        lock.as_secs_f64() / self.per_node.len() as f64
    }

    /// Mean per-process EC pull time, seconds (zero for non-EC runs).
    pub fn avg_pull_secs(&self) -> f64 {
        let pull: SimSpan = self.per_node.iter().map(|s| s.ec.pull_time).sum();
        pull.as_secs_f64() / self.per_node.len() as f64
    }

    /// Mean per-process exchange time, seconds (zero for EC runs).
    pub fn avg_exchange_secs(&self) -> f64 {
        let ex: SimSpan = self.per_node.iter().map(|s| s.dso.exchange_time).sum();
        ex.as_secs_f64() / self.per_node.len() as f64
    }
}

/// Runs `scenario` under `protocol` on a simulated cluster with `model`
/// timing, returning aggregated statistics.
///
/// # Errors
///
/// Returns the first node's error if any process failed (including
/// simulated distributed deadlocks).
pub fn run_experiment(
    scenario: &Scenario,
    protocol: Protocol,
    model: NetworkModel,
) -> Result<RunSummary, SimError> {
    let nodes = usize::from(scenario.teams);
    let scenario_for_nodes = scenario.clone();
    let outcome = SimCluster::new(nodes, model)
        .run(move |ep| run_node(ep, &scenario_for_nodes, protocol).map_err(NetError::from))?;
    let per_node = outcome.into_results()?;
    Ok(RunSummary { protocol, nodes, range: scenario.range, per_node })
}

/// Like [`run_experiment`], but with observability: every node records
/// into a per-node bundle of the returned [`ObsSet`], so the caller can
/// export a cluster-wide Chrome trace ([`ObsSet::chrome_trace`]) or a
/// merged metrics snapshot after the run. Event timestamps are virtual
/// time, so traces are deterministic for a given scenario.
///
/// # Errors
///
/// Returns the first node's error if any process failed.
pub fn run_experiment_obs(
    scenario: &Scenario,
    protocol: Protocol,
    model: NetworkModel,
    trace: TraceConfig,
) -> Result<(RunSummary, ObsSet), SimError> {
    let nodes = usize::from(scenario.teams);
    let obs_set = ObsSet::new(scenario.teams, trace);
    let scenario_for_nodes = scenario.clone();
    let obs_for_nodes = obs_set.clone();
    let outcome = SimCluster::new(nodes, model).run(move |ep| {
        let obs = obs_for_nodes.node(ep.node_id());
        run_node_obs(ep, &scenario_for_nodes, protocol, obs).map_err(NetError::from)
    })?;
    let per_node = outcome.into_results()?;
    Ok((RunSummary { protocol, nodes, range: scenario.range, per_node }, obs_set))
}

/// Runs the same configuration across several placement seeds and returns
/// each run (callers average the metrics they care about).
///
/// # Errors
///
/// Fails on the first failing run.
pub fn run_seeds(
    scenario: &Scenario,
    protocol: Protocol,
    model: NetworkModel,
    seeds: &[u64],
) -> Result<Vec<RunSummary>, SimError> {
    seeds
        .iter()
        .map(|&seed| run_experiment(&scenario.clone().with_seed(seed), protocol, model))
        .collect()
}

/// Arithmetic mean of `f` over runs.
pub fn mean_of(runs: &[RunSummary], f: impl Fn(&RunSummary) -> f64) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter().map(f).sum::<f64>() / runs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(protocol: Protocol) -> RunSummary {
        let scenario = Scenario::paper(2, 1).with_ticks(30);
        run_experiment(&scenario, protocol, NetworkModel::paper_testbed()).unwrap()
    }

    #[test]
    fn bsync_summary_has_traffic_and_time() {
        let s = tiny(Protocol::Bsync);
        assert!(s.total_messages() > 0);
        assert!(s.avg_exec_secs() > 0.0);
        assert!(s.avg_time_per_modification_secs() > 0.0);
        assert!(s.total_modifications() > 0);
        // BSYNC: one SYNC per peer per tick at minimum.
        assert!(s.control_messages() >= 2 * 30);
    }

    #[test]
    fn ec_summary_reports_lock_overheads() {
        let s = tiny(Protocol::Entry);
        assert!(s.avg_lock_wait_secs() > 0.0, "EC must report lock waits");
        assert_eq!(s.avg_exchange_secs(), 0.0, "EC never exchanges");
        assert!(s.overhead_fraction() > 0.0 && s.overhead_fraction() < 1.0);
    }

    #[test]
    fn lookahead_reports_exchange_overheads() {
        let s = tiny(Protocol::Msync2);
        assert!(s.avg_exchange_secs() > 0.0);
        assert_eq!(s.avg_lock_wait_secs(), 0.0);
    }

    #[test]
    fn run_seeds_produces_one_summary_per_seed() {
        let scenario = Scenario::paper(2, 1).with_ticks(10);
        let runs = run_seeds(&scenario, Protocol::Bsync, NetworkModel::paper_testbed(), &[1, 2, 3])
            .unwrap();
        assert_eq!(runs.len(), 3);
        let m = mean_of(&runs, |r| r.total_messages() as f64);
        assert!(m > 0.0);
    }

    #[test]
    fn obs_run_produces_exchange_spans_and_counters() {
        let scenario = Scenario::paper(2, 1).with_ticks(20);
        let (summary, obs) = run_experiment_obs(
            &scenario,
            Protocol::Msync2,
            NetworkModel::paper_testbed(),
            TraceConfig::full(),
        )
        .unwrap();
        assert!(summary.total_messages() > 0);
        assert!(obs.total_events() > 0, "full tracing must record events");
        let trace = obs.chrome_trace();
        assert!(trace.contains("\"name\":\"node 0\""));
        assert!(trace.contains("\"name\":\"node 1\""));
        assert!(trace.contains("\"name\":\"exchange\""));
        // The unified registry agrees with the classic counters.
        let merged = obs.merged_snapshot();
        let exchanges: u64 = summary.per_node.iter().map(|s| s.dso.exchanges).sum();
        assert_eq!(merged.counter("dso.exchanges"), exchanges);
    }

    #[test]
    fn obs_off_records_no_events_but_counters_work() {
        let scenario = Scenario::paper(2, 1).with_ticks(10);
        let (summary, obs) = run_experiment_obs(
            &scenario,
            Protocol::Bsync,
            NetworkModel::paper_testbed(),
            TraceConfig::off(),
        )
        .unwrap();
        assert_eq!(obs.total_events(), 0, "off mode must not record events");
        assert!(obs.merged_snapshot().counter("dso.exchanges") > 0);
        assert!(summary.total_messages() > 0);
    }

    #[test]
    fn determinism_across_identical_runs() {
        let scenario = Scenario::paper(3, 1).with_ticks(25);
        let a = run_experiment(&scenario, Protocol::Msync, NetworkModel::paper_testbed()).unwrap();
        let b = run_experiment(&scenario, Protocol::Msync, NetworkModel::paper_testbed()).unwrap();
        assert_eq!(a.total_messages(), b.total_messages());
        assert_eq!(a.avg_exec_secs(), b.avg_exec_secs());
        for (x, y) in a.per_node.iter().zip(&b.per_node) {
            assert_eq!(x.modifications, y.modifications);
            assert_eq!(x.score, y.score);
        }
    }
}
