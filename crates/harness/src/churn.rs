//! Churn experiments: games under planned membership changes.
//!
//! The paper's evaluation held the process group fixed for a run's whole
//! lifetime. This module replays the same games while players leave and
//! join at planned trigger ticks — optionally on a faulty network — and
//! reports per-protocol membership statistics: view changes applied,
//! cross-epoch traffic rejected, diff slots compacted on departure,
//! snapshot traffic to late joiners, and whether every *remaining* member
//! still converged to the identical final world.

use sdso_core::{MembershipPlan, ViewChange};
use sdso_game::{run_churn_node, Protocol, Scenario};
use sdso_net::{FaultPlan, NetError, NodeId};
use sdso_sim::{NetworkModel, SimCluster, SimError};

use crate::experiment::RunSummary;
use crate::table::Table;

/// The default churn plan for a `capacity`-slot cluster: the two
/// highest-numbered slots start empty, the two lowest-numbered non-donor
/// members leave at staggered barriers, and the spare slots join at those
/// same barriers. `ticks` must leave room for the last trigger.
///
/// # Panics
///
/// Panics if `capacity < 4` (needs a donor, two leavers, and a spare
/// slot) or if `ticks < 5` (the triggers land at `ticks / 3` and
/// `2 * ticks / 3`).
pub fn default_churn_plan(capacity: usize, ticks: u64) -> MembershipPlan {
    assert!(capacity >= 4, "churn needs at least 4 capacity slots");
    assert!(ticks >= 5, "churn needs room for two staggered triggers");
    let joiners = [capacity as NodeId - 2, capacity as NodeId - 1];
    let plan = MembershipPlan::new(capacity, 0..capacity as NodeId - 2);
    plan.with_change(ticks / 3, ViewChange::new([joiners[0]], [1]))
        .with_change(2 * ticks / 3, ViewChange::new([joiners[1]], [2]))
}

/// Runs `scenario` under `protocol` with membership churn per `plan`,
/// optionally injecting `faults` into every link. The cluster is
/// provisioned at the plan's full capacity; empty slots block until their
/// join barrier.
///
/// # Errors
///
/// Returns the first node's error if any process failed (a stuck
/// view-change barrier surfaces as a deadlock or timeout).
pub fn run_churn_experiment(
    scenario: &Scenario,
    protocol: Protocol,
    model: NetworkModel,
    plan: &MembershipPlan,
    faults: Option<&FaultPlan>,
) -> Result<RunSummary, SimError> {
    let nodes = plan.capacity();
    let scenario_for_nodes = scenario.clone();
    let plan_for_nodes = plan.clone();
    let mut cluster = SimCluster::new(nodes, model);
    if let Some(f) = faults {
        cluster = cluster.with_faults(f.clone());
    }
    let outcome = cluster.run(move |ep| {
        run_churn_node(ep, &scenario_for_nodes, protocol, &plan_for_nodes).map_err(NetError::from)
    })?;
    let per_node = outcome.into_results()?;
    Ok(RunSummary { protocol, nodes, range: scenario.range, per_node })
}

/// Whether every member of the plan's final view holds the identical
/// final world (members that left mid-run are not expected to).
pub fn churn_converged(summary: &RunSummary, plan: &MembershipPlan) -> bool {
    let final_view = plan.final_view();
    let mut worlds = summary
        .per_node
        .iter()
        .filter(|s| final_view.members().contains(&s.node))
        .map(|s| &s.final_world);
    let Some(reference) = worlds.next() else {
        return true;
    };
    worlds.all(|w| w == reference)
}

/// Runs the churn scenario for each protocol in `protocols` and renders
/// the per-protocol membership statistics as a table.
///
/// # Errors
///
/// Fails on the first protocol whose run fails outright.
pub fn churn_table(
    scenario: &Scenario,
    model: NetworkModel,
    plan: &MembershipPlan,
    faults: Option<&FaultPlan>,
    protocols: &[Protocol],
) -> Result<Table, SimError> {
    let mut table = Table::new(
        format!(
            "Churn ({} slots, {} change(s){})",
            plan.capacity(),
            plan.changes().len(),
            if faults.is_some() { ", faulty network" } else { "" }
        ),
        &[
            "protocol",
            "view_changes",
            "cross_epoch",
            "slots_compacted",
            "snapshots",
            "snapshot_bytes",
            "converged",
        ],
    );
    for &protocol in protocols {
        let summary = run_churn_experiment(scenario, protocol, model, plan, faults)?;
        let view_changes: u64 = summary.per_node.iter().map(|s| s.dso.view_changes).sum();
        let cross_epoch: u64 = summary.per_node.iter().map(|s| s.dso.cross_epoch_dropped).sum();
        let compacted: u64 = summary.per_node.iter().map(|s| s.dso.slots_compacted).sum();
        let snapshots: u64 = summary.per_node.iter().map(|s| s.dso.snapshots_sent).sum();
        let snapshot_bytes: u64 = summary.per_node.iter().map(|s| s.dso.snapshot_bytes).sum();
        table.push_row(vec![
            protocol.name().to_owned(),
            view_changes.to_string(),
            cross_epoch.to_string(),
            compacted.to_string(),
            snapshots.to_string(),
            snapshot_bytes.to_string(),
            if churn_converged(&summary, plan) { "yes".to_owned() } else { "NO".to_owned() },
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_staggers_two_changes() {
        let plan = default_churn_plan(6, 12);
        assert_eq!(plan.capacity(), 6);
        assert_eq!(plan.changes().len(), 2);
        assert_eq!(plan.changes()[0].0, 4);
        assert_eq!(plan.changes()[1].0, 8);
        let final_view = plan.final_view();
        assert!(final_view.members().contains(&4) && final_view.members().contains(&5));
        assert!(!final_view.members().contains(&1) && !final_view.members().contains(&2));
    }

    #[test]
    fn churn_experiment_converges_and_counts_membership_traffic() {
        let scenario = Scenario::paper(5, 1).with_ticks(9);
        let plan = default_churn_plan(5, 9);
        let summary = run_churn_experiment(
            &scenario,
            Protocol::Bsync,
            NetworkModel::paper_testbed(),
            &plan,
            None,
        )
        .unwrap();
        assert!(churn_converged(&summary, &plan), "final view must agree");
        let snapshots: u64 = summary.per_node.iter().map(|s| s.dso.snapshots_sent).sum();
        assert_eq!(snapshots, 2, "one snapshot per joiner");
        let view_changes: u64 = summary.per_node.iter().map(|s| s.dso.view_changes).sum();
        assert!(view_changes > 0, "continuers count their epoch turns");
    }

    #[test]
    fn churn_table_lists_each_protocol() {
        let scenario = Scenario::paper(4, 1).with_ticks(8);
        let plan = default_churn_plan(4, 8);
        let table = churn_table(
            &scenario,
            NetworkModel::paper_testbed(),
            &plan,
            None,
            &[Protocol::Bsync, Protocol::Msync2],
        )
        .unwrap();
        assert_eq!(table.rows.len(), 2);
        let text = table.to_string();
        assert!(text.contains("BSYNC") && text.contains("MSYNC2"));
        assert!(text.contains("yes"), "both runs converge:\n{text}");
    }
}
