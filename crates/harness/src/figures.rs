//! Regeneration of every figure in the paper's evaluation, plus the
//! announced-future-work extensions.
//!
//! Each function sweeps the paper's parameter grid (protocols × process
//! counts × ranges), runs the game on the virtual-time cluster, and formats
//! the same series the paper plots. See `EXPERIMENTS.md` at the workspace
//! root for the paper-vs-measured discussion.
//!
//! Message and byte counts come from `NodeStats::net`, which the game
//! driver fills via `Endpoint::metrics_delta` — a per-run delta, not the
//! endpoint's lifetime-cumulative counters. This matters whenever an
//! endpoint outlives a single run (TCP meshes, warm-up traffic): figures
//! must only count the run they describe.

use sdso_game::{Protocol, Scenario};
use sdso_sim::{NetworkModel, SimError};

use crate::experiment::{mean_of, run_seeds, RunSummary};
use crate::table::Table;

/// Parameters of a figure sweep.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Process counts on the x axis (the paper: 2, 4, 8, 16).
    pub process_counts: Vec<u16>,
    /// Sensing ranges (the paper: 1 = left graphs, 3 = right graphs).
    pub ranges: Vec<u16>,
    /// Protocols to compare.
    pub protocols: Vec<Protocol>,
    /// Iterations per process.
    pub ticks: u64,
    /// Placement seeds to average over.
    pub seeds: Vec<u64>,
    /// Network model.
    pub model: NetworkModel,
}

impl Sweep {
    /// The paper's evaluation grid.
    pub fn paper() -> Self {
        Sweep {
            process_counts: vec![2, 4, 8, 16],
            ranges: vec![1, 3],
            protocols: Protocol::PAPER.to_vec(),
            ticks: 200,
            seeds: vec![0x5D50_1997],
            model: NetworkModel::paper_testbed(),
        }
    }

    /// A reduced grid for fast smoke runs and tests.
    pub fn quick() -> Self {
        Sweep {
            process_counts: vec![2, 4],
            ranges: vec![1],
            protocols: Protocol::PAPER.to_vec(),
            ticks: 40,
            seeds: vec![0x5D50_1997],
            model: NetworkModel::paper_testbed(),
        }
    }

    fn scenario(&self, teams: u16, range: u16) -> Scenario {
        Scenario::paper(teams, range).with_ticks(self.ticks)
    }

    /// Runs the whole grid once per (protocol, n, range) cell and formats
    /// one table per range with `metric` as the cell value.
    ///
    /// # Errors
    ///
    /// Fails on the first failing run.
    fn sweep_metric(
        &self,
        title: &str,
        unit: &str,
        metric: impl Fn(&[RunSummary]) -> f64,
    ) -> Result<Vec<Table>, SimError> {
        let mut tables = Vec::new();
        for &range in &self.ranges {
            let mut table = Table::new(
                format!("{title} — range {range} ({unit})"),
                &std::iter::once("protocol")
                    .chain(self.process_counts.iter().map(|_| ""))
                    .collect::<Vec<_>>(),
            );
            // Fix headers: protocol + one column per process count.
            table.headers = std::iter::once("protocol".to_owned())
                .chain(self.process_counts.iter().map(|n| format!("n={n}")))
                .collect();
            for &protocol in &self.protocols {
                let mut row = vec![protocol.name().to_owned()];
                for &n in &self.process_counts {
                    let scenario = self.scenario(n, range);
                    let runs = run_seeds(&scenario, protocol, self.model, &self.seeds)?;
                    row.push(format!("{:.4}", metric(&runs)));
                }
                table.push_row(row);
            }
            tables.push(table);
        }
        Ok(tables)
    }

    /// **Figure 5**: average execution time per process normalised by the
    /// average number of object modifications (seconds), vs process count.
    ///
    /// # Errors
    ///
    /// Fails on the first failing run.
    pub fn figure5(&self) -> Result<Vec<Table>, SimError> {
        self.sweep_metric("Figure 5: normalised execution time", "s/modification", |runs| {
            mean_of(runs, RunSummary::avg_time_per_modification_secs)
        })
    }

    /// **Figure 6**: total number of messages (control + data).
    ///
    /// # Errors
    ///
    /// Fails on the first failing run.
    pub fn figure6(&self) -> Result<Vec<Table>, SimError> {
        self.sweep_metric("Figure 6: total message transfers", "messages", |runs| {
            mean_of(runs, |r| r.total_messages() as f64)
        })
    }

    /// **Figure 7**: number of data messages only.
    ///
    /// # Errors
    ///
    /// Fails on the first failing run.
    pub fn figure7(&self) -> Result<Vec<Table>, SimError> {
        self.sweep_metric("Figure 7: data message transfers", "messages", |runs| {
            mean_of(runs, |r| r.data_messages() as f64)
        })
    }

    /// **Figure 8**: protocol overhead as a percentage of execution time
    /// (the paper shows range 1), split into its components.
    ///
    /// # Errors
    ///
    /// Fails on the first failing run.
    pub fn figure8(&self) -> Result<Vec<Table>, SimError> {
        let range = self.ranges[0];
        let mut table = Table::new(
            format!("Figure 8: protocol overhead as % of execution time — range {range}"),
            &["protocol", "n", "overhead %", "lock-wait %", "pull %", "exchange %"],
        );
        for &protocol in &self.protocols {
            for &n in &self.process_counts {
                let scenario = self.scenario(n, range);
                let runs = run_seeds(&scenario, protocol, self.model, &self.seeds)?;
                let exec = mean_of(&runs, RunSummary::avg_exec_secs);
                let pct = |x: f64| if exec > 0.0 { 100.0 * x / exec } else { 0.0 };
                table.push_row(vec![
                    protocol.name().to_owned(),
                    n.to_string(),
                    format!("{:.1}", 100.0 * mean_of(&runs, RunSummary::overhead_fraction)),
                    format!("{:.1}", pct(mean_of(&runs, RunSummary::avg_lock_wait_secs))),
                    format!("{:.1}", pct(mean_of(&runs, RunSummary::avg_pull_secs))),
                    format!("{:.1}", pct(mean_of(&runs, RunSummary::avg_exchange_secs))),
                ]);
            }
        }
        Ok(vec![table])
    }

    /// **Ext. A** (paper future-work item 2): the effect of data sizes —
    /// normalised time and bytes vs block payload size, with realistic
    /// (unpadded) frames so payload size matters.
    ///
    /// # Errors
    ///
    /// Fails on the first failing run.
    pub fn ext_data_size(&self, sizes: &[usize]) -> Result<Vec<Table>, SimError> {
        let range = self.ranges[0];
        let n = *self.process_counts.last().expect("non-empty sweep");
        let mut table = Table::new(
            format!("Ext. A: effect of object payload size — {n} processes, range {range}"),
            &["protocol", "block bytes", "s/modification", "total msgs", "MB on wire"],
        );
        for &protocol in &self.protocols {
            for &size in sizes {
                let mut scenario =
                    self.scenario(n, range).with_ticks(self.ticks).with_block_bytes(size);
                scenario.frame_wire_len = None; // let real sizes show
                let runs = run_seeds(&scenario, protocol, self.model, &self.seeds)?;
                table.push_row(vec![
                    protocol.name().to_owned(),
                    size.to_string(),
                    format!("{:.4}", mean_of(&runs, RunSummary::avg_time_per_modification_secs)),
                    format!("{:.0}", mean_of(&runs, |r| r.total_messages() as f64)),
                    format!("{:.2}", mean_of(&runs, |r| r.total_bytes() as f64 / 1e6)),
                ]);
            }
        }
        Ok(vec![table])
    }

    /// **Ext. B** (paper future-work item 1): blocking overhead of the
    /// lock-based protocol vs multicast-synchronisation overhead of the
    /// lookahead schemes.
    ///
    /// # Errors
    ///
    /// Fails on the first failing run.
    pub fn ext_blocking(&self) -> Result<Vec<Table>, SimError> {
        let range = self.ranges[0];
        let mut table = Table::new(
            format!("Ext. B: blocking time breakdown — range {range}"),
            &["protocol", "n", "exec s", "blocked-in-recv s", "blocked %"],
        );
        for &protocol in &self.protocols {
            for &n in &self.process_counts {
                let scenario = self.scenario(n, range);
                let runs = run_seeds(&scenario, protocol, self.model, &self.seeds)?;
                let exec = mean_of(&runs, RunSummary::avg_exec_secs);
                let blocked = mean_of(&runs, RunSummary::avg_blocked_secs);
                table.push_row(vec![
                    protocol.name().to_owned(),
                    n.to_string(),
                    format!("{exec:.3}"),
                    format!("{blocked:.3}"),
                    format!("{:.1}", if exec > 0.0 { 100.0 * blocked / exec } else { 0.0 }),
                ]);
            }
        }
        Ok(vec![table])
    }

    /// **Ext. C**: the slotted buffer's diff merging on vs off.
    ///
    /// # Errors
    ///
    /// Fails on the first failing run.
    pub fn ext_diff_merging(&self) -> Result<Vec<Table>, SimError> {
        let range = self.ranges[0];
        let n = *self.process_counts.last().expect("non-empty sweep");
        let mut table = Table::new(
            format!("Ext. C: diff merging ablation — {n} processes, range {range}"),
            &["protocol", "merging", "total msgs", "data msgs", "MB on wire", "s/modification"],
        );
        for &protocol in &self.protocols {
            if protocol == Protocol::Entry {
                continue; // EC does not use the slotted buffer
            }
            for merge in [true, false] {
                let mut scenario = self.scenario(n, range);
                scenario.merge_diffs = merge;
                scenario.frame_wire_len = None; // show the real byte effect
                let runs = run_seeds(&scenario, protocol, self.model, &self.seeds)?;
                table.push_row(vec![
                    protocol.name().to_owned(),
                    if merge { "on" } else { "off" }.to_owned(),
                    format!("{:.0}", mean_of(&runs, |r| r.total_messages() as f64)),
                    format!("{:.0}", mean_of(&runs, |r| r.data_messages() as f64)),
                    format!("{:.2}", mean_of(&runs, |r| r.total_bytes() as f64 / 1e6)),
                    format!("{:.4}", mean_of(&runs, RunSummary::avg_time_per_modification_secs)),
                ]);
            }
        }
        Ok(vec![table])
    }

    /// **Ext. D**: the paper's qualitative §2.3 comparison made
    /// quantitative — LRC and causal memory next to the measured four.
    ///
    /// # Errors
    ///
    /// Fails on the first failing run.
    pub fn ext_protocols(&self) -> Result<Vec<Table>, SimError> {
        let mut extended = self.clone();
        extended.protocols = Protocol::ALL.to_vec();
        let mut tables = extended.sweep_metric(
            "Ext. D: normalised execution time, all protocols",
            "s/modification",
            |runs| mean_of(runs, RunSummary::avg_time_per_modification_secs),
        )?;
        tables.extend(extended.sweep_metric(
            "Ext. D: total message transfers, all protocols",
            "messages",
            |runs| mean_of(runs, |r| r.total_messages() as f64),
        )?);
        Ok(tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_figure5_has_expected_shape() {
        let tables = Sweep::quick().figure5().unwrap();
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 4, "one row per protocol");
        // Parse the n=2 column: EC must be slower than MSYNC2 per mod.
        let value = |row: usize, col: usize| t.rows[row][col].parse::<f64>().unwrap();
        let ec = value(0, 1);
        let msync2 = value(3, 1);
        assert!(ec > msync2, "EC ({ec}) should be slower per modification than MSYNC2 ({msync2})");
    }

    #[test]
    fn node_stats_net_counters_are_per_run_deltas() {
        use sdso_game::run_node;
        use sdso_net::{memory::MemoryHub, Endpoint, Payload};

        // The same game, with and without pre-run endpoint traffic, must
        // report identical net counters: NodeStats.net is a per-run delta,
        // not the endpoint's lifetime totals.
        let scenario = Scenario::paper(2, 1).with_ticks(15);
        let run = |pre_traffic: bool| {
            let mut eps = MemoryHub::new(2).into_endpoints();
            let mut b = eps.pop().unwrap();
            let mut a = eps.pop().unwrap();
            if pre_traffic {
                for _ in 0..7 {
                    a.send(1, Payload::control(b"warm-up".as_ref())).unwrap();
                    b.recv().unwrap();
                }
            }
            let s = scenario.clone();
            let t = std::thread::spawn(move || run_node(b, &s, Protocol::Bsync).unwrap());
            let sa = run_node(a, &scenario, Protocol::Bsync).unwrap();
            let sb = t.join().unwrap();
            (sa.net.total_sent(), sa.net.bytes_sent(), sb.net.total_sent())
        };
        assert_eq!(run(false), run(true), "pre-run endpoint traffic must not leak into NodeStats");
    }

    #[test]
    fn quick_figure7_ec_sends_fewest_data_messages() {
        let tables = Sweep::quick().figure7().unwrap();
        let t = &tables[0];
        let value = |row: usize, col: usize| t.rows[row][col].parse::<f64>().unwrap();
        for col in 1..t.headers.len() {
            let ec = value(0, col);
            for row in 1..4 {
                assert!(
                    ec <= value(row, col),
                    "EC is pull-based and must ship the fewest data messages"
                );
            }
        }
    }
}
