//! Region-aware sharding for the lookahead family: MSYNC2-SHARD.
//!
//! MSYNC2 already exploits the paper's spatial constraint *temporally*:
//! distant pairs exchange rarely. But every exchange still ships the
//! node's whole dirty set to the peer, and over a long run every pair
//! rendezvouses often enough that per-node traffic grows linearly with
//! the cluster. MSYNC2-SHARD adds the spatial dimension on top of the
//! `sdso-shard` lattice:
//!
//! * **Grouped schedule** ([`ShardMsync2`]) — a pair whose interest
//!   regions overlap ("in-group", exactly the [`sdso_shard::RegionGroups`]
//!   shared-group relation) keeps the MSYNC2 interaction bound tick-exact;
//!   an out-of-group pair snaps that bound *down* onto multiples of
//!   [`GROUP_EVERY`], so the cluster's sparse long-range rendezvous
//!   batch onto shared group ticks instead of smearing across every
//!   tick.
//! * **Interest routing** ([`ShardRouter`]) — live exchanges ship only
//!   the objects inside the destination's interest regions (plus every
//!   cell currently holding a tank, see below); everything else stays
//!   merged in the peer's slot and flushes at the next broadcast
//!   exchange, so final worlds stay bit-identical with full-mesh runs.
//!
//! # Symmetry: pair-agreed positions
//!
//! The rendezvous contract requires both endpoints to compute identical
//! exchange times from their (different!) replicas. With routing in
//! force a replica may hold *phantoms* — stale tank blocks whose vacating
//! `Empty` write was suppressed — so the s-function cannot just scan the
//! store like MSYNC/MSYNC2 do. Instead each side derives a *pair-agreed
//! position* per team:
//!
//! * The router always ships the cells *currently holding its own
//!   tanks* (and its own spawn cell), so a live team's latest-versioned
//!   tank block in the receiver's store is its true position at the last
//!   rendezvous with that team (Lamport stamps are strictly increasing
//!   per writer, and only a team's own process ever writes its tank
//!   blocks). Third-party tank blocks travel by interest like any other
//!   cell: a relayed copy can be stale, but it always carries the
//!   writer's original version, so the freshest-version rule below still
//!   converges on the true position.
//! * A team's tank block is therefore only ever *delivered* for its
//!   at-rendezvous current cell: per-object diff merging collapses a
//!   routed trail cell's `Tank`-then-`Empty` writes into `Empty`. So the
//!   receiver advances its belief only on a fresher-versioned tank block
//!   ([`ShardMsync2`] stores `(position, version)` per peer); a delayed
//!   trail flush can kill a phantom but never creates a *newer* one, and
//!   a dead team's position freezes at the last delivered cell — which is
//!   exactly what the dead side itself remembers having delivered.
//! * Spawn points ride along as ghost candidates (teleports), as in
//!   MSYNC2.
//!
//! Both sides end up with the same candidate pair set in every case
//! (alive, dead, respawned, phantom-ridden), so the schedule stays
//! symmetric. Safety is MSYNC2's own: every pair rendezvouses no later
//! than its earliest possible interaction time, computed from the agreed
//! candidates — snapping the out-of-group bound down to the group
//! cadence only moves exchanges *earlier*. The margin [`interest_radius`]
//! additionally guarantees an out-of-group pair's boxes being disjoint
//! implies more than `d + 2·GROUP_EVERY` blocks of separation, so a
//! strictly-future group tick always exists before the bound expires.

use std::collections::{BTreeMap, BTreeSet};

use sdso_core::{DiffRouter, LogicalTime, ObjectId, ObjectStore, SFunction};
use sdso_net::NodeId;
use sdso_shard::{InterestRouter, RegionLattice};

use crate::block::Block;
use crate::scenario::Scenario;
use crate::world::Pos;

/// The group cadence, in logical ticks: out-of-group rendezvous are
/// snapped down onto multiples of this, batching the cluster's sparse
/// long-range exchanges onto shared ticks.
pub const GROUP_EVERY: u64 = 8;

/// The interest radius: half of `d + 2·GROUP_EVERY` (rounded up), where
/// `d` is the scenario's relevance distance. Two tanks whose interest
/// boxes are disjoint are more than `d + 2·GROUP_EVERY` blocks apart, so
/// their MSYNC2 interaction bound exceeds [`GROUP_EVERY`] — which is what
/// lets the out-of-group schedule snap down to the group cadence and
/// still find a strictly-future tick.
pub fn interest_radius(scenario: &Scenario) -> u16 {
    let d = u64::from(scenario.relevance_distance());
    (d + 2 * GROUP_EVERY).div_ceil(2) as u16
}

/// The region lattice a scenario's grid shards into.
pub fn shard_lattice(scenario: &Scenario) -> RegionLattice {
    RegionLattice::for_grid(scenario.grid.width, scenario.grid.height)
}

/// The latest-versioned tank position per team visible in a store, as
/// `(position, Lamport stamp)`. One linear scan; the s-function caches
/// the result per logical tick, so rescheduling `n` due peers costs one
/// scan instead of `n`.
fn tank_frontier(store: &ObjectStore, scenario: &Scenario) -> BTreeMap<NodeId, (Pos, LogicalTime)> {
    let grid = scenario.grid;
    let mut frontier: BTreeMap<NodeId, (Pos, LogicalTime)> = BTreeMap::new();
    for (id, replica) in store.iter() {
        let Some(Block::Tank { team, .. }) = Block::decode(replica.data()) else {
            continue;
        };
        let seen = (grid.pos_of(id), replica.version().time);
        frontier
            .entry(team)
            .and_modify(|best| {
                if seen.1 > best.1 {
                    *best = seen;
                }
            })
            .or_insert(seen);
    }
    frontier
}

/// The MSYNC2-SHARD s-function: MSYNC2's interaction bound inside a
/// shared region group, a [`GROUP_EVERY`]-aligned heartbeat outside it.
#[derive(Debug, Clone)]
pub struct ShardMsync2 {
    me: NodeId,
    scenario: Scenario,
    lattice: RegionLattice,
    d: u32,
    r_int: u16,
    /// Latest *delivered* tank position (and stamp) believed per peer
    /// team; advances only on fresher-versioned evidence, so phantom
    /// clean-ups cannot move it (see the module docs).
    last_seen: BTreeMap<NodeId, (Pos, LogicalTime)>,
    /// Own position as of the last rendezvous with each peer — what that
    /// peer's replica says about this team while this tank is dead.
    last_delivered: BTreeMap<NodeId, Pos>,
    /// Per-tick memo of [`tank_frontier`].
    cache_at: Option<LogicalTime>,
    cache: BTreeMap<NodeId, (Pos, LogicalTime)>,
}

impl ShardMsync2 {
    /// Creates the s-function for process `me`.
    pub fn new(me: NodeId, scenario: Scenario) -> Self {
        let lattice = shard_lattice(&scenario);
        let d = scenario.relevance_distance();
        let r_int = interest_radius(&scenario);
        ShardMsync2 {
            me,
            scenario,
            lattice,
            d,
            r_int,
            last_seen: BTreeMap::new(),
            last_delivered: BTreeMap::new(),
            cache_at: None,
            cache: BTreeMap::new(),
        }
    }

    fn refresh_cache(&mut self, now: LogicalTime, view: &ObjectStore) {
        if self.cache_at != Some(now) {
            self.cache = tank_frontier(view, &self.scenario);
            self.cache_at = Some(now);
        }
    }

    /// Whether two candidate positions share at least one interest
    /// region — the [`sdso_shard::RegionGroups`] criterion for the pair
    /// belonging to a common per-region exchange group.
    fn shares_region(&self, a: Pos, b: Pos) -> bool {
        let ra = self.lattice.regions_within(a.x, a.y, self.r_int);
        let rb = self.lattice.regions_within(b.x, b.y, self.r_int);
        // Both lists are ascending; merge-intersect.
        let (mut i, mut j) = (0, 0);
        while i < ra.len() && j < rb.len() {
            match ra[i].cmp(&rb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

impl SFunction for ShardMsync2 {
    fn next_exchange(
        &mut self,
        peer: NodeId,
        now: LogicalTime,
        view: &ObjectStore,
    ) -> Option<LogicalTime> {
        self.refresh_cache(now, view);
        let my_start = self.scenario.start_of(self.me);
        let peer_start = self.scenario.start_of(peer);

        // The peer's pair-agreed position: advance only on fresher
        // evidence (a delivered current cell), never on phantom churn.
        let seen = self.last_seen.entry(peer).or_insert((peer_start, LogicalTime::ZERO));
        if let Some(&fresh) = self.cache.get(&peer) {
            if fresh.1 >= seen.1 {
                *seen = fresh;
            }
        }
        let their_pos = seen.0;

        // Own pair-agreed position: current when alive (that cell's
        // write is delivered at this very rendezvous), else whatever
        // this pair last rendezvoused on.
        let own_pos = match self.cache.get(&self.me) {
            Some(&(p, _)) => {
                self.last_delivered.insert(peer, p);
                p
            }
            None => *self.last_delivered.entry(peer).or_insert(my_start),
        };

        let ours = [own_pos, my_start];
        let theirs = [their_pos, peer_start];
        // MSYNC2's interaction bound over the agreed candidate pairs: no
        // pair interaction (alignment within `d`) is possible sooner.
        let d = self.d;
        let delta = ours
            .iter()
            .flat_map(|&a| {
                theirs.iter().map(move |&b| a.ticks_to_alignment(b).max(a.ticks_to_within(b, d)))
            })
            .min()
            .unwrap_or(u64::MAX);
        let in_group = ours.iter().any(|&a| theirs.iter().any(|&b| self.shares_region(a, b)));
        if in_group {
            Some(now.plus(delta.max(1)))
        } else {
            // Out-of-group: every candidate pair's interest boxes are
            // disjoint, so all pairs are more than `d + 2·GROUP_EVERY`
            // apart and `delta > GROUP_EVERY`. Snap the bound *down* to
            // the group cadence — the largest multiple of [`GROUP_EVERY`]
            // not after `now + delta` — so sparse out-of-group rendezvous
            // across the whole cluster land batched on the same ticks.
            // Snapping down never schedules past the earliest possible
            // interaction, and `delta > GROUP_EVERY` guarantees a
            // strictly-future multiple exists in `(now, now + delta]`.
            let target = now.as_ticks().saturating_add(delta);
            Some(LogicalTime::from_ticks((target / GROUP_EVERY) * GROUP_EVERY))
        }
    }

    fn on_view_change(&mut self, _joined: &[NodeId], _left: &[NodeId]) {
        // The barrier's broadcast exchange flushed every slot, so all
        // replicas agree on every tank block: rebuild pair beliefs from
        // the store, which both endpoints of every pair now share.
        self.last_seen.clear();
        self.last_delivered.clear();
        self.cache_at = None;
        self.cache.clear();
    }
}

/// The region-aware diff router for the game: wraps
/// [`sdso_shard::InterestRouter`] with the game-specific observations —
/// tank positions (sensed with [`interest_radius`] slack), standing
/// spawn-point interests, and an always-ship set of the cells currently
/// holding *this node's own* tanks (the anchor of the pair-agreed
/// position scheme: each endpoint of a rendezvous ships its own true
/// position, so the pair bound never depends on third-party relays).
#[derive(Debug)]
pub struct ShardRouter {
    scenario: Scenario,
    me: NodeId,
    inner: InterestRouter,
    r_int: u16,
    /// Cells that currently hold one of this node's own tanks, plus its
    /// own spawn cell: these ship to every due peer unconditionally.
    anchored: BTreeSet<ObjectId>,
}

impl ShardRouter {
    /// A router for node `me` in `scenario`, routing everything until
    /// first observed.
    pub fn new(scenario: Scenario, me: NodeId) -> Self {
        let r_int = interest_radius(&scenario);
        let inner = InterestRouter::new(shard_lattice(&scenario));
        ShardRouter { scenario, me, inner, r_int, anchored: BTreeSet::new() }
    }

    /// The wrapped interest router (for inspection in tests).
    pub fn inner(&self) -> &InterestRouter {
        &self.inner
    }
}

impl DiffRouter for ShardRouter {
    fn observe(&mut self, store: &ObjectStore, now: LogicalTime) {
        self.inner.begin_round(now);
        self.anchored.clear();
        let grid = self.scenario.grid;
        // Every spawn cell anchors a standing interest — a scoring or
        // destroyed tank teleports home, and its neighbours there must
        // see it the moment it materialises — but only *our own* spawn
        // cell always ships: we are the sole writer of our tank blocks,
        // so shipping our cells is what keeps every peer's copy of our
        // position rendezvous-fresh.
        for team in 0..self.scenario.teams {
            let start = self.scenario.start_of(team);
            if team == self.me {
                self.anchored.insert(grid.object_at(start));
            }
            self.inner.note_interest(team, start.x, start.y, self.r_int);
        }
        let mut frontier: BTreeMap<NodeId, (Pos, LogicalTime)> = BTreeMap::new();
        for (id, replica) in store.iter() {
            let Some(Block::Tank { team, .. }) = Block::decode(replica.data()) else {
                continue;
            };
            if team == self.me {
                self.anchored.insert(id);
            }
            let pos = grid.pos_of(id);
            // Conservative: every visible tank block (phantoms included)
            // widens the team's interest; only the freshest one counts
            // as its position for boundary-handoff tracking.
            self.inner.note_interest(team, pos.x, pos.y, self.r_int);
            let seen = (pos, replica.version().time);
            frontier
                .entry(team)
                .and_modify(|best| {
                    if seen.1 > best.1 {
                        *best = seen;
                    }
                })
                .or_insert(seen);
        }
        for (team, (pos, _)) in frontier {
            self.inner.note_position(team, pos.x, pos.y, self.r_int, now);
        }
    }

    fn routes(&self, peer: NodeId, object: ObjectId) -> bool {
        self.anchored.contains(&object) || self.inner.routes(peer, object)
    }

    fn on_view_change(&mut self, joined: &[NodeId], left: &[NodeId]) {
        self.inner.on_view_change(joined, left);
        self.anchored.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Direction;
    use sdso_core::ObjectStore;

    fn store_with_tanks(scenario: &Scenario, tanks: &[(NodeId, Pos)]) -> ObjectStore {
        let mut store = ObjectStore::new();
        let grid = scenario.grid;
        for pos in grid.iter() {
            let block = tanks
                .iter()
                .find(|&&(_, p)| p == pos)
                .map(|&(team, _)| Block::Tank {
                    team,
                    tank: 0,
                    hp: 2,
                    facing: Direction::North,
                    fired: None,
                })
                .unwrap_or(Block::Empty);
            store.share(grid.object_at(pos), block.encode(scenario.block_bytes)).unwrap();
        }
        store
    }

    #[test]
    fn scaled_scenarios_have_room_and_payload_framing() {
        let s64 = Scenario::scaled(64, 1);
        assert_eq!((s64.grid.width, s64.grid.height), (64, 48));
        let s256 = Scenario::scaled(256, 1);
        assert_eq!((s256.grid.width, s256.grid.height), (160, 120));
        assert_eq!(s256.frame_wire_len, None, "fixed frames would mask routing savings");
        // Starts stay distinct at 256 teams.
        let mut starts = s256.starts();
        starts.sort();
        starts.dedup();
        assert_eq!(starts.len(), 256);
        assert_eq!(Scenario::scaled(16, 3).grid, crate::world::Grid::PAPER);
    }

    #[test]
    fn out_of_group_pairs_snap_the_msync2_bound_onto_group_ticks() {
        let s = Scenario::scaled(64, 1);
        // Teams 0 and 32 spawn on opposite sides of the perimeter, and
        // their tanks sit at those spawns: no shared interest region.
        let far_peer = 32;
        let store = store_with_tanks(&s, &[(0, s.start_of(0)), (far_peer, s.start_of(far_peer))]);
        let now = LogicalTime::from_ticks(3);
        // The reference: plain MSYNC2's bound on the identical store.
        let reference =
            crate::sfuncs::Msync2::new(0, s.clone()).next_exchange(far_peer, now, &store).unwrap();
        let mut f = ShardMsync2::new(0, s.clone());
        let next = f.next_exchange(far_peer, now, &store).unwrap();
        assert_eq!(next.as_ticks() % GROUP_EVERY, 0, "lands on a group tick: {next}");
        assert!(next > now, "strictly future");
        assert!(next <= reference, "never later than the MSYNC2 bound ({reference})");
        assert!(
            next.as_ticks() > now.as_ticks() + GROUP_EVERY,
            "a genuinely far pair waits several group cadences, not one: {next}"
        );
        assert!(
            next.as_ticks() + GROUP_EVERY > reference.as_ticks(),
            "snap-down loses less than one cadence: {next} vs {reference}"
        );
    }

    #[test]
    fn in_group_pairs_keep_the_msync2_bound() {
        let s = Scenario::scaled(64, 1);
        let (pa, pb) = (Pos::new(30, 20), Pos::new(33, 20));
        let store = store_with_tanks(&s, &[(0, pa), (1, pb)]);
        let mut f = ShardMsync2::new(0, s.clone());
        let next = f.next_exchange(1, LogicalTime::from_ticks(5), &store).unwrap();
        // Adjacent-ish aligned tanks: the interaction bound forces a
        // near-immediate exchange, not the 8-tick heartbeat.
        assert!(next.as_ticks() <= 7, "close pair must not idle until the heartbeat: {next}");
    }

    #[test]
    fn schedules_are_symmetric_for_mixed_pairs() {
        let s = Scenario::scaled(64, 1);
        for (pa, pb) in [
            (Pos::new(2, 2), Pos::new(60, 45)),   // far: heartbeat
            (Pos::new(30, 20), Pos::new(31, 22)), // close: bound
            (Pos::new(10, 10), Pos::new(40, 30)), // medium
        ] {
            let store = store_with_tanks(&s, &[(0, pa), (1, pb)]);
            let now = LogicalTime::from_ticks(11);
            let a = ShardMsync2::new(0, s.clone()).next_exchange(1, now, &store);
            let b = ShardMsync2::new(1, s.clone()).next_exchange(0, now, &store);
            assert_eq!(a, b, "asymmetric schedule for {pa:?}/{pb:?}");
        }
    }

    #[test]
    fn dead_peer_uses_frozen_last_delivered_position() {
        let s = Scenario::scaled(64, 1);
        let now = LogicalTime::from_ticks(4);
        // Rendezvous 1: both tanks visible and close.
        let store = store_with_tanks(&s, &[(0, Pos::new(30, 20)), (1, Pos::new(32, 20))]);
        let mut a = ShardMsync2::new(0, s.clone());
        let mut b = ShardMsync2::new(1, s.clone());
        assert_eq!(a.next_exchange(1, now, &store), b.next_exchange(0, now, &store));
        // Rendezvous 2: team 1's tank is gone (destroyed, Empty write
        // delivered). Both sides must still agree — the dead side falls
        // back to what it last delivered, the live side to what it last
        // saw.
        let later = LogicalTime::from_ticks(6);
        let store_a = store_with_tanks(&s, &[(0, Pos::new(30, 21))]);
        let store_b = store_with_tanks(&s, &[(0, Pos::new(30, 21))]);
        assert_eq!(a.next_exchange(1, later, &store_a), b.next_exchange(0, later, &store_b));
    }

    #[test]
    fn router_always_ships_own_tank_and_spawn_cells() {
        let s = Scenario::scaled(64, 1);
        let tank_pos = Pos::new(30, 20);
        let store = store_with_tanks(&s, &[(0, tank_pos), (1, Pos::new(62, 46))]);
        let mut router = ShardRouter::new(s.clone(), 0);
        DiffRouter::observe(&mut router, &store, LogicalTime::from_ticks(1));
        let tank_cell = s.grid.object_at(tank_pos);
        let own_spawn = s.grid.object_at(s.start_of(0));
        // Peer 1 sits in the far corner: its interest cannot cover the
        // centre, yet this node's own tank and spawn cells ship
        // regardless — that is what keeps peer 1's copy of our position
        // fresh at every rendezvous.
        assert!(router.routes(1, tank_cell), "own tank cells always ship");
        assert!(router.routes(1, own_spawn), "own spawn cell always ships");
        // Third-party cells are interest-routed, not anchored: team 5's
        // spawn ships only to peers whose interest covers its region
        // (peer 1's does not), and team 1's corner tank cell never
        // reaches peer 9 near the top edge.
        let spawn_cell_5 = s.grid.object_at(s.start_of(5));
        let tank_cell_1 = s.grid.object_at(Pos::new(62, 46));
        assert!(!router.routes(1, spawn_cell_5), "third-party spawn suppressed");
        assert!(!router.routes(9, tank_cell_1), "third-party tank suppressed");
        // A plain interior cell far from peer 1's tank, its spawn and
        // every always-ship anchor is suppressed for peer 1...
        let far_plain = s.grid.object_at(Pos::new(30, 24));
        assert!(!router.routes(1, far_plain), "out-of-interest cell suppressed");
        // Every in-scenario team has at least its standing spawn
        // interest, so peer 9 still receives traffic around its spawn...
        let near_spawn_9 = s.grid.object_at(Pos::new(s.start_of(9).x, s.start_of(9).y + 2));
        assert!(router.routes(9, near_spawn_9));
        // ...while a peer the router never observed (out of scenario
        // range) conservatively gets everything.
        assert!(router.routes(200, far_plain));
    }

    #[test]
    fn router_interest_follows_the_observed_tank() {
        let s = Scenario::scaled(64, 1);
        let store = store_with_tanks(&s, &[(0, Pos::new(30, 20)), (1, Pos::new(34, 20))]);
        let mut router = ShardRouter::new(s.clone(), 0);
        DiffRouter::observe(&mut router, &store, LogicalTime::from_ticks(1));
        // Peer 1's interest box covers cells near its tank.
        let near = s.grid.object_at(Pos::new(36, 21));
        assert!(router.routes(1, near));
    }
}
