//! The per-tank decision function.
//!
//! Each iteration a tank "looks at all the blocks within range in each
//! direction, north, south, east and west" and then "generates a task to
//! modify a block object" (paper §4.1): fire at an aligned enemy in range,
//! otherwise move greedily toward the goal (avoiding obstacles, bombs and
//! occupied blocks), otherwise hold.
//!
//! The decision is a pure function of the local replica state, so any two
//! processes with identical relevant state reach identical conclusions —
//! which is what makes the lock-free lowest-ID-blocks contention rule sound
//! under the lookahead protocols' freshness guarantee.

use sdso_net::NodeId;
use sdso_protocols::yields_to;

use crate::block::Block;
use crate::scenario::Scenario;
use crate::world::{Direction, Grid, Pos};

/// What a tank decides to do this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Drive onto the (passable) neighbouring block.
    Move {
        /// The destination.
        to: Pos,
        /// The movement direction (becomes the new facing).
        dir: Direction,
    },
    /// Fire along `dir` at the enemy on `target`.
    Fire {
        /// The enemy-occupied block fired at.
        target: Pos,
        /// Firing direction (becomes the new facing).
        dir: Direction,
    },
    /// Do nothing (blocked, or yielding under the contention rule).
    Hold,
}

/// Read access to (a replica of) the shared world.
pub trait WorldView {
    /// The block at `pos`.
    fn block_at(&self, pos: Pos) -> Block;
}

impl<F: Fn(Pos) -> Block> WorldView for F {
    fn block_at(&self, pos: Pos) -> Block {
        self(pos)
    }
}

/// Chooses this tick's action for the tank of `me` at `pos`, navigating
/// toward `target` (usually the goal; a patrol waypoint after scoring).
///
/// Priorities: fire at the first aligned enemy within firing range; else
/// move toward the target (primary axis first, detours around blockages);
/// hold when fully blocked.
///
/// `arbitrate` enables the lowest-ID-blocks contention rule: it is the
/// *lock-free* protocols' substitute for locks (paper §3.2), sound only
/// when the s-function guarantees fresh enemy positions within the
/// contention margin. Lock-based protocols (EC, LRC) pass `false`: their
/// write locks already serialise entries into a block, and their replicas
/// outside the lockset may be stale, which would turn long-gone enemy
/// images into permanent phantom stand-offs.
pub fn decide(
    scenario: &Scenario,
    view: &impl WorldView,
    me: NodeId,
    pos: Pos,
    target: Pos,
    arbitrate: bool,
) -> Action {
    let grid = scenario.grid;

    // 1. Fire at the first enemy tank visible along a row/column within
    //    firing range (obstacles and other tanks block the line of sight).
    for dir in Direction::ALL {
        let mut cursor = pos;
        for _ in 0..scenario.fire_range {
            let Some(next) = cursor.step(dir, grid) else {
                break;
            };
            cursor = next;
            match view.block_at(cursor) {
                Block::Tank { team, .. } if team != me => {
                    return Action::Fire { target: cursor, dir };
                }
                Block::Tank { .. } | Block::Obstacle => break, // sight blocked
                _ => {}
            }
        }
    }

    // 2. Move toward the target: try the larger-delta axis first, then the
    //    other axis, then the two perpendicular detours.
    for dir in preferred_directions(pos, target) {
        let Some(to) = pos.step(dir, grid) else {
            continue;
        };
        if !passable_for(scenario, view, me, to) {
            continue;
        }
        // Contention: an enemy adjacent to my target could drive onto it in
        // the same interval. The lowest ID yields (paper §3.2); freshness
        // within the 2-block margin is guaranteed by the s-functions.
        if arbitrate {
            if let Some(rival) = adjacent_enemy(view, grid, me, to) {
                if yields_to(me, rival) {
                    return Action::Hold;
                }
            }
        }
        return Action::Move { to, dir };
    }

    Action::Hold
}

/// Goal-seeking direction order: primary axis (larger delta) first, then
/// secondary, then the perpendicular detours away from the goal last.
fn preferred_directions(from: Pos, goal: Pos) -> [Direction; 4] {
    let dx = i32::from(goal.x) - i32::from(from.x);
    let dy = i32::from(goal.y) - i32::from(from.y);
    let x_dir = if dx >= 0 { Direction::East } else { Direction::West };
    let y_dir = if dy >= 0 { Direction::South } else { Direction::North };
    let x_back = if dx >= 0 { Direction::West } else { Direction::East };
    let y_back = if dy >= 0 { Direction::North } else { Direction::South };
    if dx.abs() >= dy.abs() {
        [x_dir, y_dir, y_back, x_back]
    } else {
        [y_dir, x_dir, x_back, y_back]
    }
}

/// Whether `me` may drive onto `to`: the block must be passable and must
/// not be a foreign team's spawn point (spawn points stay clear so respawns
/// are always well-defined).
fn passable_for(scenario: &Scenario, view: &impl WorldView, me: NodeId, to: Pos) -> bool {
    if !view.block_at(to).passable() {
        return false;
    }
    (0..scenario.teams).filter(|&t| t != me).all(|t| scenario.start_of(t) != to)
}

/// The highest-id enemy tank adjacent to `cell` (a potential same-interval
/// contender for it), if any.
fn adjacent_enemy(view: &impl WorldView, grid: Grid, me: NodeId, cell: Pos) -> Option<NodeId> {
    Direction::ALL
        .iter()
        .filter_map(|&d| cell.step(d, grid))
        .filter_map(|p| match view.block_at(p) {
            Block::Tank { team, .. } if team != me => Some(team),
            _ => None,
        })
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn view_of(map: BTreeMap<Pos, Block>) -> impl WorldView {
        move |pos: Pos| map.get(&pos).copied().unwrap_or(Block::Empty)
    }

    fn tank(team: NodeId) -> Block {
        Block::Tank { team, tank: 0, hp: 2, facing: Direction::North, fired: None }
    }

    fn scenario() -> Scenario {
        Scenario::paper(4, 3)
    }

    #[test]
    fn moves_toward_goal_on_empty_map() {
        let s = scenario();
        let view = view_of(BTreeMap::new());
        // Tank west of goal must head east.
        let action = decide(&s, &view, 0, Pos::new(2, 12), s.goal(), true);
        assert_eq!(action, Action::Move { to: Pos::new(3, 12), dir: Direction::East });
        // Tank north of goal must head south.
        let action = decide(&s, &view, 0, Pos::new(16, 2), s.goal(), true);
        assert_eq!(action, Action::Move { to: Pos::new(16, 3), dir: Direction::South });
    }

    #[test]
    fn fires_at_aligned_enemy_in_range() {
        let s = scenario();
        let enemy = Pos::new(13, 12);
        let view = view_of(BTreeMap::from([(enemy, tank(3))]));
        let action = decide(&s, &view, 0, Pos::new(10, 12), s.goal(), true);
        assert_eq!(action, Action::Fire { target: enemy, dir: Direction::East });
    }

    #[test]
    fn does_not_fire_through_obstacles() {
        let s = scenario();
        let view = view_of(BTreeMap::from([
            (Pos::new(12, 12), Block::Obstacle),
            (Pos::new(13, 12), tank(3)),
        ]));
        let action = decide(&s, &view, 0, Pos::new(10, 12), s.goal(), true);
        assert!(matches!(action, Action::Move { .. }), "sight blocked, so move: {action:?}");
    }

    #[test]
    fn does_not_fire_at_own_team() {
        let s = scenario();
        let view = view_of(BTreeMap::from([(Pos::new(11, 12), tank(0))]));
        let action = decide(&s, &view, 0, Pos::new(10, 12), s.goal(), true);
        assert!(!matches!(action, Action::Fire { .. }));
    }

    #[test]
    fn enemy_beyond_range_is_ignored() {
        let s = Scenario::paper(4, 1); // fire range 1
        let view = view_of(BTreeMap::from([(Pos::new(13, 12), tank(3))]));
        let action = decide(&s, &view, 0, Pos::new(10, 12), s.goal(), true);
        assert!(matches!(action, Action::Move { .. }));
    }

    #[test]
    fn detours_around_obstacles() {
        let s = scenario();
        // Direct eastward path blocked; go south (the secondary axis
        // toward the goal row) instead.
        let from = Pos::new(10, 10);
        let view = view_of(BTreeMap::from([(Pos::new(11, 10), Block::Obstacle)]));
        let action = decide(&s, &view, 0, from, s.goal(), true);
        assert_eq!(action, Action::Move { to: Pos::new(10, 11), dir: Direction::South });
    }

    #[test]
    fn lowest_id_yields_on_contested_cell() {
        let s = scenario();
        // Team 0 at (10,12) wants (11,12); enemy team 3 sits at (12,12),
        // adjacent to the target: contention. Lower id yields.
        let view = view_of(BTreeMap::from([(Pos::new(12, 12), tank(3))]));
        let action = decide(&s, &view, 0, Pos::new(10, 12), s.goal(), true);
        // Note: (12,12) is within fire range 3 and aligned, so team 0
        // actually fires first — use a diagonal contender to isolate the
        // contention rule.
        let _ = action;
        let view = view_of(BTreeMap::from([(Pos::new(11, 13), tank(3))]));
        let action = decide(&s, &view, 0, Pos::new(10, 12), s.goal(), true);
        assert_eq!(action, Action::Hold, "lower id yields: {action:?}");
        // The higher id proceeds in the mirror situation.
        let view = view_of(BTreeMap::from([(Pos::new(11, 13), tank(0))]));
        let action = decide(&s, &view, 3, Pos::new(10, 12), s.goal(), true);
        assert!(matches!(action, Action::Move { .. }));
    }

    #[test]
    fn never_enters_foreign_start() {
        let s = scenario();
        let me: NodeId = 0;
        // Find a start of another team and try to walk into it.
        let foreign = s.start_of(1);
        // Position the tank adjacent to it, on the goal side.
        let from = if foreign.x == 0 {
            Pos::new(foreign.x + 1, foreign.y)
        } else {
            Pos::new(foreign.x - 1, foreign.y)
        };
        let view = view_of(BTreeMap::new());
        if let Action::Move { to, .. } = decide(&s, &view, me, from, s.goal(), true) {
            assert_ne!(to, foreign, "foreign starts are off limits");
        }
    }

    #[test]
    fn fully_blocked_tank_holds() {
        let s = scenario();
        let from = Pos::new(10, 10);
        let mut map = BTreeMap::new();
        for d in Direction::ALL {
            map.insert(from.step(d, s.grid).unwrap(), Block::Obstacle);
        }
        let action = decide(&s, &view_of(map), 0, from, s.goal(), true);
        assert_eq!(action, Action::Hold);
    }
}
