//! The shared 2D environment: coordinates, directions, and the mapping of
//! grid blocks onto S-DSO objects.

use sdso_core::ObjectId;

/// A grid position (origin top-left).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pos {
    /// Column, `0..width`.
    pub x: u16,
    /// Row, `0..height`.
    pub y: u16,
}

impl Pos {
    /// Creates a position.
    pub fn new(x: u16, y: u16) -> Self {
        Pos { x, y }
    }

    /// Manhattan distance (tanks move one block per tick in the four
    /// cardinal directions, so this is also the worst-case travel time).
    pub fn manhattan(self, other: Pos) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }

    /// Whether the two positions share a row or a column (the alignment the
    /// MSYNC s-function treats as "can affect my next operation").
    pub fn aligned(self, other: Pos) -> bool {
        self.x == other.x || self.y == other.y
    }

    /// Ticks until the two could share a row or column, each moving one
    /// block per tick toward alignment: `ceil(min(|dx|, |dy|) / 2)`.
    pub fn ticks_to_alignment(self, other: Pos) -> u64 {
        let dx = u64::from(self.x.abs_diff(other.x));
        let dy = u64::from(self.y.abs_diff(other.y));
        dx.min(dy).div_ceil(2)
    }

    /// Ticks until the two could be within Manhattan distance `d`, each
    /// moving one block per tick toward each other (distance shrinks by two
    /// per tick): `ceil(max(0, dist - d) / 2)`.
    pub fn ticks_to_within(self, other: Pos, d: u32) -> u64 {
        u64::from(self.manhattan(other).saturating_sub(d)).div_ceil(2)
    }

    /// The neighbouring position in `dir`, when inside a `grid`.
    pub fn step(self, dir: Direction, grid: Grid) -> Option<Pos> {
        let (x, y) = (i32::from(self.x), i32::from(self.y));
        let (nx, ny) = match dir {
            Direction::North => (x, y - 1),
            Direction::South => (x, y + 1),
            Direction::East => (x + 1, y),
            Direction::West => (x - 1, y),
        };
        (nx >= 0
            && ny >= 0
            && (nx as u32) < u32::from(grid.width)
            && (ny as u32) < u32::from(grid.height))
        .then(|| Pos::new(nx as u16, ny as u16))
    }
}

/// The four movement/facing/firing directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Decreasing `y`.
    North,
    /// Increasing `y`.
    South,
    /// Increasing `x`.
    East,
    /// Decreasing `x`.
    West,
}

impl Direction {
    /// All four directions, in the paper's look order.
    pub const ALL: [Direction; 4] =
        [Direction::North, Direction::South, Direction::East, Direction::West];

    /// Stable wire/AI discriminant.
    pub fn index(self) -> u8 {
        match self {
            Direction::North => 0,
            Direction::South => 1,
            Direction::East => 2,
            Direction::West => 3,
        }
    }

    /// Inverse of [`Direction::index`].
    pub fn from_index(i: u8) -> Option<Direction> {
        Direction::ALL.get(usize::from(i)).copied()
    }
}

/// The grid dimensions. The paper's evaluation uses 32×24.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    /// Number of columns.
    pub width: u16,
    /// Number of rows.
    pub height: u16,
}

impl Grid {
    /// The paper's 32×24 shared environment.
    pub const PAPER: Grid = Grid { width: 32, height: 24 };

    /// Number of blocks (= shared objects).
    pub fn cells(self) -> u32 {
        u32::from(self.width) * u32::from(self.height)
    }

    /// The S-DSO object holding the block at `pos` (row-major).
    pub fn object_at(self, pos: Pos) -> ObjectId {
        ObjectId(u32::from(pos.y) * u32::from(self.width) + u32::from(pos.x))
    }

    /// Inverse of [`Grid::object_at`].
    pub fn pos_of(self, object: ObjectId) -> Pos {
        Pos::new(
            (object.0 % u32::from(self.width)) as u16,
            (object.0 / u32::from(self.width)) as u16,
        )
    }

    /// Whether `pos` lies inside the grid.
    pub fn contains(self, pos: Pos) -> bool {
        pos.x < self.width && pos.y < self.height
    }

    /// Iterates every position, row-major.
    pub fn iter(self) -> impl Iterator<Item = Pos> {
        (0..self.height).flat_map(move |y| (0..self.width).map(move |x| Pos::new(x, y)))
    }

    /// The centre block (the game's goal position).
    pub fn center(self) -> Pos {
        Pos::new(self.width / 2, self.height / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_mapping_roundtrips() {
        let g = Grid::PAPER;
        for pos in [Pos::new(0, 0), Pos::new(31, 23), Pos::new(5, 7)] {
            assert_eq!(g.pos_of(g.object_at(pos)), pos);
        }
        assert_eq!(g.cells(), 768);
    }

    #[test]
    fn manhattan_and_alignment() {
        let a = Pos::new(3, 4);
        let b = Pos::new(6, 8);
        assert_eq!(a.manhattan(b), 7);
        assert!(!a.aligned(b));
        assert!(a.aligned(Pos::new(3, 20)));
        assert!(a.aligned(Pos::new(9, 4)));
    }

    #[test]
    fn alignment_time_is_half_the_smaller_axis_gap() {
        let a = Pos::new(0, 0);
        assert_eq!(a.ticks_to_alignment(Pos::new(10, 5)), 3); // ceil(5/2)
        assert_eq!(a.ticks_to_alignment(Pos::new(10, 0)), 0); // already aligned
        assert_eq!(a.ticks_to_alignment(Pos::new(1, 1)), 1);
    }

    #[test]
    fn within_time_accounts_for_mutual_approach() {
        let a = Pos::new(0, 0);
        let b = Pos::new(10, 0);
        assert_eq!(a.ticks_to_within(b, 4), 3); // (10-4)/2
        assert_eq!(a.ticks_to_within(b, 10), 0);
        assert_eq!(a.ticks_to_within(b, 11), 0);
    }

    #[test]
    fn step_respects_bounds() {
        let g = Grid::PAPER;
        assert_eq!(Pos::new(0, 0).step(Direction::North, g), None);
        assert_eq!(Pos::new(0, 0).step(Direction::West, g), None);
        assert_eq!(Pos::new(0, 0).step(Direction::South, g), Some(Pos::new(0, 1)));
        assert_eq!(Pos::new(31, 23).step(Direction::East, g), None);
    }

    #[test]
    fn direction_index_roundtrip() {
        for d in Direction::ALL {
            assert_eq!(Direction::from_index(d.index()), Some(d));
        }
        assert_eq!(Direction::from_index(9), None);
    }

    #[test]
    fn iter_covers_every_cell_once() {
        let g = Grid { width: 4, height: 3 };
        let all: Vec<Pos> = g.iter().collect();
        assert_eq!(all.len(), 12);
        let mut unique = all.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 12);
    }
}
