//! Per-node game drivers: one per consistency protocol.
//!
//! The game logic itself ([`GameCore`]) is protocol-agnostic — it reads and
//! writes blocks through a [`BlockPort`]. Each driver wires that port to a
//! protocol: the lookahead family writes through the S-DSO runtime and
//! rendezvous after every iteration; entry consistency (and LRC) bracket
//! each iteration in a lockset; causal memory pushes every write.

use std::collections::{BTreeMap, BTreeSet};

use sdso_core::{
    DsoConfig, DsoError, DsoMetrics, EveryTick, ObjectId, Obs, SFunction, SdsoRuntime, SendMode,
};
use sdso_net::{Endpoint, NetMetricsSnapshot, NodeId, SimSpan};
use sdso_protocols::{
    CausalMemory, CausalMetrics, EcMetrics, EntryConsistency, LockMode, LockRequest, Lookahead,
    Lrc, LrcMetrics,
};

use crate::ai::{decide, Action};
use crate::block::{Block, FireRecord};
use crate::scenario::{Scenario, GOAL_POINTS};
use crate::world::{Direction, Pos};

/// The protocols the evaluation compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Broadcast lookahead: everyone, every tick.
    Bsync,
    /// Multicast lookahead on row/column alignment.
    Msync,
    /// Multicast lookahead on alignment and proximity.
    Msync2,
    /// Entry consistency (lock-based baseline).
    Entry,
    /// Lazy release consistency (Ext. D).
    Lrc,
    /// Causal memory (Ext. D).
    Causal,
    /// Multicast lookahead with region sharding: MSYNC2's interaction
    /// bound within a shared region group, a fixed aligned heartbeat
    /// across groups, and interest-routed diffs (the scaling extension;
    /// see [`crate::shard`]).
    Msync2Shard,
}

impl Protocol {
    /// The four protocols of the paper's evaluation, in its order.
    pub const PAPER: [Protocol; 4] =
        [Protocol::Entry, Protocol::Bsync, Protocol::Msync, Protocol::Msync2];

    /// All implemented protocols. `Msync2Shard` stays last: replay
    /// fixtures index into this array.
    pub const ALL: [Protocol; 7] = [
        Protocol::Entry,
        Protocol::Bsync,
        Protocol::Msync,
        Protocol::Msync2,
        Protocol::Lrc,
        Protocol::Causal,
        Protocol::Msync2Shard,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Bsync => "BSYNC",
            Protocol::Msync => "MSYNC",
            Protocol::Msync2 => "MSYNC2",
            Protocol::Entry => "EC",
            Protocol::Lrc => "LRC",
            Protocol::Causal => "CAUSAL",
            Protocol::Msync2Shard => "MSYNC2-SHARD",
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything one process reports after a run (the raw material for every
/// figure in the paper's evaluation).
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// This process's id.
    pub node: NodeId,
    /// Iterations performed.
    pub ticks: u64,
    /// Object modifications performed (Fig. 5's normaliser).
    pub modifications: u64,
    /// Game score.
    pub score: i64,
    /// Goal visits.
    pub goals: u64,
    /// Times this team's tank was destroyed.
    pub deaths: u64,
    /// Shots fired.
    pub shots: u64,
    /// Bonuses collected.
    pub bonuses: u64,
    /// Virtual (or wall) execution time of the whole run.
    pub exec_time: SimSpan,
    /// Modelled local compute time.
    pub compute_time: SimSpan,
    /// Transport counters (message/byte counts by class, blocked time).
    pub net: NetMetricsSnapshot,
    /// Transport counters up to the end of the last game tick, before the
    /// terminal measurement flush (the final barrier/settle that forces
    /// every replica to the globally newest versions so cross-replica
    /// oracles can compare worlds). This is the steady-state traffic a
    /// long-running deployment sustains — the basis for the sharding
    /// traffic gate, which must not be diluted by a flush that ships every
    /// suppressed diff once at shutdown.
    pub net_live: NetMetricsSnapshot,
    /// S-DSO runtime counters (exchange counts/times; zero under EC).
    pub dso: DsoMetrics,
    /// EC counters (lock waits/pulls; zero under the lookahead family).
    pub ec: EcMetrics,
    /// LRC counters (zero elsewhere).
    pub lrc: LrcMetrics,
    /// Causal-memory counters (zero elsewhere).
    pub causal: CausalMetrics,
    /// This process's final replica of the whole world (decoded blocks in
    /// row-major order) — the raw material for rendering and for
    /// cross-replica consistency oracles.
    pub final_world: Vec<Block>,
    /// Crash/restart cycles this process performed (crash runs only).
    pub recoveries: u64,
    /// WAL records replayed across all recoveries.
    pub wal_replayed: u64,
    /// Virtual time this process was absent from the group: from each
    /// crash instant to the completed rejoin (snapshot installed), summed
    /// over recoveries. The raw material for the recovery-time gate.
    pub recovery_time: SimSpan,
}

impl NodeStats {
    /// Execution time divided by modifications — the paper's Figure 5
    /// metric ("average execution time per process normalized by average
    /// number of object modifications").
    pub fn time_per_modification(&self) -> SimSpan {
        match self.exec_time.as_micros().checked_div(self.modifications) {
            None => SimSpan::ZERO,
            Some(per_mod) => SimSpan::from_micros(per_mod),
        }
    }
}

/// Read/write access to the shared world, as a specific protocol provides
/// it.
pub trait BlockPort {
    /// Reads the block at `pos`.
    ///
    /// # Errors
    ///
    /// Propagates store errors.
    fn read_block(&self, pos: Pos) -> Result<Block, DsoError>;

    /// Writes the block at `pos`.
    ///
    /// # Errors
    ///
    /// Propagates store, lock and transport errors.
    fn write_block(&mut self, pos: Pos, block: Block) -> Result<(), DsoError>;
}

/// One team's tank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TankState {
    /// Current (or respawn-pending) position.
    pub pos: Pos,
    /// Hit points left.
    pub hp: u8,
    /// Facing.
    pub facing: Direction,
    /// False while waiting to respawn (one-tick limbo after destruction or
    /// a goal visit).
    pub alive: bool,
}

/// The protocol-agnostic game state of one process.
#[derive(Debug)]
pub struct GameCore {
    scenario: Scenario,
    me: NodeId,
    /// Whether the lock-free lowest-ID-blocks arbitration is in force (the
    /// lookahead family and causal memory; lock-based protocols rely on
    /// their locks instead).
    arbitrate: bool,
    /// Whether a clobbered own-tank cell is a hard error. True only under
    /// the lookahead family, whose freshness guarantees make arbitration
    /// infallible — a clobber there means a protocol bug, not a race.
    strict: bool,
    /// The team's tank (the paper fixes team size to one).
    pub tank: TankState,
    /// Iterations performed so far.
    pub tick: u64,
    /// Accumulated score.
    pub score: i64,
    /// Goal visits.
    pub goals: u64,
    /// Deaths.
    pub deaths: u64,
    /// Shots fired.
    pub shots: u64,
    /// Bonuses collected.
    pub bonuses: u64,
    /// Object writes performed.
    pub modifications: u64,
    /// Highest fire-record tick processed per enemy team (deduplication).
    processed_fires: BTreeMap<NodeId, u64>,
    /// Navigation detour after scoring (disperses play; see
    /// [`Scenario::patrol_of`]).
    waypoint: Option<Pos>,
}

impl GameCore {
    /// A fresh game state with the tank on its spawn point, using lock-free
    /// contention arbitration (the lookahead default).
    pub fn new(scenario: Scenario, me: NodeId) -> Self {
        GameCore::with_arbitration(scenario, me, true)
    }

    /// A fresh game state with explicit control over the contention rule
    /// (lock-based drivers pass `false`).
    pub fn with_arbitration(scenario: Scenario, me: NodeId, arbitrate: bool) -> Self {
        Self::with_flags(scenario, me, arbitrate, arbitrate)
    }

    /// Full control: `arbitrate` enables the lowest-ID-blocks rule,
    /// `strict` makes an own-cell clobber a hard protocol error (lookahead
    /// only — causal memory arbitrates on possibly-stale data and must
    /// tolerate the resulting last-writer-wins outcome).
    pub fn with_flags(scenario: Scenario, me: NodeId, arbitrate: bool, strict: bool) -> Self {
        let tank = TankState {
            pos: scenario.start_of(me),
            hp: scenario.tank_hp,
            facing: Direction::North,
            alive: true,
        };
        // Start with a patrol leg: teams cross the map to staggered
        // interior points before converging on the goal, decorrelating
        // their arrival times the way run-until-goal games do.
        let waypoint = Some(scenario.patrol_of(me));
        GameCore {
            scenario,
            me,
            arbitrate,
            strict,
            tank,
            tick: 0,
            score: 0,
            goals: 0,
            deaths: 0,
            shots: 0,
            bonuses: 0,
            modifications: 0,
            processed_fires: BTreeMap::new(),
            waypoint,
        }
    }

    /// Whether the next tick begins with a respawn write (EC includes the
    /// spawn cell in its lockset then — it is the tank's own cell).
    pub fn respawn_pending(&self) -> bool {
        !self.tank.alive
    }

    /// Serialises the dynamic game state — everything
    /// [`GameCore::with_flags`] cannot reconstruct from its arguments —
    /// for the crash-recovery WAL (`DurRecord::App`, tag 0).
    /// Fixed-width little-endian fields behind a leading version byte;
    /// the format is private to this crate.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(72 + 10 * self.processed_fires.len());
        out.push(1); // version
        out.extend_from_slice(&self.tank.pos.x.to_le_bytes());
        out.extend_from_slice(&self.tank.pos.y.to_le_bytes());
        out.push(self.tank.hp);
        out.push(self.tank.facing.index());
        out.push(u8::from(self.tank.alive));
        for word in
            [self.tick, self.goals, self.deaths, self.shots, self.bonuses, self.modifications]
        {
            out.extend_from_slice(&word.to_le_bytes());
        }
        out.extend_from_slice(&self.score.to_le_bytes());
        match self.waypoint {
            Some(p) => {
                out.push(1);
                out.extend_from_slice(&p.x.to_le_bytes());
                out.extend_from_slice(&p.y.to_le_bytes());
            }
            None => out.extend_from_slice(&[0; 5]),
        }
        out.extend_from_slice(&(self.processed_fires.len() as u16).to_le_bytes());
        for (&team, &tick) in &self.processed_fires {
            out.extend_from_slice(&team.to_le_bytes());
            out.extend_from_slice(&tick.to_le_bytes());
        }
        out
    }

    /// Rebuilds a core from [`GameCore::encode`] bytes over the
    /// constructor arguments a restarted process still knows (they are
    /// deterministic, so recovery does not persist them). Returns `None`
    /// on a foreign version or a truncated payload.
    pub fn decode(
        scenario: Scenario,
        me: NodeId,
        arbitrate: bool,
        strict: bool,
        bytes: &[u8],
    ) -> Option<Self> {
        let mut cur = StateCursor { bytes, pos: 0 };
        if cur.u8()? != 1 {
            return None;
        }
        let pos = Pos::new(cur.u16()?, cur.u16()?);
        let hp = cur.u8()?;
        let facing = Direction::from_index(cur.u8()?)?;
        let alive = cur.u8()? != 0;
        let [tick, goals, deaths, shots, bonuses, modifications] =
            [cur.u64()?, cur.u64()?, cur.u64()?, cur.u64()?, cur.u64()?, cur.u64()?];
        let score = i64::from_le_bytes(cur.take::<8>()?);
        let waypoint = match cur.u8()? {
            0 => {
                cur.take::<4>()?;
                None
            }
            _ => Some(Pos::new(cur.u16()?, cur.u16()?)),
        };
        let fires = cur.u16()?;
        let mut processed_fires = BTreeMap::new();
        for _ in 0..fires {
            let team = cur.u16()?;
            processed_fires.insert(team, cur.u64()?);
        }
        let mut core = GameCore::with_flags(scenario, me, arbitrate, strict);
        core.tank = TankState { pos, hp, facing, alive };
        core.tick = tick;
        core.score = score;
        core.goals = goals;
        core.deaths = deaths;
        core.shots = shots;
        core.bonuses = bonuses;
        core.modifications = modifications;
        core.processed_fires = processed_fires;
        core.waypoint = waypoint;
        Some(core)
    }

    fn write(&mut self, port: &mut impl BlockPort, pos: Pos, block: Block) -> Result<(), DsoError> {
        port.write_block(pos, block)?;
        self.modifications += 1;
        Ok(())
    }

    fn my_tank_block(&self, fired: Option<FireRecord>) -> Block {
        Block::Tank { team: self.me, tank: 0, hp: self.tank.hp, facing: self.tank.facing, fired }
    }

    /// Runs one game iteration: respawn if pending, absorb incoming fire,
    /// decide, act. Returns the number of object modifications made.
    ///
    /// # Errors
    ///
    /// Propagates port errors.
    pub fn run_tick(&mut self, port: &mut impl BlockPort) -> Result<u64, DsoError> {
        let mods_before = self.modifications;
        self.tick += 1;

        if !self.tank.alive {
            // One-tick limbo is over: materialise on the spawn point and
            // stop — the tank may only start acting once every process that
            // could contend with it has seen it at the spawn (this tick's
            // rendezvous delivers the write). Acting in the materialise
            // tick would let an invisible tank race an unaware neighbour
            // into the same block, bypassing the lowest-ID arbitration.
            self.tank.pos = self.scenario.start_of(self.me);
            self.tank.hp = self.scenario.tank_hp;
            self.tank.alive = true;
            let block = self.my_tank_block(None);
            self.write(port, self.tank.pos, block)?;
            return Ok(self.modifications - mods_before);
        }

        self.absorb_damage(port)?;
        if self.tank.alive && self.strict {
            // Freshness oracle: under the lookahead family nobody may ever
            // have driven onto this tank's block — the s-functions force
            // per-tick exchanges within contention distance and the
            // lowest-ID rule then picks a unique winner. A clobbered cell
            // here means those guarantees broke; fail loudly.
            let here = port.read_block(self.tank.pos)?;
            match here {
                Block::Tank { team, .. } if team == self.me => {}
                other => {
                    return Err(DsoError::ProtocolViolation(format!(
                        "process {}: own tank block at {:?} clobbered by {:?} —                          spatial consistency violated",
                        self.me, self.tank.pos, other
                    )));
                }
            }
        }
        if self.tank.alive {
            if self.waypoint.is_some_and(|w| self.tank.pos.manhattan(w) <= 2) {
                self.waypoint = None;
            }
            let target = self.waypoint.unwrap_or_else(|| self.scenario.goal());
            let view = |pos: Pos| port.read_block(pos).unwrap_or(Block::Empty);
            let action =
                decide(&self.scenario, &view, self.me, self.tank.pos, target, self.arbitrate);
            self.apply(action, port)?;
        }
        Ok(self.modifications - mods_before)
    }

    /// The team's final act before leaving the group: clear its tank off
    /// the board so the view-change barrier propagates the departure to
    /// every remaining process. Counts as this process's trigger-tick
    /// iteration. Returns the number of object modifications made.
    ///
    /// # Errors
    ///
    /// Propagates port errors.
    pub fn retire(&mut self, port: &mut impl BlockPort) -> Result<u64, DsoError> {
        let mods_before = self.modifications;
        self.tick += 1;
        if self.tank.alive {
            self.write(port, self.tank.pos, Block::Empty)?;
            self.tank.alive = false;
        }
        Ok(self.modifications - mods_before)
    }

    /// Victim-side damage: scan for enemy fire records targeting this
    /// tank's position. Records carry the shooter's iteration count; only
    /// records newer than the last processed one (per shooter) and at most
    /// two ticks old count — one tick of rendezvous delay plus one more for
    /// lock-based protocols, whose pulls deliver records an iteration later
    /// than the lookahead family's pushes.
    fn absorb_damage(&mut self, port: &mut impl BlockPort) -> Result<(), DsoError> {
        let grid = self.scenario.grid;
        let mut hits = 0u8;
        // A relevant shooter fired from within fire range of the targeted
        // cell and has moved at most two cells since (the freshness window),
        // so scanning the surrounding box is equivalent to scanning the
        // whole grid at a fraction of the cost.
        let radius = i32::from(self.scenario.fire_range) + 3;
        let (cx, cy) = (i32::from(self.tank.pos.x), i32::from(self.tank.pos.y));
        let xs =
            (cx - radius).max(0) as u16..=((cx + radius).min(i32::from(grid.width) - 1)) as u16;
        for pos in xs.flat_map(|x| {
            let ys = (cy - radius).max(0) as u16
                ..=((cy + radius).min(i32::from(grid.height) - 1)) as u16;
            ys.map(move |y| Pos::new(x, y))
        }) {
            let Block::Tank { team, fired: Some(record), .. } = port.read_block(pos)? else {
                continue;
            };
            if team == self.me || record.target != self.tank.pos {
                continue;
            }
            let last = self.processed_fires.get(&team).copied().unwrap_or(0);
            if record.tick <= last || record.tick + 1 < self.tick.saturating_sub(1) {
                continue;
            }
            self.processed_fires.insert(team, record.tick);
            hits += 1;
        }
        for _ in 0..hits {
            if self.tank.hp > 1 {
                self.tank.hp -= 1;
                // Re-publish the tank with its reduced hp.
                let block = self.my_tank_block(None);
                self.write(port, self.tank.pos, block)?;
            } else {
                self.die(port)?;
                break;
            }
        }
        Ok(())
    }

    /// Removes the tank from the board; it respawns at the next tick.
    fn die(&mut self, port: &mut impl BlockPort) -> Result<(), DsoError> {
        self.write(port, self.tank.pos, Block::Empty)?;
        self.deaths += 1;
        self.tank.alive = false;
        self.tank.pos = self.scenario.start_of(self.me);
        Ok(())
    }

    fn apply(&mut self, action: Action, port: &mut impl BlockPort) -> Result<(), DsoError> {
        match action {
            Action::Hold => Ok(()),
            Action::Fire { target, dir } => {
                self.tank.facing = dir;
                self.shots += 1;
                let record = FireRecord { target, tick: self.tick };
                let block = self.my_tank_block(Some(record));
                self.write(port, self.tank.pos, block)
            }
            Action::Move { to, dir } => {
                self.tank.facing = dir;
                match port.read_block(to)? {
                    Block::Bonus { points } => {
                        self.score += i64::from(points);
                        self.bonuses += 1;
                        self.complete_move(port, to)
                    }
                    Block::Bomb => {
                        // Drive onto the bomb: both vanish; respawn next
                        // tick.
                        self.write(port, to, Block::Empty)?;
                        self.die(port)
                    }
                    Block::Goal => {
                        self.score += GOAL_POINTS;
                        self.goals += 1;
                        self.waypoint = Some(self.scenario.patrol_of(self.me));
                        // Score and teleport home (the goal block itself is
                        // never overwritten).
                        self.write(port, self.tank.pos, Block::Empty)?;
                        self.tank.alive = false;
                        self.tank.pos = self.scenario.start_of(self.me);
                        Ok(())
                    }
                    Block::Empty => self.complete_move(port, to),
                    // The AI never targets these; replicas may race a tick
                    // behind, in which case holding is the safe outcome.
                    Block::Obstacle | Block::Tank { .. } => Ok(()),
                }
            }
        }
    }

    fn complete_move(&mut self, port: &mut impl BlockPort, to: Pos) -> Result<(), DsoError> {
        self.write(port, self.tank.pos, Block::Empty)?;
        self.tank.pos = to;
        let block = self.my_tank_block(None);
        self.write(port, to, block)
    }
}

/// Bounds-checked little-endian reader for [`GameCore::decode`].
struct StateCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl StateCursor<'_> {
    fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
        let slice = self.bytes.get(self.pos..self.pos + N)?;
        self.pos += N;
        slice.try_into().ok()
    }
    fn u8(&mut self) -> Option<u8> {
        self.take::<1>().map(|b| b[0])
    }
    fn u16(&mut self) -> Option<u16> {
        self.take::<2>().map(u16::from_le_bytes)
    }
    fn u64(&mut self) -> Option<u64> {
        self.take::<8>().map(u64::from_le_bytes)
    }
}

// ---------------------------------------------------------------------
// Ports
// ---------------------------------------------------------------------

/// Port over the S-DSO runtime (lookahead family and causal pushes go
/// through protocol-specific wrappers below).
pub(crate) struct RuntimePort<'a, E: Endpoint> {
    pub(crate) runtime: &'a mut SdsoRuntime<E>,
    pub(crate) scenario: &'a Scenario,
}

impl<E: Endpoint> BlockPort for RuntimePort<'_, E> {
    fn read_block(&self, pos: Pos) -> Result<Block, DsoError> {
        let bytes = self.runtime.read(self.scenario.grid.object_at(pos))?;
        Block::decode(bytes)
            .ok_or_else(|| DsoError::ProtocolViolation(format!("corrupt block at {pos:?}")))
    }
    fn write_block(&mut self, pos: Pos, block: Block) -> Result<(), DsoError> {
        let object = self.scenario.grid.object_at(pos);
        self.runtime.write(object, 0, &block.encode(self.scenario.block_bytes))
    }
}

/// Port over entry consistency: writes go through the lock layer and the
/// modified set is recorded for the release.
pub(crate) struct EcPort<'a, E: Endpoint> {
    pub(crate) ec: &'a mut EntryConsistency<E>,
    pub(crate) scenario: &'a Scenario,
    pub(crate) modified: &'a mut BTreeSet<ObjectId>,
}

impl<E: Endpoint> BlockPort for EcPort<'_, E> {
    fn read_block(&self, pos: Pos) -> Result<Block, DsoError> {
        let bytes = self.ec.read(self.scenario.grid.object_at(pos))?;
        Block::decode(bytes)
            .ok_or_else(|| DsoError::ProtocolViolation(format!("corrupt block at {pos:?}")))
    }
    fn write_block(&mut self, pos: Pos, block: Block) -> Result<(), DsoError> {
        let object = self.scenario.grid.object_at(pos);
        self.ec.write(object, 0, &block.encode(self.scenario.block_bytes))?;
        self.modified.insert(object);
        Ok(())
    }
}

/// Port over LRC: writes enter the open interval.
struct LrcPort<'a, E: Endpoint> {
    lrc: &'a mut Lrc<E>,
    scenario: &'a Scenario,
}

impl<E: Endpoint> BlockPort for LrcPort<'_, E> {
    fn read_block(&self, pos: Pos) -> Result<Block, DsoError> {
        let bytes = self.lrc.read(self.scenario.grid.object_at(pos))?;
        Block::decode(bytes)
            .ok_or_else(|| DsoError::ProtocolViolation(format!("corrupt block at {pos:?}")))
    }
    fn write_block(&mut self, pos: Pos, block: Block) -> Result<(), DsoError> {
        let object = self.scenario.grid.object_at(pos);
        self.lrc.write(object, 0, &block.encode(self.scenario.block_bytes))
    }
}

/// Port over causal memory: every write is pushed to all processes.
struct CausalPort<'a, E: Endpoint> {
    causal: &'a mut CausalMemory<E>,
    scenario: &'a Scenario,
}

impl<E: Endpoint> BlockPort for CausalPort<'_, E> {
    fn read_block(&self, pos: Pos) -> Result<Block, DsoError> {
        let bytes = self.causal.read(self.scenario.grid.object_at(pos))?;
        Block::decode(bytes)
            .ok_or_else(|| DsoError::ProtocolViolation(format!("corrupt block at {pos:?}")))
    }
    fn write_block(&mut self, pos: Pos, block: Block) -> Result<(), DsoError> {
        let object = self.scenario.grid.object_at(pos);
        self.causal.write(object, 0, &block.encode(self.scenario.block_bytes))
    }
}

// ---------------------------------------------------------------------
// Runners
// ---------------------------------------------------------------------

fn build_runtime<E: Endpoint>(
    endpoint: E,
    scenario: &Scenario,
    obs: Obs,
) -> Result<SdsoRuntime<E>, DsoError> {
    let config = DsoConfig {
        frame_wire_len: scenario.frame_wire_len,
        merge_diffs: scenario.merge_diffs,
        reliability: scenario.reliability,
        wire: scenario.wire,
        batch_frames: true,
        ..DsoConfig::paper()
    };
    let mut rt = SdsoRuntime::with_obs(endpoint, config, obs);
    for (idx, block) in scenario.initial_world().iter().enumerate() {
        rt.share(ObjectId(idx as u32), block.encode(scenario.block_bytes))?;
    }
    Ok(rt)
}

/// Decodes a runtime's final replica of the whole grid.
pub(crate) fn snapshot_world<E: Endpoint>(rt: &SdsoRuntime<E>, scenario: &Scenario) -> Vec<Block> {
    scenario
        .grid
        .iter()
        .map(|pos| {
            rt.read(scenario.grid.object_at(pos))
                .ok()
                .and_then(Block::decode)
                .unwrap_or(Block::Empty)
        })
        .collect()
}

/// Per-tick modelled compute: the look phase plus the decision.
pub(crate) fn think_cost(scenario: &Scenario) -> SimSpan {
    let blocks_looked = 4 * u64::from(scenario.range);
    SimSpan::from_micros(scenario.look_cost.as_micros() * blocks_looked) + scenario.decide_cost
}

pub(crate) fn write_cost(scenario: &Scenario, mods: u64) -> SimSpan {
    SimSpan::from_micros(scenario.write_cost.as_micros() * mods)
}

/// Runs one process of the game under the given protocol to completion
/// (`scenario.ticks` iterations) and reports its statistics.
///
/// This is the entry point the evaluation harness calls once per simulated
/// (or real) node.
///
/// # Errors
///
/// Propagates transport, store and protocol errors.
pub fn run_node<E: Endpoint>(
    endpoint: E,
    scenario: &Scenario,
    protocol: Protocol,
) -> Result<NodeStats, DsoError> {
    run_node_obs(endpoint, scenario, protocol, Obs::disabled())
}

/// Like [`run_node`], but records into the given observability bundle:
/// flight-recorder events (exchanges, rendezvous waits, locks, faults)
/// land in `obs`'s recorder and every counter in its registry. The
/// harness constructs one bundle per node up front (an
/// [`sdso_core::ObsSet`]) so it can export a cluster-wide trace after
/// the run.
///
/// # Errors
///
/// Propagates transport, store and protocol errors.
pub fn run_node_obs<E: Endpoint>(
    endpoint: E,
    scenario: &Scenario,
    protocol: Protocol,
    obs: Obs,
) -> Result<NodeStats, DsoError> {
    assert_eq!(
        scenario.team_size, 1,
        "multi-tank teams are not implemented (the paper fixes team size to one)"
    );
    match protocol {
        Protocol::Bsync => run_lookahead(endpoint, scenario, EveryTick, None, obs),
        Protocol::Msync => {
            let me = endpoint.node_id();
            let sfunc = crate::sfuncs::Msync::new(me, scenario.clone());
            run_lookahead(endpoint, scenario, sfunc, None, obs)
        }
        Protocol::Msync2 => {
            let me = endpoint.node_id();
            let sfunc = crate::sfuncs::Msync2::new(me, scenario.clone());
            run_lookahead(endpoint, scenario, sfunc, None, obs)
        }
        Protocol::Msync2Shard => {
            let me = endpoint.node_id();
            let sfunc = crate::shard::ShardMsync2::new(me, scenario.clone());
            let router = Box::new(crate::shard::ShardRouter::new(scenario.clone(), me));
            run_lookahead(endpoint, scenario, sfunc, Some(router), obs)
        }
        Protocol::Entry => run_entry(endpoint, scenario, obs),
        Protocol::Lrc => run_lrc(endpoint, scenario, obs),
        Protocol::Causal => run_causal(endpoint, scenario, obs),
    }
}

fn run_lookahead<E: Endpoint, S: SFunction>(
    endpoint: E,
    scenario: &Scenario,
    sfunc: S,
    router: Option<Box<dyn sdso_core::DiffRouter>>,
    obs: Obs,
) -> Result<NodeStats, DsoError> {
    let me = endpoint.node_id();
    let mut rt = build_runtime(endpoint, scenario, obs)?;
    rt.set_diff_router(router);
    let mut node = Lookahead::new(rt, sfunc)?;
    let mut core = GameCore::new(scenario.clone(), me);
    let mut compute = SimSpan::ZERO;

    for _ in 0..scenario.ticks {
        let think = think_cost(scenario);
        node.runtime_mut().advance(think);
        compute += think;

        let mods = {
            let mut port = RuntimePort { runtime: node.runtime_mut(), scenario };
            core.run_tick(&mut port)?
        };
        let wc = write_cost(scenario, mods);
        node.runtime_mut().advance(wc);
        compute += wc;

        node.step()?;
    }

    let mut rt = node.into_runtime();
    // Deltas, not lifetime-cumulative: stats must cover this run only even
    // when the endpoint outlives it (TCP meshes, repeated runs).
    let net_live = rt.net_metrics_delta();
    // Terminal full synchronisation: one broadcast rendezvous flushes every
    // buffered slot (MSYNC-family slots for non-due peers would otherwise
    // stay pending forever), then the reliability layer — when on —
    // retransmits until the tail is acknowledged. After this, every replica
    // holds the globally newest version of every object.
    rt.exchange(true, SendMode::Broadcast, &mut sdso_core::Never)?;
    rt.settle()?;
    Ok(NodeStats {
        node: me,
        ticks: core.tick,
        modifications: core.modifications,
        score: core.score,
        goals: core.goals,
        deaths: core.deaths,
        shots: core.shots,
        bonuses: core.bonuses,
        exec_time: rt.now().saturating_since(sdso_net::SimInstant::ZERO),
        compute_time: compute,
        net: net_live.merged(&rt.net_metrics_delta()),
        net_live,
        dso: rt.metrics(),
        final_world: snapshot_world(&rt, scenario),
        ..NodeStats::default()
    })
}

/// The paper's EC lockset: write locks on the tank's own block and the four
/// adjacent blocks (anywhere it might move), read locks on the remaining
/// aligned blocks within sensing range — 5 locks at range 1, 13 (5 write)
/// at range 3, fewer at the grid edge.
pub fn ec_lockset(scenario: &Scenario, pos: Pos) -> Vec<LockRequest> {
    let grid = scenario.grid;
    let mut locks = vec![LockRequest::write(grid.object_at(pos))];
    for dir in Direction::ALL {
        let mut cursor = pos;
        for step in 1..=scenario.range {
            let Some(next) = cursor.step(dir, grid) else {
                break;
            };
            cursor = next;
            let mode = if step == 1 { LockMode::Write } else { LockMode::Read };
            locks.push(LockRequest { object: grid.object_at(cursor), mode });
        }
    }
    locks
}

fn run_entry<E: Endpoint>(
    endpoint: E,
    scenario: &Scenario,
    obs: Obs,
) -> Result<NodeStats, DsoError> {
    let me = endpoint.node_id();
    let rt = build_runtime(endpoint, scenario, obs)?;
    let mut ec = EntryConsistency::new(rt);
    let mut core = GameCore::with_arbitration(scenario.clone(), me, false);
    let mut compute = SimSpan::ZERO;

    for _ in 0..scenario.ticks {
        ec.service_pending()?;
        let think = think_cost(scenario);
        ec.runtime_mut().advance(think);
        compute += think;

        let lockset = ec_lockset(scenario, core.tank.pos);
        ec.acquire(&lockset)?;

        let mut modified = BTreeSet::new();
        let mods = {
            let mut port = EcPort { ec: &mut ec, scenario, modified: &mut modified };
            core.run_tick(&mut port)?
        };
        let wc = write_cost(scenario, mods);
        ec.runtime_mut().advance(wc);
        compute += wc;

        ec.release_all(&modified)?;
    }
    let net_live = ec.runtime_mut().net_metrics_delta();
    ec.finish()?;
    // Pull-based EC leaves replicas stale wherever this process never
    // locked; the final-sync barrier disseminates every object's newest
    // version so snapshots agree across processes. The settle pass then
    // keeps retransmitting (and acknowledging) until the tail of the
    // barrier itself is delivered — without it, a process whose last
    // SyncDone was dropped would exit and leave its peers starving.
    ec.final_sync()?;
    ec.runtime_mut().settle()?;

    Ok(NodeStats {
        node: me,
        ticks: core.tick,
        modifications: core.modifications,
        score: core.score,
        goals: core.goals,
        deaths: core.deaths,
        shots: core.shots,
        bonuses: core.bonuses,
        exec_time: ec.runtime().now().saturating_since(sdso_net::SimInstant::ZERO),
        compute_time: compute,
        net: net_live.merged(&ec.runtime_mut().net_metrics_delta()),
        net_live,
        dso: ec.runtime().metrics(),
        ec: ec.metrics(),
        final_world: snapshot_world(ec.runtime(), scenario),
        ..NodeStats::default()
    })
}

fn run_lrc<E: Endpoint>(endpoint: E, scenario: &Scenario, obs: Obs) -> Result<NodeStats, DsoError> {
    let me = endpoint.node_id();
    let rt = build_runtime(endpoint, scenario, obs)?;
    let mut lrc = Lrc::new(rt);
    let mut core = GameCore::with_arbitration(scenario.clone(), me, false);
    let mut compute = SimSpan::ZERO;

    for _ in 0..scenario.ticks {
        lrc.service_pending()?;
        let think = think_cost(scenario);
        lrc.runtime_mut().advance(think);
        compute += think;

        // LRC locks are plain synchronisation variables; the game uses one
        // lock per block it would write-lock under EC, acquired in order.
        let mut locks: Vec<u32> = ec_lockset(scenario, core.tank.pos)
            .into_iter()
            .filter(|l| l.mode == LockMode::Write)
            .map(|l| l.object.0)
            .collect();
        locks.sort_unstable();
        for &lock in &locks {
            lrc.acquire(lock)?;
        }

        let mods = {
            let mut port = LrcPort { lrc: &mut lrc, scenario };
            core.run_tick(&mut port)?
        };
        let wc = write_cost(scenario, mods);
        lrc.runtime_mut().advance(wc);
        compute += wc;

        for &lock in locks.iter().rev() {
            lrc.release(lock)?;
        }
    }
    let net_live = lrc.runtime_mut().net_metrics_delta();
    lrc.finish()?;

    Ok(NodeStats {
        node: me,
        ticks: core.tick,
        modifications: core.modifications,
        score: core.score,
        goals: core.goals,
        deaths: core.deaths,
        shots: core.shots,
        bonuses: core.bonuses,
        exec_time: lrc.runtime().now().saturating_since(sdso_net::SimInstant::ZERO),
        compute_time: compute,
        net: net_live.merged(&lrc.runtime_mut().net_metrics_delta()),
        net_live,
        lrc: lrc.metrics(),
        final_world: snapshot_world(lrc.runtime(), scenario),
        ..NodeStats::default()
    })
}

fn run_causal<E: Endpoint>(
    endpoint: E,
    scenario: &Scenario,
    obs: Obs,
) -> Result<NodeStats, DsoError> {
    let me = endpoint.node_id();
    let rt = build_runtime(endpoint, scenario, obs)?;
    let mut causal = CausalMemory::new(rt);
    // Causal memory arbitrates on possibly-stale views: races resolve by
    // last-writer-wins, so clobbers are tolerated rather than fatal.
    let mut core = GameCore::with_flags(scenario.clone(), me, true, false);
    let mut compute = SimSpan::ZERO;

    for _ in 0..scenario.ticks {
        causal.deliver_pending()?;
        let think = think_cost(scenario);
        causal.runtime_mut().advance(think);
        compute += think;

        let mods = {
            let mut port = CausalPort { causal: &mut causal, scenario };
            core.run_tick(&mut port)?
        };
        let wc = write_cost(scenario, mods);
        causal.runtime_mut().advance(wc);
        compute += wc;
    }
    // Push-based and non-blocking: no termination handshake needed, so
    // live and total counters coincide.
    let net = causal.runtime_mut().net_metrics_delta();

    Ok(NodeStats {
        node: me,
        ticks: core.tick,
        modifications: core.modifications,
        score: core.score,
        goals: core.goals,
        deaths: core.deaths,
        shots: core.shots,
        bonuses: core.bonuses,
        exec_time: causal.runtime().now().saturating_since(sdso_net::SimInstant::ZERO),
        compute_time: compute,
        net,
        net_live: net,
        causal: causal.metrics(),
        final_world: snapshot_world(causal.runtime(), scenario),
        ..NodeStats::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;

    /// An in-memory port for exercising GameCore in isolation.
    #[derive(Debug, Default)]
    struct LocalPort {
        blocks: Map<Pos, Block>,
    }

    impl LocalPort {
        fn from_world(scenario: &Scenario) -> Self {
            let mut blocks = Map::new();
            for (idx, block) in scenario.initial_world().into_iter().enumerate() {
                blocks.insert(scenario.grid.pos_of(ObjectId(idx as u32)), block);
            }
            LocalPort { blocks }
        }
    }

    impl BlockPort for LocalPort {
        fn read_block(&self, pos: Pos) -> Result<Block, DsoError> {
            Ok(self.blocks.get(&pos).copied().unwrap_or(Block::Empty))
        }
        fn write_block(&mut self, pos: Pos, block: Block) -> Result<(), DsoError> {
            self.blocks.insert(pos, block);
            Ok(())
        }
    }

    fn scenario() -> Scenario {
        Scenario::paper(2, 1).with_ticks(50)
    }

    #[test]
    fn tank_progresses_toward_goal() {
        let s = scenario();
        let mut port = LocalPort::from_world(&s);
        let mut core = GameCore::new(s.clone(), 0);
        let d0 = core.tank.pos.manhattan(s.goal());
        for _ in 0..10 {
            core.run_tick(&mut port).unwrap();
        }
        let d1 = core.tank.pos.manhattan(s.goal());
        assert!(d1 < d0, "tank should close in on the goal ({d0} -> {d1})");
        assert!(core.modifications > 0);
    }

    #[test]
    fn goal_visit_scores_and_respawns() {
        let s = scenario();
        let mut port = LocalPort::from_world(&s);
        let mut core = GameCore::new(s.clone(), 0);
        for _ in 0..200 {
            core.run_tick(&mut port).unwrap();
            if core.goals > 0 {
                break;
            }
        }
        assert!(core.goals >= 1, "tank should reach the goal in 200 ticks");
        assert!(core.score >= GOAL_POINTS);
        // The goal block itself is never destroyed.
        assert_eq!(port.read_block(s.goal()).unwrap(), Block::Goal);
    }

    #[test]
    fn respawn_takes_one_limbo_tick() {
        let s = scenario();
        let mut port = LocalPort::from_world(&s);
        let mut core = GameCore::new(s.clone(), 0);
        // Surround the spawn with a bomb on the tank's chosen path.
        // Simpler: force death directly.
        core.die(&mut port).unwrap();
        assert!(core.respawn_pending());
        assert_eq!(port.read_block(s.start_of(0)).unwrap(), Block::Empty);
        core.run_tick(&mut port).unwrap();
        assert!(core.tank.alive);
        assert!(matches!(
            port.read_block(core.tank.pos).unwrap(),
            Block::Tank { team: 0, .. } | Block::Empty
        ));
        assert_eq!(core.deaths, 1);
    }

    #[test]
    fn fire_record_damages_victim_once() {
        let s = scenario();
        let mut port = LocalPort::from_world(&s);
        let mut core = GameCore::new(s.clone(), 0);
        let my_pos = core.tank.pos;
        // An enemy within firing distance has fired at our cell on its
        // tick 1 (records from shooters beyond fire range + movement slack
        // are irrelevant by construction and excluded from the scan).
        let enemy_pos = Pos::new(my_pos.x + 1, my_pos.y + 1);
        port.write_block(
            enemy_pos,
            Block::Tank {
                team: 1,
                tank: 0,
                hp: 2,
                facing: Direction::North,
                fired: Some(FireRecord { target: my_pos, tick: 1 }),
            },
        )
        .unwrap();
        let hp_before = core.tank.hp;
        core.run_tick(&mut port).unwrap();
        assert_eq!(core.tank.hp, hp_before - 1, "one hit absorbed");
        // The same record must not damage again.
        let hp_after = core.tank.hp;
        // Tank moved; put the record's target where the tank now is? No —
        // the record is stale (same shooter tick), so nothing happens.
        core.run_tick(&mut port).unwrap();
        assert_eq!(core.tank.hp, hp_after, "stale record ignored");
    }

    #[test]
    fn lethal_hit_kills_and_respawns() {
        let s = scenario();
        let mut port = LocalPort::from_world(&s);
        let mut core = GameCore::new(s.clone(), 0);
        core.tank.hp = 1;
        let my_pos = core.tank.pos;
        port.write_block(
            Pos::new(my_pos.x + 1, my_pos.y + 1),
            Block::Tank {
                team: 1,
                tank: 0,
                hp: 2,
                facing: Direction::North,
                fired: Some(FireRecord { target: my_pos, tick: 1 }),
            },
        )
        .unwrap();
        core.run_tick(&mut port).unwrap();
        assert_eq!(core.deaths, 1);
        assert!(core.respawn_pending());
    }

    #[test]
    fn ec_lockset_sizes_match_paper() {
        // Interior position, range 1: 5 locks, all write.
        let s1 = Scenario::paper(4, 1);
        let locks = ec_lockset(&s1, Pos::new(10, 10));
        assert_eq!(locks.len(), 5);
        assert!(locks.iter().all(|l| l.mode == LockMode::Write));
        // Interior position, range 3: 13 locks, 5 write.
        let s3 = Scenario::paper(4, 3);
        let locks = ec_lockset(&s3, Pos::new(10, 10));
        assert_eq!(locks.len(), 13);
        assert_eq!(locks.iter().filter(|l| l.mode == LockMode::Write).count(), 5);
        // Corner position: clipped.
        let locks = ec_lockset(&s3, Pos::new(0, 0));
        assert_eq!(locks.len(), 7);
    }

    #[test]
    fn bonus_pickup_adds_score() {
        let s = scenario();
        let mut port = LocalPort::from_world(&s);
        let mut core = GameCore::new(s.clone(), 0);
        // Plant a bonus straight on the tank's next step.
        let view = |pos: Pos| port.read_block(pos).unwrap_or(Block::Empty);
        let Action::Move { to, .. } = decide(&s, &view, 0, core.tank.pos, s.goal(), true) else {
            panic!("expected a move");
        };
        port.write_block(to, Block::Bonus { points: 10 }).unwrap();
        core.run_tick(&mut port).unwrap();
        assert_eq!(core.score, 10);
        assert_eq!(core.bonuses, 1);
        assert_eq!(core.tank.pos, to);
    }

    #[test]
    fn bomb_destroys_and_consumes() {
        let s = scenario();
        let mut port = LocalPort::from_world(&s);
        let mut core = GameCore::new(s.clone(), 0);
        let view = |pos: Pos| port.read_block(pos).unwrap_or(Block::Empty);
        let Action::Move { to, .. } = decide(&s, &view, 0, core.tank.pos, s.goal(), true) else {
            panic!("expected a move");
        };
        port.write_block(to, Block::Bomb).unwrap();
        core.run_tick(&mut port).unwrap();
        assert_eq!(core.deaths, 1);
        assert!(core.respawn_pending());
        assert_eq!(port.read_block(to).unwrap(), Block::Empty, "bomb consumed");
    }
}
