//! Crash-fault tolerant node runners: the tank game under a [`FaultPlan`]
//! with seeded, deterministically replayable crash/restart events.
//!
//! # The crash model
//!
//! Fail-stop at barrier granularity. A process scheduled to crash at tick
//! `C` runs its tick-`C` iteration and the tick's barrier exchange like
//! everyone else, then dies abruptly: no reliability settling, no view
//! change, no farewell write — its tank freezes on the board exactly
//! where the barrier left it. Volatile state (runtime, reliability links,
//! game core) vanishes; two things survive, as they would on a real host:
//!
//! * **stable storage** — the [`DurStore`] byte pair (WAL + snapshot
//!   image) the process maintained while alive, held by the driver across
//!   incarnations the way a disk outlives a reboot;
//! * **the endpoint** — a rebooted host keeps its address, so the
//!   transport endpoint is threaded through the crash.
//!
//! Survivors observe the crash through the membership plan derived by
//! [`crash_membership_plan`]: the crash tick carries a leave-flavoured
//! view change, so the regular churn machinery (epoch bump, slot
//! compaction, link pruning) executes the failure.
//!
//! # Recovery
//!
//! At its restart tick the process re-opens stable storage
//! ([`DurStore::from_bytes`]): the WAL's whole-record prefix replays over
//! the newest checkpoint image, yielding the pre-crash identity, epoch,
//! logical-clock frontier and game state ([`GameCore::decode`] of the
//! newest tag-0 `App` record). It then rejoins through the late-joiner
//! path — install the rejoin view, drain crash-era residue frames
//! ([`sdso_core::SdsoRuntime::drain_crash_residue`]), pull the donor's
//! snapshot — and resumes playing from the tick after its rejoin with its
//! pre-crash score, tank and fire-record history intact. While the
//! process is down its tank sits frozen and invulnerable (fire records
//! are absorbed by the owning process), which keeps the schedule
//! deterministic: replaying the same [`FaultPlan`] reproduces the same
//! run.

use std::collections::BTreeSet;

use sdso_core::{
    DsoError, Epoch, EveryTick, LogicalTime, MembershipPlan, Never, Obs, SFunction, SdsoRuntime,
    SendMode,
};
use sdso_dur::{
    crash_membership_plan, validate_crash_plan, DurRecord, DurStore, MemSink, SnapshotImage,
};
use sdso_net::{Endpoint, FaultPlan, NodeId, SimSpan};
use sdso_obs::EventKind;
use sdso_protocols::{EntryConsistency, Lookahead};

use crate::block::Block;
use crate::churn::build_churn_runtime;
use crate::driver::{
    ec_lockset, snapshot_world, think_cost, write_cost, BlockPort, EcPort, GameCore, NodeStats,
    Protocol, RuntimePort,
};
use crate::scenario::Scenario;

/// Checkpoint cadence: fold the WAL into a snapshot image every this many
/// ticks, bounding replay length to one checkpoint interval.
const CHECKPOINT_EVERY: u64 = 8;

/// Runs one process of the game under `protocol` and the fault plan's
/// crash schedule (chaos faults in the same plan are ignored here; they
/// belong to the transport layer).
///
/// Every team slot runs this function. A process without a crash event
/// plays start to finish, weathering other processes' crashes as view
/// changes. A process with a crash event dies abruptly at its crash tick
/// and — if the event has a restart tick — recovers from its WAL and
/// rejoins, finishing the game with its pre-crash state. Supported
/// protocols are the paper's four (BSYNC/MSYNC/MSYNC2/EC).
///
/// # Errors
///
/// Propagates transport, store and protocol errors, and rejects
/// unrealisable crash schedules or uncovered protocols.
///
/// # Panics
///
/// Panics if a crash or restart tick falls outside `1..scenario.ticks`.
pub fn run_crash_node<E: Endpoint>(
    endpoint: E,
    scenario: &Scenario,
    protocol: Protocol,
    faults: &FaultPlan,
) -> Result<NodeStats, DsoError> {
    run_crash_node_obs(endpoint, scenario, protocol, faults, Obs::disabled())
}

/// Like [`run_crash_node`], but records into the given observability
/// bundle: WAL replays, recoveries and the usual exchange/view-change
/// events land in its flight recorder, and `dso.recovery.*` counters in
/// its registry.
///
/// # Errors
///
/// Propagates transport, store and protocol errors, and rejects
/// unrealisable crash schedules or uncovered protocols.
///
/// # Panics
///
/// Panics if a crash or restart tick falls outside `1..scenario.ticks`.
pub fn run_crash_node_obs<E: Endpoint>(
    endpoint: E,
    scenario: &Scenario,
    protocol: Protocol,
    faults: &FaultPlan,
    obs: Obs,
) -> Result<NodeStats, DsoError> {
    validate_crash_plan(faults, usize::from(scenario.teams))
        .map_err(|e| DsoError::ProtocolViolation(format!("unrealisable crash schedule: {e}")))?;
    for crash in &faults.crashes {
        assert!(
            crash.crash_tick >= 1 && crash.crash_tick < scenario.ticks,
            "crash tick {} must fall inside the run (1..{})",
            crash.crash_tick,
            scenario.ticks
        );
        if let Some(r) = crash.restart_tick {
            assert!(
                r < scenario.ticks,
                "restart tick {r} must fall inside the run (1..{})",
                scenario.ticks
            );
        }
    }
    let plan = crash_membership_plan(usize::from(scenario.teams), 0..scenario.teams, faults);
    match protocol {
        Protocol::Bsync => {
            run_crash_lookahead(endpoint, scenario, faults, &plan, |_| EveryTick, obs)
        }
        Protocol::Msync => run_crash_lookahead(
            endpoint,
            scenario,
            faults,
            &plan,
            |me| crate::sfuncs::Msync::new(me, scenario.clone()),
            obs,
        ),
        Protocol::Msync2 => run_crash_lookahead(
            endpoint,
            scenario,
            faults,
            &plan,
            |me| crate::sfuncs::Msync2::new(me, scenario.clone()),
            obs,
        ),
        Protocol::Entry => run_crash_entry(endpoint, scenario, faults, &plan, obs),
        Protocol::Lrc | Protocol::Causal | Protocol::Msync2Shard => {
            Err(DsoError::ProtocolViolation(format!(
                "{protocol} has no crash runner; crash runs cover the paper's four protocols"
            )))
        }
    }
}

fn dur_err(e: std::io::Error) -> DsoError {
    DsoError::ProtocolViolation(format!("durable store failure: {e}"))
}

fn log_ident(store: &mut DurStore<MemSink>, me: NodeId, epoch: Epoch) -> Result<(), DsoError> {
    store.append(&DurRecord::Ident { node: me, epoch: epoch.0 }).map_err(dur_err)
}

/// Logs one completed tick: the clock frontier, the full (small) game
/// state as the tag-0 application record, and — on the checkpoint cadence
/// — a WAL-truncating snapshot image.
fn log_tick<E: Endpoint>(
    store: &mut DurStore<MemSink>,
    rt: &SdsoRuntime<E>,
    core: &GameCore,
    tick: u64,
    obs: &Obs,
) -> Result<(), DsoError> {
    let (time, lamport) = (rt.logical_now().as_ticks(), rt.lamport());
    store.append(&DurRecord::Tick { time, lamport }).map_err(dur_err)?;
    let state = core.encode();
    obs.record(rt.now().as_micros(), EventKind::WalAppend, tick as u32, state.len() as u32, 0);
    store.append(&DurRecord::App { tag: 0, bytes: state }).map_err(dur_err)?;
    if tick % CHECKPOINT_EVERY == 0 {
        let image = SnapshotImage {
            node: rt.node_id(),
            epoch: rt.membership().epoch().0,
            time,
            lamport,
            objects: Vec::new(),
            app: core.encode(),
        };
        store.checkpoint(&image).map_err(dur_err)?;
    }
    Ok(())
}

/// What a restarted incarnation learned from stable storage.
struct Recovered {
    store: DurStore<MemSink>,
    app: Vec<u8>,
    time: u64,
    lamport: u64,
    records: u64,
    truncated: u64,
}

/// Re-opens the stable byte pair and validates the recovered identity.
fn recover_store(wal: Vec<u8>, snap: Vec<u8>, me: NodeId) -> Result<Recovered, DsoError> {
    let (store, image) = DurStore::from_bytes(wal, snap).map_err(dur_err)?;
    let (node, _epoch) = image.ident().ok_or_else(|| {
        DsoError::ProtocolViolation("recovered storage holds no identity record".into())
    })?;
    if node != me {
        return Err(DsoError::ProtocolViolation(format!(
            "recovered identity {node} does not match process {me}"
        )));
    }
    let app = image
        .app_state(0)
        .ok_or_else(|| DsoError::ProtocolViolation("recovered storage holds no game state".into()))?
        .to_vec();
    let (time, lamport) = image.frontier();
    Ok(Recovered {
        store,
        app,
        time,
        lamport,
        records: image.records.len() as u64,
        truncated: image.truncated_bytes,
    })
}

/// Rejoins the group after recovery: installs the rejoin view, drains
/// crash-era residue, pulls the donor's snapshot and restores the clock
/// frontier. Returns the rebuilt runtime.
fn rejoin<E: Endpoint>(
    endpoint: E,
    scenario: &Scenario,
    plan: &MembershipPlan,
    restart: u64,
    recovered: &Recovered,
    obs: &Obs,
) -> Result<SdsoRuntime<E>, DsoError> {
    let me = endpoint.node_id();
    let mut rt = build_churn_runtime(endpoint, scenario, plan, obs.clone())?;
    rt.restore_frontier(LogicalTime::from_ticks(recovered.time), recovered.lamport);
    obs.record(
        rt.now().as_micros(),
        EventKind::WalReplay,
        recovered.records as u32,
        recovered.truncated as u32,
        0,
    );
    let change = plan.change_at(restart).ok_or_else(|| {
        DsoError::ProtocolViolation(format!("restart tick {restart} carries no view change"))
    })?;
    let view = plan.view_at(restart);
    let donor = view.donor_for(change).ok_or_else(|| {
        DsoError::ProtocolViolation("rejoin view change leaves no snapshot donor".into())
    })?;
    rt.set_membership(view);
    rt.drain_crash_residue()?;
    rt.await_snapshot(donor)?;
    obs.record(
        rt.now().as_micros(),
        EventKind::Recover,
        u32::from(me),
        recovered.records as u32,
        rt.membership().epoch().0,
    );
    Ok(rt)
}

/// Restores the recovered game state for the rejoin: the tick counter
/// aligns with the global tick, and the tank falls back to the respawn
/// path if its cell no longer holds it (defensive; the board cannot
/// normally change under a frozen tank).
fn align_recovered_core(
    core: &mut GameCore,
    me: NodeId,
    restart: u64,
    port: &impl BlockPort,
) -> Result<(), DsoError> {
    core.tick = restart;
    if core.tank.alive {
        match port.read_block(core.tank.pos)? {
            Block::Tank { team, .. } if team == me => {}
            _ => core.tank.alive = false,
        }
    }
    Ok(())
}

fn record_recovery(obs: &Obs, records: u64, downtime: SimSpan) {
    obs.registry().counter("dso.recovery.recoveries").add(1);
    obs.registry().counter("dso.recovery.wal_replayed").add(records);
    obs.registry().counter("dso.recovery.downtime_micros").add(downtime.as_micros());
}

fn run_crash_lookahead<E: Endpoint, S: SFunction, F: Fn(NodeId) -> S>(
    endpoint: E,
    scenario: &Scenario,
    faults: &FaultPlan,
    plan: &MembershipPlan,
    make_sfunc: F,
    obs: Obs,
) -> Result<NodeStats, DsoError> {
    let me = endpoint.node_id();
    let crash = faults.crash_of(me).cloned();
    let mut store = DurStore::in_memory();
    let mut compute = SimSpan::ZERO;
    let mut recoveries = 0u64;
    let mut wal_replayed = 0u64;
    let mut recovery_time = SimSpan::ZERO;

    let mut rt = build_churn_runtime(endpoint, scenario, plan, obs.clone())?;
    rt.set_membership(plan.view_at(0));
    log_ident(&mut store, me, rt.membership().epoch())?;
    let mut node = Lookahead::new(rt, make_sfunc(me))?;
    let mut core = GameCore::new(scenario.clone(), me);
    let mut tick = 1u64;

    loop {
        let mut crashed = false;
        while tick <= scenario.ticks {
            let think = think_cost(scenario);
            node.runtime_mut().advance(think);
            compute += think;
            let mods = {
                let mut port = RuntimePort { runtime: node.runtime_mut(), scenario };
                core.run_tick(&mut port)?
            };
            let wc = write_cost(scenario, mods);
            node.runtime_mut().advance(wc);
            compute += wc;

            let change = plan.change_at(tick);
            if change.is_some() {
                // The barrier replaces the tick's regular exchange — the
                // crasher participates so its tick-`C` writes (the frozen
                // tank) converge before it dies.
                node.step_barrier()?;
            } else {
                node.step()?;
            }
            log_tick(&mut store, node.runtime(), &core, tick, &obs)?;

            if crash.as_ref().is_some_and(|c| c.crash_tick == tick) {
                crashed = true;
                break;
            }
            if let Some(change) = change {
                node.apply_view_change(change)?;
                log_ident(&mut store, me, node.runtime().membership().epoch())?;
                if node.runtime().membership().donor_for(change) == Some(me) {
                    for &joiner in &change.joined {
                        node.runtime_mut().send_snapshot(joiner)?;
                    }
                }
            }
            tick += 1;
        }

        if !crashed {
            break;
        }

        // --- fail-stop: volatile state vanishes; the disk bytes and the
        // endpoint (the host) survive ---
        let mut rt = node.into_runtime();
        let down_at = rt.now();
        let Some(restart) = crash.as_ref().and_then(|c| c.restart_tick) else {
            // Crashed for good. Report the stats the process had
            // accumulated (no settling — it died); the endpoint must
            // outlive the survivors' view-change settling, so leak it
            // the way a dead host's address outlives the process.
            let net_live = rt.net_metrics_delta();
            let stats = lookahead_stats(
                &mut rt,
                &core,
                compute,
                scenario,
                net_live,
                recoveries,
                wal_replayed,
                recovery_time,
            );
            std::mem::forget(rt.into_endpoint());
            return Ok(stats);
        };
        let endpoint = rt.into_endpoint();
        let (wal, snap) = store.into_bytes();

        // --- recovery: WAL replay, then the late-joiner path ---
        let recovered = recover_store(wal, snap, me)?;
        wal_replayed += recovered.records;
        recoveries += 1;
        let mut core2 = GameCore::decode(scenario.clone(), me, true, true, &recovered.app)
            .ok_or_else(|| {
                DsoError::ProtocolViolation("recovered game state failed to decode".into())
            })?;
        let mut rt = rejoin(endpoint, scenario, plan, restart, &recovered, &obs)?;
        let downtime = rt.now().saturating_since(down_at);
        recovery_time += downtime;
        record_recovery(&obs, recovered.records, downtime);
        store = recovered.store;
        log_ident(&mut store, me, rt.membership().epoch())?;
        {
            let port = RuntimePort { runtime: &mut rt, scenario };
            align_recovered_core(&mut core2, me, restart, &port)?;
        }
        core = core2;
        node = Lookahead::new(rt, make_sfunc(me))?;
        tick = restart + 1;
    }

    let mut rt = node.into_runtime();
    let net_live = rt.net_metrics_delta();
    // Terminal full synchronisation over the final view (see
    // `driver::run_lookahead`).
    rt.exchange(true, SendMode::Broadcast, &mut Never)?;
    rt.settle()?;
    Ok(lookahead_stats(
        &mut rt,
        &core,
        compute,
        scenario,
        net_live,
        recoveries,
        wal_replayed,
        recovery_time,
    ))
}

fn run_crash_entry<E: Endpoint>(
    endpoint: E,
    scenario: &Scenario,
    faults: &FaultPlan,
    plan: &MembershipPlan,
    obs: Obs,
) -> Result<NodeStats, DsoError> {
    let me = endpoint.node_id();
    let crash = faults.crash_of(me).cloned();
    let mut store = DurStore::in_memory();
    let mut compute = SimSpan::ZERO;
    let mut recoveries = 0u64;
    let mut wal_replayed = 0u64;
    let mut recovery_time = SimSpan::ZERO;

    let mut rt = build_churn_runtime(endpoint, scenario, plan, obs.clone())?;
    rt.set_membership(plan.view_at(0));
    log_ident(&mut store, me, rt.membership().epoch())?;
    let mut ec = EntryConsistency::new(rt);
    let mut core = GameCore::with_arbitration(scenario.clone(), me, false);
    let mut tick = 1u64;

    loop {
        let mut crashed = false;
        while tick <= scenario.ticks {
            ec.service_pending()?;
            let think = think_cost(scenario);
            ec.runtime_mut().advance(think);
            compute += think;

            let lockset = ec_lockset(scenario, core.tank.pos);
            ec.acquire(&lockset)?;
            let mut modified = BTreeSet::new();
            let mods = {
                let mut port = EcPort { ec: &mut ec, scenario, modified: &mut modified };
                core.run_tick(&mut port)?
            };
            let wc = write_cost(scenario, mods);
            ec.runtime_mut().advance(wc);
            compute += wc;
            ec.release_all(&modified)?;

            let change = plan.change_at(tick);
            if change.is_some() {
                // Flush barrier over the old view: the crasher's frozen
                // tank disseminates before the epoch turns.
                ec.view_sync()?;
            }
            log_tick(&mut store, ec.runtime(), &core, tick, &obs)?;

            if crash.as_ref().is_some_and(|c| c.crash_tick == tick) {
                crashed = true;
                break;
            }
            if let Some(change) = change {
                ec.apply_view_change(change)?;
                log_ident(&mut store, me, ec.runtime().membership().epoch())?;
                if ec.runtime().membership().donor_for(change) == Some(me) {
                    for &joiner in &change.joined {
                        ec.runtime_mut().send_snapshot(joiner)?;
                    }
                }
            }
            tick += 1;
        }

        if !crashed {
            break;
        }

        let mut rt = ec.into_runtime();
        let down_at = rt.now();
        let Some(restart) = crash.as_ref().and_then(|c| c.restart_tick) else {
            let net_live = rt.net_metrics_delta();
            let stats = crashed_entry_stats(
                &mut rt,
                &core,
                compute,
                scenario,
                net_live,
                recoveries,
                wal_replayed,
                recovery_time,
            );
            std::mem::forget(rt.into_endpoint());
            return Ok(stats);
        };
        let endpoint = rt.into_endpoint();
        let (wal, snap) = store.into_bytes();

        let recovered = recover_store(wal, snap, me)?;
        wal_replayed += recovered.records;
        recoveries += 1;
        let mut core2 = GameCore::decode(scenario.clone(), me, false, false, &recovered.app)
            .ok_or_else(|| {
                DsoError::ProtocolViolation("recovered game state failed to decode".into())
            })?;
        let rt = rejoin(endpoint, scenario, plan, restart, &recovered, &obs)?;
        let downtime = rt.now().saturating_since(down_at);
        recovery_time += downtime;
        record_recovery(&obs, recovered.records, downtime);
        store = recovered.store;
        let mut next = EntryConsistency::new(rt);
        log_ident(&mut store, me, next.runtime().membership().epoch())?;
        {
            let mut modified = BTreeSet::new();
            let port = EcPort { ec: &mut next, scenario, modified: &mut modified };
            align_recovered_core(&mut core2, me, restart, &port)?;
        }
        core = core2;
        ec = next;
        tick = restart + 1;
    }

    let net_live = ec.runtime_mut().net_metrics_delta();
    ec.finish()?;
    ec.final_sync()?;
    ec.runtime_mut().settle()?;
    Ok(NodeStats {
        node: me,
        ticks: core.tick,
        modifications: core.modifications,
        score: core.score,
        goals: core.goals,
        deaths: core.deaths,
        shots: core.shots,
        bonuses: core.bonuses,
        exec_time: ec.runtime().now().saturating_since(sdso_net::SimInstant::ZERO),
        compute_time: compute,
        net: net_live.merged(&ec.runtime_mut().net_metrics_delta()),
        net_live,
        dso: ec.runtime().metrics(),
        ec: ec.metrics(),
        final_world: snapshot_world(ec.runtime(), scenario),
        recoveries,
        wal_replayed,
        recovery_time,
        ..NodeStats::default()
    })
}

#[allow(clippy::too_many_arguments)]
fn lookahead_stats<E: Endpoint>(
    rt: &mut SdsoRuntime<E>,
    core: &GameCore,
    compute: SimSpan,
    scenario: &Scenario,
    net_live: sdso_net::NetMetricsSnapshot,
    recoveries: u64,
    wal_replayed: u64,
    recovery_time: SimSpan,
) -> NodeStats {
    NodeStats {
        node: rt.node_id(),
        ticks: core.tick,
        modifications: core.modifications,
        score: core.score,
        goals: core.goals,
        deaths: core.deaths,
        shots: core.shots,
        bonuses: core.bonuses,
        exec_time: rt.now().saturating_since(sdso_net::SimInstant::ZERO),
        compute_time: compute,
        net: net_live.merged(&rt.net_metrics_delta()),
        net_live,
        dso: rt.metrics(),
        final_world: snapshot_world(rt, scenario),
        recoveries,
        wal_replayed,
        recovery_time,
        ..NodeStats::default()
    }
}

/// Stats for an EC process that crashed for good: reported off the bare
/// runtime (the lock layer died with the process).
#[allow(clippy::too_many_arguments)]
fn crashed_entry_stats<E: Endpoint>(
    rt: &mut SdsoRuntime<E>,
    core: &GameCore,
    compute: SimSpan,
    scenario: &Scenario,
    net_live: sdso_net::NetMetricsSnapshot,
    recoveries: u64,
    wal_replayed: u64,
    recovery_time: SimSpan,
) -> NodeStats {
    lookahead_stats(rt, core, compute, scenario, net_live, recoveries, wal_replayed, recovery_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdso_net::memory::MemoryHub;

    fn run_all(protocol: Protocol, teams: u16, ticks: u64, faults: &FaultPlan) -> Vec<NodeStats> {
        let scenario = Scenario::paper(teams, 1).with_ticks(ticks);
        let mut handles = Vec::new();
        for ep in MemoryHub::new(usize::from(teams)).into_endpoints() {
            let s = scenario.clone();
            let f = faults.clone();
            handles.push(std::thread::spawn(move || run_crash_node(ep, &s, protocol, &f)));
        }
        handles.into_iter().map(|h| h.join().unwrap().unwrap()).collect()
    }

    #[test]
    fn crash_and_restart_rejoins_with_pre_crash_state() {
        let faults = FaultPlan::new(7).with_crash(2, 4, Some(8));
        let stats = run_all(Protocol::Bsync, 4, 12, &faults);

        assert_eq!(stats[2].recoveries, 1, "one crash/restart cycle");
        assert!(stats[2].wal_replayed > 0, "the WAL replayed something");
        assert_eq!(stats[2].ticks, 12, "the restarted process finishes the game");
        for survivor in [0usize, 1, 3] {
            assert_eq!(stats[survivor].recoveries, 0);
            assert_eq!(stats[survivor].ticks, 12);
        }
        // Every final-view member — the restarted process included —
        // converges to the identical world.
        for other in 1..4 {
            assert_eq!(stats[0].final_world, stats[other].final_world, "node 0 vs node {other}");
        }
    }

    #[test]
    fn entry_crash_restart_converges() {
        let faults = FaultPlan::new(11).with_crash(1, 4, Some(8));
        let stats = run_all(Protocol::Entry, 3, 12, &faults);
        assert_eq!(stats[1].recoveries, 1);
        assert_eq!(stats[1].ticks, 12);
        assert_eq!(stats[0].final_world, stats[1].final_world);
        assert_eq!(stats[0].final_world, stats[2].final_world);
    }

    #[test]
    fn replaying_the_same_fault_plan_is_deterministic() {
        let faults = FaultPlan::new(23).with_crash(1, 3, Some(6)).with_crash(3, 7, None);
        let a = run_all(Protocol::Msync, 4, 10, &faults);
        let b = run_all(Protocol::Msync, 4, 10, &faults);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ticks, y.ticks);
            assert_eq!(x.score, y.score);
            assert_eq!(x.final_world, y.final_world, "node {}", x.node);
        }
        // Live members (3 never came back) converge.
        assert_eq!(a[0].final_world, a[1].final_world);
        assert_eq!(a[0].final_world, a[2].final_world);
        assert_eq!(a[3].ticks, 7, "the unrecovered crasher died at its crash tick");
    }

    #[test]
    fn unrealisable_schedules_and_uncovered_protocols_are_rejected() {
        let scenario = Scenario::paper(4, 1).with_ticks(10);
        let oob = FaultPlan::new(1).with_crash(9, 2, None);
        let ep = MemoryHub::new(4).into_endpoints().remove(0);
        let err = run_crash_node(ep, &scenario, Protocol::Bsync, &oob).unwrap_err();
        assert!(matches!(err, DsoError::ProtocolViolation(_)));

        let plan = FaultPlan::new(1).with_crash(1, 2, None);
        let ep = MemoryHub::new(4).into_endpoints().remove(0);
        let err = run_crash_node(ep, &scenario, Protocol::Lrc, &plan).unwrap_err();
        assert!(matches!(err, DsoError::ProtocolViolation(_)));
    }

    #[test]
    fn game_core_round_trips_through_the_wal_codec() {
        let scenario = Scenario::paper(4, 1).with_ticks(10);
        let mut core = GameCore::new(scenario.clone(), 2);
        core.tick = 17;
        core.score = -3;
        core.goals = 1;
        core.deaths = 2;
        core.shots = 9;
        core.bonuses = 4;
        core.modifications = 55;
        core.tank.hp = 1;
        core.tank.alive = false;
        let bytes = core.encode();
        let back = GameCore::decode(scenario, 2, true, true, &bytes).expect("decodes");
        assert_eq!(back.encode(), bytes, "re-encode is identical");
        assert_eq!(back.tick, 17);
        assert_eq!(back.score, -3);
        assert_eq!(back.tank.hp, 1);
        assert!(!back.tank.alive);
        assert!(GameCore::decode(Scenario::paper(4, 1), 2, true, true, &bytes[..bytes.len() - 1])
            .is_none());
    }
}
