//! Block contents and their fixed-size object encoding.
//!
//! Each grid block is one shared object. The encoded form is a fixed-size
//! byte array so that a block write always produces a whole-object diff —
//! which makes the runtime's per-object last-writer-wins rule exact (see
//! `sdso_core` crate docs). The payload size is configurable: the paper's
//! "effects of different data sizes" future-work experiment (our Ext. A)
//! grows it to model blocks carrying sensor images.

use sdso_net::NodeId;

use crate::world::{Direction, Pos};

/// Minimum encoded size of a block.
pub const MIN_BLOCK_BYTES: usize = 16;

/// A shot event recorded in the shooter's own block: "I fired at `target`
/// on my tick `tick`". Victims apply damage to themselves when they observe
/// a record aimed at the position they occupied (victim-side damage keeps
/// every block single-writer except for move races, which the lowest-ID
/// rule arbitrates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FireRecord {
    /// The block fired at.
    pub target: Pos,
    /// The shooter's iteration count when firing (monotonic per shooter,
    /// used by victims to deduplicate).
    pub tick: u64,
}

/// What a block holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Block {
    /// Nothing.
    #[default]
    Empty,
    /// The goal every team races toward.
    Goal,
    /// A pick-up worth `points`.
    Bonus {
        /// Score value.
        points: u8,
    },
    /// Destroys a tank that drives onto it (consumed in the process).
    Bomb,
    /// Impassable terrain.
    Obstacle,
    /// A team's tank.
    Tank {
        /// Owning team (= process id).
        team: NodeId,
        /// Tank index within the team.
        tank: u8,
        /// Hit points left.
        hp: u8,
        /// Current facing.
        facing: Direction,
        /// Most recent shot, if any.
        fired: Option<FireRecord>,
    },
}

const TAG_EMPTY: u8 = 0;
const TAG_GOAL: u8 = 1;
const TAG_BONUS: u8 = 2;
const TAG_BOMB: u8 = 3;
const TAG_OBSTACLE: u8 = 4;
const TAG_TANK: u8 = 5;

impl Block {
    /// Encodes into exactly `size` bytes (zero-padded).
    ///
    /// # Panics
    ///
    /// Panics if `size < MIN_BLOCK_BYTES`.
    pub fn encode(&self, size: usize) -> Vec<u8> {
        assert!(size >= MIN_BLOCK_BYTES, "block payload too small");
        let mut buf = vec![0u8; size];
        match self {
            Block::Empty => buf[0] = TAG_EMPTY,
            Block::Goal => buf[0] = TAG_GOAL,
            Block::Bonus { points } => {
                buf[0] = TAG_BONUS;
                buf[1] = *points;
            }
            Block::Bomb => buf[0] = TAG_BOMB,
            Block::Obstacle => buf[0] = TAG_OBSTACLE,
            Block::Tank { team, tank, hp, facing, fired } => {
                buf[0] = TAG_TANK;
                buf[1..3].copy_from_slice(&team.to_le_bytes());
                buf[3] = *tank;
                buf[4] = *hp;
                buf[5] = facing.index();
                if let Some(f) = fired {
                    buf[6] = 1;
                    buf[7..9].copy_from_slice(&f.target.x.to_le_bytes());
                    buf[9..11].copy_from_slice(&f.target.y.to_le_bytes());
                    buf[11..15].copy_from_slice(&(f.tick as u32).to_le_bytes());
                }
            }
        }
        buf
    }

    /// Decodes a block from an object payload.
    ///
    /// Returns `None` for malformed contents (which only a corrupted store
    /// could produce).
    pub fn decode(bytes: &[u8]) -> Option<Block> {
        if bytes.len() < MIN_BLOCK_BYTES {
            return None;
        }
        match bytes[0] {
            TAG_EMPTY => Some(Block::Empty),
            TAG_GOAL => Some(Block::Goal),
            TAG_BONUS => Some(Block::Bonus { points: bytes[1] }),
            TAG_BOMB => Some(Block::Bomb),
            TAG_OBSTACLE => Some(Block::Obstacle),
            TAG_TANK => {
                let team = NodeId::from_le_bytes([bytes[1], bytes[2]]);
                let tank = bytes[3];
                let hp = bytes[4];
                let facing = Direction::from_index(bytes[5])?;
                let fired = if bytes[6] == 1 {
                    Some(FireRecord {
                        target: Pos::new(
                            u16::from_le_bytes([bytes[7], bytes[8]]),
                            u16::from_le_bytes([bytes[9], bytes[10]]),
                        ),
                        tick: u64::from(u32::from_le_bytes([
                            bytes[11], bytes[12], bytes[13], bytes[14],
                        ])),
                    })
                } else {
                    None
                };
                Some(Block::Tank { team, tank, hp, facing, fired })
            }
            _ => None,
        }
    }

    /// Whether a tank may drive onto this block.
    pub fn passable(&self) -> bool {
        matches!(self, Block::Empty | Block::Goal | Block::Bonus { .. } | Block::Bomb)
    }

    /// The tank stored here, if any.
    pub fn as_tank(&self) -> Option<(NodeId, u8, u8, Direction, Option<FireRecord>)> {
        match self {
            Block::Tank { team, tank, hp, facing, fired } => {
                Some((*team, *tank, *hp, *facing, *fired))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(block: Block) {
        for size in [MIN_BLOCK_BYTES, 64, 2048] {
            let encoded = block.encode(size);
            assert_eq!(encoded.len(), size);
            assert_eq!(Block::decode(&encoded), Some(block));
        }
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Block::Empty);
        roundtrip(Block::Goal);
        roundtrip(Block::Bonus { points: 25 });
        roundtrip(Block::Bomb);
        roundtrip(Block::Obstacle);
        roundtrip(Block::Tank { team: 7, tank: 2, hp: 3, facing: Direction::East, fired: None });
        roundtrip(Block::Tank {
            team: 300,
            tank: 0,
            hp: 1,
            facing: Direction::North,
            fired: Some(FireRecord { target: Pos::new(31, 23), tick: 12345 }),
        });
    }

    #[test]
    fn passability() {
        assert!(Block::Empty.passable());
        assert!(Block::Goal.passable());
        assert!(Block::Bomb.passable(), "bombs are traps, not walls");
        assert!(!Block::Obstacle.passable());
        assert!(!Block::Tank { team: 0, tank: 0, hp: 1, facing: Direction::North, fired: None }
            .passable());
    }

    #[test]
    fn malformed_input_is_none_not_panic() {
        assert_eq!(Block::decode(&[]), None);
        assert_eq!(Block::decode(&[99; 16]), None);
        let mut bad_facing =
            Block::Tank { team: 0, tank: 0, hp: 1, facing: Direction::North, fired: None }
                .encode(16);
        bad_facing[5] = 77;
        assert_eq!(Block::decode(&bad_facing), None);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_payload_panics() {
        let _ = Block::Empty.encode(4);
    }
}
