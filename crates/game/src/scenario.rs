//! Scenario configuration and deterministic world generation.
//!
//! Every process generates the identical initial world from the shared
//! [`Scenario`] (same seed ⇒ same placement), mirroring the paper's method:
//! "For all cases, we use the same random seed value to place the teams of
//! tanks in the shared environment."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdso_core::{RetryConfig, WireConfig};
use sdso_net::{NodeId, SimSpan};

use crate::block::{Block, MIN_BLOCK_BYTES};
use crate::world::{Grid, Pos};

/// Points for reaching the goal.
pub const GOAL_POINTS: i64 = 50;

/// Full description of one game run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Grid dimensions (the paper: 32×24).
    pub grid: Grid,
    /// Number of teams = number of processes.
    pub teams: u16,
    /// Tanks per team (the paper fixes this to 1).
    pub team_size: u8,
    /// Sensing range: how many blocks a tank sees in each of the four
    /// directions (the paper evaluates 1 and 3).
    pub range: u16,
    /// Firing range (the paper ties it to the sensing range).
    pub fire_range: u16,
    /// Placement seed.
    pub seed: u64,
    /// Iterations each process performs.
    pub ticks: u64,
    /// Encoded size of one block object, in bytes (Ext. A grows this).
    pub block_bytes: usize,
    /// Modelled wire size of every message (the paper: 2048 bytes).
    pub frame_wire_len: Option<u32>,
    /// Whether the slotted buffer merges per-object diffs.
    pub merge_diffs: bool,
    /// Per-link retransmission tuning. `None` (the paper's lossless
    /// testbed) adds zero overhead; chaos runs set it so drops and
    /// reordering are recovered via the resync path.
    pub reliability: Option<RetryConfig>,
    /// Wire-compression tunables. The default ([`WireConfig::v1`])
    /// reproduces the paper's absolute diff encoding byte-for-byte; the
    /// wire-diet bench sweeps [`WireConfig::compressed`] against it.
    pub wire: WireConfig,
    /// Number of bonus pick-ups scattered on the map.
    pub bonuses: usize,
    /// Number of bombs.
    pub bombs: usize,
    /// Number of obstacles.
    pub obstacles: usize,
    /// Hit points per tank.
    pub tank_hp: u8,
    /// Modelled CPU cost of inspecting one block during the look phase.
    pub look_cost: SimSpan,
    /// Modelled CPU cost of the per-tick decision.
    pub decide_cost: SimSpan,
    /// Modelled CPU cost of one block write.
    pub write_cost: SimSpan,
}

impl Scenario {
    /// The paper's evaluation configuration for a given process count and
    /// sensing range: 32×24 grid, one tank per team, 2048-byte frames,
    /// diff merging on, compute costs calibrated to an R4400-class host.
    ///
    /// # Panics
    ///
    /// Panics if `teams < 2` (the game needs at least two processes).
    pub fn paper(teams: u16, range: u16) -> Self {
        assert!(teams >= 2, "the game needs at least two teams");
        Scenario {
            grid: Grid::PAPER,
            teams,
            team_size: 1,
            range,
            fire_range: range,
            seed: 0x5D50_1997,
            ticks: 200,
            block_bytes: 64,
            frame_wire_len: Some(2048),
            merge_diffs: true,
            reliability: None,
            wire: WireConfig::v1(),
            bonuses: 20,
            bombs: 10,
            obstacles: 24,
            tank_hp: 2,
            look_cost: SimSpan::from_micros(15),
            decide_cost: SimSpan::from_micros(150),
            write_cost: SimSpan::from_micros(25),
        }
    }

    /// A scaled-up variant of the paper configuration for large clusters
    /// (64, 256+ teams): the grid grows by the smallest integer factor
    /// `k` that keeps the border perimeter at least twice the team count
    /// (so spawn points stay distinct with room between them), and item
    /// counts grow with the area (`k²`) to keep the map density
    /// comparable. Frames are modelled at payload size
    /// (`frame_wire_len: None`) — the paper's fixed 2048-byte frames
    /// would mask exactly the per-message savings interest routing is
    /// about.
    ///
    /// With `teams <= 54` this is the paper grid; 64 teams get 64×48,
    /// 256 teams get 160×120.
    ///
    /// # Panics
    ///
    /// Panics if `teams < 2`.
    pub fn scaled(teams: u16, range: u16) -> Self {
        let mut scenario = Scenario::paper(teams, range);
        let base = Grid::PAPER;
        let mut k = 1u32;
        while 2 * (u32::from(base.width) * k + u32::from(base.height) * k - 2)
            < 2 * u32::from(teams)
        {
            k += 1;
        }
        scenario.grid = Grid { width: base.width * k as u16, height: base.height * k as u16 };
        let area = (k * k) as usize;
        scenario.bonuses *= area;
        scenario.bombs *= area;
        scenario.obstacles *= area;
        scenario.frame_wire_len = None;
        scenario
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different tick count.
    pub fn with_ticks(mut self, ticks: u64) -> Self {
        self.ticks = ticks;
        self
    }

    /// Returns a copy with the reliability layer switched on.
    pub fn with_reliability(mut self, cfg: RetryConfig) -> Self {
        self.reliability = Some(cfg);
        self
    }

    /// Returns a copy with different wire-compression settings.
    pub fn with_wire(mut self, wire: WireConfig) -> Self {
        self.wire = wire;
        self
    }

    /// Returns a copy with a different block payload size.
    ///
    /// # Panics
    ///
    /// Panics if `bytes < MIN_BLOCK_BYTES`.
    pub fn with_block_bytes(mut self, bytes: usize) -> Self {
        assert!(bytes >= MIN_BLOCK_BYTES, "block payload too small");
        self.block_bytes = bytes;
        self
    }

    /// The goal position (grid centre).
    pub fn goal(&self) -> Pos {
        self.grid.center()
    }

    /// Team `team`'s fixed start position: teams are spread evenly along
    /// the border perimeter. Starts are permanent spawn points — world
    /// generation keeps them clear, and tanks never drive onto a foreign
    /// start — so respawns are always well-defined.
    ///
    /// # Panics
    ///
    /// Panics if `team >= self.teams`.
    pub fn start_of(&self, team: NodeId) -> Pos {
        assert!(team < self.teams, "team out of range");
        let w = u32::from(self.grid.width);
        let h = u32::from(self.grid.height);
        let perimeter = 2 * (w + h - 2);
        let offset = u64::from(team) * u64::from(perimeter) / u64::from(self.teams);
        perimeter_pos(self.grid, offset as u32)
    }

    /// Every team's start, indexed by team id.
    pub fn starts(&self) -> Vec<Pos> {
        (0..self.teams).map(|t| self.start_of(t)).collect()
    }

    /// Generates the initial world, identical on every process: goal at the
    /// centre, one tank per team at its start, and seed-placed bonuses,
    /// bombs and obstacles on free cells away from starts and goal.
    pub fn initial_world(&self) -> Vec<Block> {
        let mut world = vec![Block::Empty; self.grid.cells() as usize];
        let set = |world: &mut Vec<Block>, pos: Pos, block: Block| {
            world[self.grid.object_at(pos).0 as usize] = block;
        };

        set(&mut world, self.goal(), Block::Goal);
        let starts = self.starts();
        for (team, &start) in starts.iter().enumerate() {
            set(
                &mut world,
                start,
                Block::Tank {
                    team: team as NodeId,
                    tank: 0,
                    hp: self.tank_hp,
                    facing: crate::world::Direction::North,
                    fired: None,
                },
            );
        }

        // Keep a safety margin around spawn points and the goal.
        let reserved = |pos: Pos| {
            pos.manhattan(self.goal()) <= 2 || starts.iter().any(|&s| pos.manhattan(s) <= 2)
        };

        let mut rng = StdRng::seed_from_u64(self.seed);
        let place = |world: &mut Vec<Block>, rng: &mut StdRng, block: Block| {
            for _ in 0..10_000 {
                let pos =
                    Pos::new(rng.gen_range(0..self.grid.width), rng.gen_range(0..self.grid.height));
                let idx = self.grid.object_at(pos).0 as usize;
                if world[idx] == Block::Empty && !reserved(pos) {
                    world[idx] = block;
                    return;
                }
            }
            // The grid is essentially full; skip the item.
        };
        for _ in 0..self.obstacles {
            place(&mut world, &mut rng, Block::Obstacle);
        }
        for _ in 0..self.bombs {
            place(&mut world, &mut rng, Block::Bomb);
        }
        for _ in 0..self.bonuses {
            let points = rng.gen_range(5..=25);
            place(&mut world, &mut rng, Block::Bonus { points });
        }
        world
    }

    /// Team `team`'s patrol waypoint: its start reflected through the goal,
    /// clamped to the grid interior. After scoring, a tank first patrols
    /// here before heading back to the goal — this disperses play across
    /// the map the way the paper's run-until-goal games do, instead of
    /// permanently clustering every tank at the centre.
    ///
    /// # Panics
    ///
    /// Panics if `team >= self.teams`.
    pub fn patrol_of(&self, team: NodeId) -> Pos {
        let start = self.start_of(team);
        let goal = self.goal();
        let reflect = |s: u16, g: u16, max: u16| -> u16 {
            let r = 2 * i32::from(g) - i32::from(s);
            r.clamp(1, i32::from(max) - 2) as u16
        };
        Pos::new(
            reflect(start.x, goal.x, self.grid.width),
            reflect(start.y, goal.y, self.grid.height),
        )
    }

    /// The spatial-relevance radius `d`: a peer can affect this process's
    /// next operation when aligned and within `d` blocks — the larger of
    /// the sensing/fire range and the 2-block move-contention margin.
    pub fn relevance_distance(&self) -> u32 {
        u32::from(self.range.max(self.fire_range)).max(2)
    }
}

/// The border cell at clockwise perimeter offset `off` (0 = top-left).
fn perimeter_pos(grid: Grid, off: u32) -> Pos {
    let w = u32::from(grid.width);
    let h = u32::from(grid.height);
    let off = off % (2 * (w + h - 2));
    if off < w {
        Pos::new(off as u16, 0)
    } else if off < w + h - 1 {
        Pos::new((w - 1) as u16, (off - w + 1) as u16)
    } else if off < 2 * w + h - 2 {
        Pos::new((2 * w + h - 3 - off) as u16, (h - 1) as u16)
    } else {
        Pos::new(0, (2 * (w + h - 2) - off) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perimeter_walks_the_border() {
        let g = Grid { width: 4, height: 3 };
        // Perimeter length = 2*(4+3-2) = 10.
        let walk: Vec<Pos> = (0..10).map(|o| perimeter_pos(g, o)).collect();
        assert_eq!(walk[0], Pos::new(0, 0));
        assert_eq!(walk[3], Pos::new(3, 0));
        assert_eq!(walk[4], Pos::new(3, 1));
        assert_eq!(walk[5], Pos::new(3, 2));
        assert_eq!(walk[6], Pos::new(2, 2));
        assert_eq!(walk[8], Pos::new(0, 2));
        assert_eq!(walk[9], Pos::new(0, 1));
        // All distinct, all on the border.
        let mut unique = walk.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 10);
    }

    #[test]
    fn starts_are_distinct_and_on_border() {
        let s = Scenario::paper(16, 1);
        let starts = s.starts();
        let mut unique = starts.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 16);
        for p in starts {
            assert!(
                p.x == 0 || p.y == 0 || p.x == s.grid.width - 1 || p.y == s.grid.height - 1,
                "{p:?} not on border"
            );
        }
    }

    #[test]
    fn world_generation_is_deterministic() {
        let s = Scenario::paper(4, 3);
        assert_eq!(s.initial_world(), s.initial_world());
        let other = s.clone().with_seed(7).initial_world();
        assert_ne!(s.initial_world(), other, "different seed, different map");
    }

    #[test]
    fn world_has_goal_tanks_and_items() {
        let s = Scenario::paper(4, 1);
        let world = s.initial_world();
        let goal_idx = s.grid.object_at(s.goal()).0 as usize;
        assert_eq!(world[goal_idx], Block::Goal);
        let tanks = world.iter().filter(|b| matches!(b, Block::Tank { .. })).count();
        assert_eq!(tanks, 4);
        let bonuses = world.iter().filter(|b| matches!(b, Block::Bonus { .. })).count();
        assert_eq!(bonuses, s.bonuses);
        let bombs = world.iter().filter(|b| matches!(b, Block::Bomb)).count();
        assert_eq!(bombs, s.bombs);
    }

    #[test]
    fn items_keep_clear_of_starts_and_goal() {
        let s = Scenario::paper(8, 1);
        let world = s.initial_world();
        let starts = s.starts();
        for pos in s.grid.iter() {
            let block = world[s.grid.object_at(pos).0 as usize];
            if matches!(block, Block::Obstacle | Block::Bomb | Block::Bonus { .. }) {
                assert!(pos.manhattan(s.goal()) > 2);
                assert!(starts.iter().all(|&st| pos.manhattan(st) > 2));
            }
        }
    }

    #[test]
    fn relevance_distance_has_contention_floor() {
        assert_eq!(Scenario::paper(2, 1).relevance_distance(), 2);
        assert_eq!(Scenario::paper(2, 3).relevance_distance(), 3);
    }

    #[test]
    fn tanks_start_at_their_start_positions() {
        let s = Scenario::paper(4, 1);
        let world = s.initial_world();
        for team in 0..4u16 {
            let start = s.start_of(team);
            match world[s.grid.object_at(start).0 as usize] {
                Block::Tank { team: t, hp, .. } => {
                    assert_eq!(t, team);
                    assert_eq!(hp, s.tank_hp);
                }
                other => panic!("expected team {team} tank at {start:?}, found {other:?}"),
            }
        }
    }
}
