//! The distributed multi-player tank game — the S-DSO paper's evaluation
//! application.
//!
//! "The objective of this game is much like Capture the Flag. A player must
//! maneuver her team of tanks to some known goal as quickly as possible,
//! while picking up bonus items and avoiding bombs and enemy tanks along
//! the way" (paper §2.1). The shared environment is a 32×24 grid of blocks,
//! each block one S-DSO object; each process runs one team.
//!
//! The game exhibits all four properties the paper targets: poor and
//! unpredictable locality (tanks roam the grid), symmetric data access
//! (every process reads and writes), dynamically changing sharing (which
//! blocks matter depends on where the tanks are), and potential data races
//! (two tanks may try to enter one block; the lowest-ID-blocks rule
//! arbitrates).
//!
//! # Structure
//!
//! * [`world`] — grid geometry, positions, directions;
//! * [`block`] — block contents and their object encoding;
//! * [`scenario`] — run configuration and deterministic world generation;
//! * [`ai`] — the per-tank decision function;
//! * [`sfuncs`] — the MSYNC/MSYNC2 semantic functions (BSYNC reuses
//!   [`sdso_core::EveryTick`]);
//! * [`shard`] — the region-sharded MSYNC2-SHARD s-function and interest
//!   router (the 64/256-node scaling extension over `sdso-shard`);
//! * [`driver`] — per-protocol node runners producing [`NodeStats`];
//! * [`churn`] — the same runners under a membership plan (players leave
//!   and join mid-game through epoch-numbered view changes);
//! * [`crash`] — the same runners under a [`sdso_net::FaultPlan`] crash
//!   schedule: processes fail-stop mid-game and recover from their WAL
//!   (`sdso-dur`), rejoining with pre-crash identity and state;
//! * [`mod@render`] — ASCII display of (possibly stale) world replicas.
//!
//! # Example
//!
//! Running a two-process BSYNC game over in-process channels:
//!
//! ```
//! use sdso_game::{run_node, Protocol, Scenario};
//! use sdso_net::memory::MemoryHub;
//!
//! # fn main() -> Result<(), sdso_core::DsoError> {
//! let scenario = Scenario::paper(2, 1).with_ticks(10);
//! let mut handles = Vec::new();
//! for ep in MemoryHub::new(2).into_endpoints() {
//!     let s = scenario.clone();
//!     handles.push(std::thread::spawn(move || run_node(ep, &s, Protocol::Bsync)));
//! }
//! for h in handles {
//!     let stats = h.join().unwrap()?;
//!     assert_eq!(stats.ticks, 10);
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ai;
pub mod block;
pub mod churn;
pub mod crash;
pub mod driver;
pub mod render;
pub mod scenario;
pub mod sfuncs;
pub mod shard;
pub mod world;

pub use ai::{decide, Action, WorldView};
pub use block::{Block, FireRecord};
pub use churn::{run_churn_node, run_churn_node_obs};
pub use crash::{run_crash_node, run_crash_node_obs};
pub use driver::{
    ec_lockset, run_node, run_node_obs, BlockPort, GameCore, NodeStats, Protocol, TankState,
};
pub use render::{render, scoreboard, RenderOptions};
pub use scenario::{Scenario, GOAL_POINTS};
pub use sfuncs::{team_positions, Msync, Msync2};
pub use shard::{interest_radius, shard_lattice, ShardMsync2, ShardRouter, GROUP_EVERY};
pub use world::{Direction, Grid, Pos};
