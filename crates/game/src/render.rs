//! ASCII rendering of the shared world — the reproduction's stand-in for
//! the original system's interactive display (paper Fig. 1 shows the X11
//! front end; ours is a terminal grid).
//!
//! Rendering reads a replica through any [`WorldView`], so it can display
//! one process's possibly-stale local view — which is itself instructive:
//! under MSYNC2 a process's picture of remote map regions visibly lags
//! until tanks come within interaction range.

use sdso_net::NodeId;

use crate::ai::WorldView;
use crate::block::Block;
use crate::scenario::Scenario;
use crate::world::{Direction, Pos};

/// Glyphs used by [`render`]:
///
/// | glyph | meaning |
/// |---|---|
/// | `.` | empty block |
/// | `G` | the goal |
/// | `$` | bonus |
/// | `*` | bomb |
/// | `#` | obstacle |
/// | `0`–`9`, `a`–`f` | a team's tank (team id, base 36) |
/// | `^ v > <` | the facing marker variant when `facing_markers` is on |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderOptions {
    /// Draw tanks as facing arrows instead of team digits.
    pub facing_markers: bool,
    /// Draw a border around the grid.
    pub border: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions { facing_markers: false, border: true }
    }
}

/// The glyph for one block.
pub fn glyph(block: Block, options: RenderOptions) -> char {
    match block {
        Block::Empty => '.',
        Block::Goal => 'G',
        Block::Bonus { .. } => '$',
        Block::Bomb => '*',
        Block::Obstacle => '#',
        Block::Tank { team, facing, .. } => {
            if options.facing_markers {
                match facing {
                    Direction::North => '^',
                    Direction::South => 'v',
                    Direction::East => '>',
                    Direction::West => '<',
                }
            } else {
                char::from_digit(u32::from(team) % 36, 36).unwrap_or('?')
            }
        }
    }
}

/// Renders a replica of the world as a multi-line string.
pub fn render(scenario: &Scenario, view: &impl WorldView, options: RenderOptions) -> String {
    let grid = scenario.grid;
    let mut out = String::with_capacity((grid.width as usize + 3) * (grid.height as usize + 2));
    if options.border {
        out.push('+');
        out.extend(std::iter::repeat_n('-', grid.width as usize));
        out.push_str("+\n");
    }
    for y in 0..grid.height {
        if options.border {
            out.push('|');
        }
        for x in 0..grid.width {
            out.push(glyph(view.block_at(Pos::new(x, y)), options));
        }
        if options.border {
            out.push('|');
        }
        out.push('\n');
    }
    if options.border {
        out.push('+');
        out.extend(std::iter::repeat_n('-', grid.width as usize));
        out.push_str("+\n");
    }
    out
}

/// A one-line scoreboard for the teams present in `view`.
pub fn scoreboard(scenario: &Scenario, view: &impl WorldView) -> String {
    let mut entries: Vec<String> = Vec::new();
    for team in 0..scenario.teams {
        let pos = find_team(scenario, view, team);
        match pos {
            Some((p, hp)) => entries.push(format!("T{team}@({},{})hp{hp}", p.x, p.y)),
            None => entries.push(format!("T{team}:down")),
        }
    }
    entries.join("  ")
}

fn find_team(scenario: &Scenario, view: &impl WorldView, team: NodeId) -> Option<(Pos, u8)> {
    scenario.grid.iter().find_map(|pos| match view.block_at(pos) {
        Block::Tank { team: t, hp, .. } if t == team => Some((pos, hp)),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn view_of(map: BTreeMap<Pos, Block>) -> impl WorldView {
        move |pos: Pos| map.get(&pos).copied().unwrap_or(Block::Empty)
    }

    fn tiny_scenario() -> Scenario {
        let mut s = Scenario::paper(2, 1);
        s.grid = crate::world::Grid { width: 4, height: 3 };
        s
    }

    #[test]
    fn renders_expected_dimensions() {
        let s = tiny_scenario();
        let text = render(&s, &view_of(BTreeMap::new()), RenderOptions::default());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3 + 2, "rows plus border");
        assert!(lines.iter().all(|l| l.len() == 4 + 2), "cols plus border");
    }

    #[test]
    fn glyphs_cover_every_block_kind() {
        let opts = RenderOptions::default();
        assert_eq!(glyph(Block::Empty, opts), '.');
        assert_eq!(glyph(Block::Goal, opts), 'G');
        assert_eq!(glyph(Block::Bonus { points: 5 }, opts), '$');
        assert_eq!(glyph(Block::Bomb, opts), '*');
        assert_eq!(glyph(Block::Obstacle, opts), '#');
        let tank = Block::Tank { team: 11, tank: 0, hp: 2, facing: Direction::West, fired: None };
        assert_eq!(glyph(tank, opts), 'b', "team 11 renders base-36");
        let arrows = RenderOptions { facing_markers: true, border: false };
        assert_eq!(glyph(tank, arrows), '<');
    }

    #[test]
    fn render_places_blocks_at_their_positions() {
        let s = tiny_scenario();
        let map =
            BTreeMap::from([(Pos::new(1, 0), Block::Goal), (Pos::new(2, 2), Block::Obstacle)]);
        let text =
            render(&s, &view_of(map), RenderOptions { facing_markers: false, border: false });
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(&lines[0][1..2], "G");
        assert_eq!(&lines[2][2..3], "#");
    }

    #[test]
    fn scoreboard_reports_presence_and_absence() {
        let s = tiny_scenario();
        let map = BTreeMap::from([(
            Pos::new(3, 1),
            Block::Tank { team: 0, tank: 0, hp: 2, facing: Direction::North, fired: None },
        )]);
        let board = scoreboard(&s, &view_of(map));
        assert!(board.contains("T0@(3,1)hp2"));
        assert!(board.contains("T1:down"));
    }

    #[test]
    fn initial_world_renders_without_panics() {
        let s = Scenario::paper(4, 1);
        let world = s.initial_world();
        let view = move |pos: Pos| world[s.grid.object_at(pos).0 as usize];
        let text = render(&Scenario::paper(4, 1), &view, RenderOptions::default());
        assert!(text.contains('G'));
        assert!(text.matches(|c: char| c.is_ascii_digit()).count() >= 4);
    }
}
