//! The game's semantic functions: BSYNC, MSYNC and MSYNC2 attributes.
//!
//! * **BSYNC** reuses [`sdso_core::EveryTick`]: every process re-exchanges
//!   with every other after each modification — a purely *temporal*
//!   worst-case.
//! * **MSYNC** "computes the logical exchange times with each process by
//!   halving the distance between the nearest tanks in any two teams",
//!   assuming worst-case mutual approach, and treats "any enemy tank in the
//!   same row or column […] as potentially affecting a local tank's next
//!   operation" — so it exchanges every tick once row/column alignment is
//!   possible within a tick.
//! * **MSYNC2** "refines this assumption by only exchanging […] with those
//!   processes whose tanks could have moved into the same row or column as
//!   a local tank, and the distance to those enemy tanks is less than d
//!   blocks" — alignment *and* proximity.
//!
//! # Symmetry
//!
//! A rendezvous schedule only works if both endpoints compute identical
//! times (see [`sdso_core::SFunction`]'s contract). These s-functions
//! derive the pair's schedule exclusively from (a) the two teams' tank
//! positions as recorded in the exchanged blocks — identical on both sides
//! immediately after a rendezvous — and (b) the static spawn points. Spawn
//! points participate as *ghost positions*: a destroyed or goal-scoring
//! tank teleports to its spawn, which worst-case movement from its last
//! known position cannot predict, so the pair must bound the interaction
//! time over the spawn positions too.

use sdso_core::{LogicalTime, ObjectStore, SFunction};
use sdso_net::NodeId;

use crate::block::Block;
use crate::scenario::Scenario;
use crate::world::Pos;

/// Extracts `team`'s tank positions from a replica of the world.
pub fn team_positions(store: &ObjectStore, scenario: &Scenario, team: NodeId) -> Vec<Pos> {
    let grid = scenario.grid;
    store
        .iter()
        .filter_map(|(id, replica)| {
            let block = Block::decode(replica.data())?;
            match block {
                Block::Tank { team: t, .. } if t == team => Some(grid.pos_of(id)),
                _ => None,
            }
        })
        .collect()
}

/// The candidate positions of `team` for lookahead purposes: its visible
/// tanks plus its spawn point (the ghost position respawns teleport to).
fn candidate_positions(store: &ObjectStore, scenario: &Scenario, team: NodeId) -> Vec<Pos> {
    let mut positions = team_positions(store, scenario, team);
    positions.push(scenario.start_of(team));
    positions
}

/// Ticks until *any* cross-team tank pair could reach row/column alignment
/// (the MSYNC trigger), minimised over pairs and ghost positions.
fn ticks_to_any_alignment(store: &ObjectStore, scenario: &Scenario, a: NodeId, b: NodeId) -> u64 {
    let ours = candidate_positions(store, scenario, a);
    let theirs = candidate_positions(store, scenario, b);
    ours.iter()
        .flat_map(|&m| theirs.iter().map(move |&t| m.ticks_to_alignment(t)))
        .min()
        .unwrap_or(u64::MAX)
}

/// Ticks until any cross-team pair could be aligned **and** within `d`
/// blocks (the MSYNC2 trigger).
fn ticks_to_any_interaction(
    store: &ObjectStore,
    scenario: &Scenario,
    a: NodeId,
    b: NodeId,
    d: u32,
) -> u64 {
    let ours = candidate_positions(store, scenario, a);
    let theirs = candidate_positions(store, scenario, b);
    ours.iter()
        .flat_map(|&m| {
            theirs.iter().map(move |&t| m.ticks_to_alignment(t).max(m.ticks_to_within(t, d)))
        })
        .min()
        .unwrap_or(u64::MAX)
}

/// The MSYNC s-function.
#[derive(Debug, Clone)]
pub struct Msync {
    me: NodeId,
    scenario: Scenario,
}

impl Msync {
    /// Creates the s-function for process `me`.
    pub fn new(me: NodeId, scenario: Scenario) -> Self {
        Msync { me, scenario }
    }
}

impl SFunction for Msync {
    fn next_exchange(
        &mut self,
        peer: NodeId,
        now: LogicalTime,
        view: &ObjectStore,
    ) -> Option<LogicalTime> {
        let delta = ticks_to_any_alignment(view, &self.scenario, self.me, peer);
        Some(now.plus(delta.max(1)))
    }
}

/// The MSYNC2 s-function.
#[derive(Debug, Clone)]
pub struct Msync2 {
    me: NodeId,
    scenario: Scenario,
    d: u32,
}

impl Msync2 {
    /// Creates the s-function for process `me`, with the scenario's
    /// relevance distance as `d`.
    pub fn new(me: NodeId, scenario: Scenario) -> Self {
        let d = scenario.relevance_distance();
        Msync2 { me, scenario, d }
    }
}

impl SFunction for Msync2 {
    fn next_exchange(
        &mut self,
        peer: NodeId,
        now: LogicalTime,
        view: &ObjectStore,
    ) -> Option<LogicalTime> {
        let delta = ticks_to_any_interaction(view, &self.scenario, self.me, peer, self.d);
        Some(now.plus(delta.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a store holding a world with the given tank placements.
    fn store_with_tanks(scenario: &Scenario, tanks: &[(NodeId, Pos)]) -> ObjectStore {
        let mut store = ObjectStore::new();
        let grid = scenario.grid;
        for pos in grid.iter() {
            let block = tanks
                .iter()
                .find(|&&(_, p)| p == pos)
                .map(|&(team, _)| Block::Tank {
                    team,
                    tank: 0,
                    hp: 2,
                    facing: crate::world::Direction::North,
                    fired: None,
                })
                .unwrap_or(Block::Empty);
            store.share(grid.object_at(pos), block.encode(scenario.block_bytes)).unwrap();
        }
        store
    }

    fn scenario() -> Scenario {
        // Starts in the corners-ish; two teams.
        Scenario::paper(2, 1)
    }

    #[test]
    fn team_positions_finds_tanks() {
        let s = scenario();
        let store = store_with_tanks(&s, &[(0, Pos::new(3, 3)), (1, Pos::new(20, 10))]);
        assert_eq!(team_positions(&store, &s, 0), vec![Pos::new(3, 3)]);
        assert_eq!(team_positions(&store, &s, 1), vec![Pos::new(20, 10)]);
        assert!(team_positions(&store, &s, 5).is_empty());
    }

    #[test]
    fn msync_schedules_every_tick_when_aligned() {
        let s = scenario();
        // Same row — and make the spawn ghosts irrelevant by distance.
        let store = store_with_tanks(&s, &[(0, Pos::new(3, 10)), (1, Pos::new(25, 10))]);
        let mut f = Msync::new(0, s);
        let next = f.next_exchange(1, LogicalTime::from_ticks(5), &store).unwrap();
        assert_eq!(next, LogicalTime::from_ticks(6), "aligned → every tick");
    }

    #[test]
    fn msync_halves_the_axis_gap() {
        let s = scenario();
        // Rows differ by 8; columns far apart. Spawn ghosts may tighten the
        // bound, so compare against the full candidate-set computation.
        let store = store_with_tanks(&s, &[(0, Pos::new(3, 2)), (1, Pos::new(25, 10))]);
        let expected = ticks_to_any_alignment(&store, &s, 0, 1).max(1);
        let mut f = Msync::new(0, s);
        let next = f.next_exchange(1, LogicalTime::from_ticks(0), &store).unwrap();
        assert_eq!(next.as_ticks(), expected);
        // The pure pair term (without ghosts) is ceil(8/2) = 4, and ghosts
        // can only shorten it.
        assert!(expected <= 4);
        assert!(expected >= 1);
    }

    #[test]
    fn msync2_waits_longer_than_msync() {
        let s = Scenario::paper(2, 1);
        // Aligned but far apart: MSYNC fires every tick, MSYNC2 waits for
        // proximity.
        let store = store_with_tanks(&s, &[(0, Pos::new(2, 12)), (1, Pos::new(28, 12))]);
        let now = LogicalTime::from_ticks(0);
        let m1 = Msync::new(0, s.clone()).next_exchange(1, now, &store).unwrap();
        let m2 = Msync2::new(0, s).next_exchange(1, now, &store).unwrap();
        assert!(m2 >= m1, "MSYNC2 ({m2}) must not exchange more often than MSYNC ({m1})");
        assert_eq!(m1.as_ticks(), 1, "aligned → MSYNC every tick");
        assert!(m2.as_ticks() > 1, "far apart → MSYNC2 waits: {m2}");
    }

    #[test]
    fn schedules_are_symmetric() {
        // The load-bearing property: both endpoints compute the same time.
        let s = Scenario::paper(2, 3);
        for (pa, pb) in [
            (Pos::new(3, 3), Pos::new(20, 15)),
            (Pos::new(10, 10), Pos::new(10, 20)),
            (Pos::new(1, 1), Pos::new(2, 2)),
            (Pos::new(31, 0), Pos::new(0, 23)),
        ] {
            let store = store_with_tanks(&s, &[(0, pa), (1, pb)]);
            let now = LogicalTime::from_ticks(9);
            let a = Msync::new(0, s.clone()).next_exchange(1, now, &store);
            let b = Msync::new(1, s.clone()).next_exchange(0, now, &store);
            assert_eq!(a, b, "MSYNC asymmetric for {pa:?}/{pb:?}");
            let a2 = Msync2::new(0, s.clone()).next_exchange(1, now, &store);
            let b2 = Msync2::new(1, s.clone()).next_exchange(0, now, &store);
            assert_eq!(a2, b2, "MSYNC2 asymmetric for {pa:?}/{pb:?}");
        }
    }

    #[test]
    fn spawn_ghosts_bound_the_schedule() {
        let s = Scenario::paper(2, 1);
        // Both tanks sit right next to team 1's spawn while team 0's tank
        // is far from team 1's tank? Construct: team 1's tank far away, but
        // team 0's tank adjacent to team 1's spawn — a respawn would put
        // them in contact instantly, so the schedule must stay tight.
        let spawn1 = s.start_of(1);
        let near_spawn = Pos::new(spawn1.x, spawn1.y.saturating_sub(2));
        let far = Pos::new(
            (spawn1.x + s.grid.width / 2) % s.grid.width,
            (spawn1.y + s.grid.height / 2) % s.grid.height,
        );
        let store = store_with_tanks(&s, &[(0, near_spawn), (1, far)]);
        let mut f = Msync2::new(0, s);
        let next = f.next_exchange(1, LogicalTime::from_ticks(0), &store).unwrap();
        assert!(next.as_ticks() <= 2, "spawn ghost must keep the schedule tight, got {next}");
    }
}
