//! Churn-aware node runners: the tank game under a [`MembershipPlan`].
//!
//! The static runners ([`crate::driver::run_node`]) assume the paper's
//! fixed process group. The runners here execute the same game loop while
//! players leave and join at planned trigger ticks, transitioning between
//! membership epochs through a view-change barrier.
//!
//! # The view-change barrier
//!
//! A change triggered at tick `T` proceeds in lock-step:
//!
//! 1. every old-view member runs its tick-`T` iteration — a leaver's
//!    iteration is [`GameCore::retire`], clearing its tank off the board;
//! 2. every old-view member performs one full barrier exchange: under the
//!    lookahead family a broadcast rendezvous
//!    ([`sdso_protocols::Lookahead::step_barrier`]), under EC a state-flush
//!    barrier ([`sdso_protocols::EntryConsistency::view_sync`]). All
//!    tick-`T` writes, including the leaver's tombstone, converge across
//!    the old view;
//! 3. leavers settle their reliability tails and exit with their stats —
//!    their pending per-peer diff slots are compacted by the view change,
//!    not leaked;
//! 4. continuers apply the view change (epoch bump; leavers pruned from
//!    exchange list, slotted buffer, reliability links and transport;
//!    joiners scheduled);
//! 5. the donor — the lowest continuing member — pushes one O(objects)
//!    state snapshot to each joiner;
//! 6. joiners install the snapshot (replica bodies plus the logical-clock
//!    frontier) and enter the loop at tick `T + 1`; their tank
//!    materialises on its spawn through the regular respawn path, so no
//!    peer can contend with it before seeing it.
//!
//! Epoch stamps keep the transition safe under skew: rendezvous traffic
//! from a peer that already crossed the barrier is buffered until this
//! process catches up, residue from a departed peer is acknowledged and
//! dropped, and EC lock traffic from beyond the barrier is deferred until
//! the lock state it must land on exists.
//!
//! Tick numbering is global: a joiner's [`GameCore`] starts at the trigger
//! tick, so cross-team fire-record freshness windows stay comparable and
//! [`NodeStats::ticks`] reports the global tick a process reached (a
//! leaver reports its trigger tick).

use std::collections::BTreeSet;

use sdso_core::{
    DsoConfig, DsoError, EveryTick, MembershipPlan, Never, ObjectId, Obs, SFunction, SdsoRuntime,
    SendMode,
};
use sdso_net::{Endpoint, NodeId, SimSpan};
use sdso_protocols::{EntryConsistency, LockRequest, Lookahead};

use crate::block::Block;
use crate::driver::{
    ec_lockset, snapshot_world, think_cost, write_cost, EcPort, GameCore, NodeStats, Protocol,
    RuntimePort,
};
use crate::scenario::Scenario;

/// Runs one process of the game under `protocol` and the membership plan.
///
/// Every capacity slot runs this function (the transport is provisioned at
/// `plan.capacity()` endpoints): initial members play from tick 1; a
/// planned joiner blocks until its donor's snapshot arrives, then plays
/// from its join tick; a planned leaver exits at its trigger tick with the
/// stats it accumulated. Supported protocols are the paper's four
/// (BSYNC/MSYNC/MSYNC2/EC); LRC and causal memory have no membership
/// barrier and are rejected.
///
/// # Errors
///
/// Propagates transport, store and protocol errors, and rejects plans or
/// protocols the churn machinery does not cover.
///
/// # Panics
///
/// Panics if the plan's capacity differs from `scenario.teams` or a
/// trigger tick falls outside `1..scenario.ticks`.
pub fn run_churn_node<E: Endpoint>(
    endpoint: E,
    scenario: &Scenario,
    protocol: Protocol,
    plan: &MembershipPlan,
) -> Result<NodeStats, DsoError> {
    run_churn_node_obs(endpoint, scenario, protocol, plan, Obs::disabled())
}

/// Like [`run_churn_node`], but records into the given observability
/// bundle (view changes, snapshot transfers and peer events land in its
/// flight recorder alongside the usual exchange and lock events).
///
/// # Errors
///
/// Propagates transport, store and protocol errors, and rejects plans or
/// protocols the churn machinery does not cover.
///
/// # Panics
///
/// Panics if the plan's capacity differs from `scenario.teams` or a
/// trigger tick falls outside `1..scenario.ticks`.
pub fn run_churn_node_obs<E: Endpoint>(
    endpoint: E,
    scenario: &Scenario,
    protocol: Protocol,
    plan: &MembershipPlan,
    obs: Obs,
) -> Result<NodeStats, DsoError> {
    assert_eq!(
        plan.capacity(),
        usize::from(scenario.teams),
        "one team per membership capacity slot"
    );
    for &(t, _) in plan.changes() {
        assert!(
            t >= 1 && t < scenario.ticks,
            "view-change trigger {t} must fall inside the run (1..{})",
            scenario.ticks
        );
    }
    match protocol {
        Protocol::Bsync => run_churn_lookahead(endpoint, scenario, plan, EveryTick, None, obs),
        Protocol::Msync => {
            let me = endpoint.node_id();
            let sfunc = crate::sfuncs::Msync::new(me, scenario.clone());
            run_churn_lookahead(endpoint, scenario, plan, sfunc, None, obs)
        }
        Protocol::Msync2 => {
            let me = endpoint.node_id();
            let sfunc = crate::sfuncs::Msync2::new(me, scenario.clone());
            run_churn_lookahead(endpoint, scenario, plan, sfunc, None, obs)
        }
        Protocol::Msync2Shard => {
            let me = endpoint.node_id();
            let sfunc = crate::shard::ShardMsync2::new(me, scenario.clone());
            let router = Box::new(crate::shard::ShardRouter::new(scenario.clone(), me));
            run_churn_lookahead(endpoint, scenario, plan, sfunc, Some(router), obs)
        }
        Protocol::Entry => run_churn_entry(endpoint, scenario, plan, obs),
        Protocol::Lrc | Protocol::Causal => Err(DsoError::ProtocolViolation(format!(
            "{protocol} has no view-change barrier; churn runs cover the paper's four protocols"
        ))),
    }
}

/// Builds the runtime for a churn run: the usual deterministic world,
/// minus the tanks of teams that are not initial members — their spawn
/// points stay clear until they join. Every process (joiners included)
/// shares the identical initial bodies, so a snapshot only ever carries
/// objects modified since the start.
pub(crate) fn build_churn_runtime<E: Endpoint>(
    endpoint: E,
    scenario: &Scenario,
    plan: &MembershipPlan,
    obs: Obs,
) -> Result<SdsoRuntime<E>, DsoError> {
    let config = DsoConfig {
        frame_wire_len: scenario.frame_wire_len,
        merge_diffs: scenario.merge_diffs,
        reliability: scenario.reliability,
        batch_frames: true,
        ..DsoConfig::paper()
    };
    let mut rt = SdsoRuntime::with_obs(endpoint, config, obs);
    let mut world = scenario.initial_world();
    for team in 0..scenario.teams {
        if !plan.is_initial(team) {
            let idx = scenario.grid.object_at(scenario.start_of(team)).0 as usize;
            world[idx] = Block::Empty;
        }
    }
    for (idx, block) in world.iter().enumerate() {
        rt.share(ObjectId(idx as u32), block.encode(scenario.block_bytes))?;
    }
    Ok(rt)
}

/// Brings a runtime into the group: initial members install the plan's
/// initial view; joiners install the view of their join epoch and block
/// for the donor's snapshot. Returns the first game tick this process
/// executes.
fn enter<E: Endpoint>(
    rt: &mut SdsoRuntime<E>,
    plan: &MembershipPlan,
    me: NodeId,
) -> Result<u64, DsoError> {
    if plan.is_initial(me) {
        rt.set_membership(plan.view_at(0));
        return Ok(1);
    }
    let join = plan.join_tick_of(me).ok_or_else(|| {
        DsoError::ProtocolViolation(format!(
            "process {me} is neither an initial member nor a planned joiner"
        ))
    })?;
    let change = plan.change_at(join).expect("join tick carries its change");
    let view = plan.view_at(join);
    let donor = view.donor_for(change).ok_or_else(|| {
        DsoError::ProtocolViolation("view change admits joiners but leaves no donor".into())
    })?;
    rt.set_membership(view);
    rt.await_snapshot(donor)?;
    Ok(join + 1)
}

/// Starts the game state at `start_tick`: a late joiner begins in respawn
/// limbo (its tank materialises on the spawn at its first tick, the same
/// path a destroyed tank takes) with the global tick counter aligned.
fn align_core(core: &mut GameCore, start_tick: u64) {
    if start_tick > 1 {
        core.tick = start_tick - 1;
        core.tank.alive = false;
    }
}

fn run_churn_lookahead<E: Endpoint, S: SFunction>(
    endpoint: E,
    scenario: &Scenario,
    plan: &MembershipPlan,
    sfunc: S,
    router: Option<Box<dyn sdso_core::DiffRouter>>,
    obs: Obs,
) -> Result<NodeStats, DsoError> {
    let me = endpoint.node_id();
    let mut rt = build_churn_runtime(endpoint, scenario, plan, obs)?;
    rt.set_diff_router(router);
    let start_tick = enter(&mut rt, plan, me)?;
    let mut node = Lookahead::new(rt, sfunc)?;
    let mut core = GameCore::new(scenario.clone(), me);
    align_core(&mut core, start_tick);
    let leave_tick = plan.leave_tick_of(me);
    let mut compute = SimSpan::ZERO;

    for tick in start_tick..=scenario.ticks {
        let leaving = leave_tick == Some(tick);
        let think = think_cost(scenario);
        node.runtime_mut().advance(think);
        compute += think;

        let mods = {
            let mut port = RuntimePort { runtime: node.runtime_mut(), scenario };
            if leaving {
                core.retire(&mut port)?
            } else {
                core.run_tick(&mut port)?
            }
        };
        let wc = write_cost(scenario, mods);
        node.runtime_mut().advance(wc);
        compute += wc;

        let Some(change) = plan.change_at(tick) else {
            node.step()?;
            continue;
        };
        // The barrier replaces the tick's regular exchange, keeping one
        // logical tick per iteration.
        node.step_barrier()?;
        if leaving {
            let mut rt = node.into_runtime();
            let net_live = rt.net_metrics_delta();
            rt.settle()?;
            return Ok(lookahead_stats(&mut rt, &core, compute, scenario, net_live));
        }
        node.apply_view_change(change)?;
        if node.runtime().membership().donor_for(change) == Some(me) {
            for &joiner in &change.joined {
                node.runtime_mut().send_snapshot(joiner)?;
            }
        }
    }

    let mut rt = node.into_runtime();
    let net_live = rt.net_metrics_delta();
    // Terminal full synchronisation over the final view (see
    // `driver::run_lookahead`).
    rt.exchange(true, SendMode::Broadcast, &mut Never)?;
    rt.settle()?;
    Ok(lookahead_stats(&mut rt, &core, compute, scenario, net_live))
}

fn run_churn_entry<E: Endpoint>(
    endpoint: E,
    scenario: &Scenario,
    plan: &MembershipPlan,
    obs: Obs,
) -> Result<NodeStats, DsoError> {
    let me = endpoint.node_id();
    let mut rt = build_churn_runtime(endpoint, scenario, plan, obs)?;
    let start_tick = enter(&mut rt, plan, me)?;
    let mut ec = EntryConsistency::new(rt);
    let mut core = GameCore::with_arbitration(scenario.clone(), me, false);
    align_core(&mut core, start_tick);
    let leave_tick = plan.leave_tick_of(me);
    let mut compute = SimSpan::ZERO;

    for tick in start_tick..=scenario.ticks {
        let leaving = leave_tick == Some(tick);
        ec.service_pending()?;
        let think = think_cost(scenario);
        ec.runtime_mut().advance(think);
        compute += think;

        let mut modified = BTreeSet::new();
        let mods = if leaving {
            // The leaver's last iteration touches only its own cell.
            if core.tank.alive {
                let own = scenario.grid.object_at(core.tank.pos);
                ec.acquire(&[LockRequest::write(own)])?;
            }
            let mut port = EcPort { ec: &mut ec, scenario, modified: &mut modified };
            core.retire(&mut port)?
        } else {
            let lockset = ec_lockset(scenario, core.tank.pos);
            ec.acquire(&lockset)?;
            let mut port = EcPort { ec: &mut ec, scenario, modified: &mut modified };
            core.run_tick(&mut port)?
        };
        let wc = write_cost(scenario, mods);
        ec.runtime_mut().advance(wc);
        compute += wc;
        ec.release_all(&modified)?;

        let Some(change) = plan.change_at(tick) else { continue };
        // Flush barrier over the old view: all newest copies (including
        // the leaver's tombstone) disseminate before the epoch turns.
        ec.view_sync()?;
        if leaving {
            let net_live = ec.runtime_mut().net_metrics_delta();
            ec.runtime_mut().settle()?;
            return Ok(entry_stats(&mut ec, &core, compute, scenario, net_live));
        }
        ec.apply_view_change(change)?;
        if ec.runtime().membership().donor_for(change) == Some(me) {
            for &joiner in &change.joined {
                ec.runtime_mut().send_snapshot(joiner)?;
            }
        }
    }
    let net_live = ec.runtime_mut().net_metrics_delta();
    ec.finish()?;
    ec.final_sync()?;
    ec.runtime_mut().settle()?;
    Ok(entry_stats(&mut ec, &core, compute, scenario, net_live))
}

fn lookahead_stats<E: Endpoint>(
    rt: &mut SdsoRuntime<E>,
    core: &GameCore,
    compute: SimSpan,
    scenario: &Scenario,
    net_live: sdso_net::NetMetricsSnapshot,
) -> NodeStats {
    NodeStats {
        node: rt.node_id(),
        ticks: core.tick,
        modifications: core.modifications,
        score: core.score,
        goals: core.goals,
        deaths: core.deaths,
        shots: core.shots,
        bonuses: core.bonuses,
        exec_time: rt.now().saturating_since(sdso_net::SimInstant::ZERO),
        compute_time: compute,
        net: net_live.merged(&rt.net_metrics_delta()),
        net_live,
        dso: rt.metrics(),
        final_world: snapshot_world(rt, scenario),
        ..NodeStats::default()
    }
}

fn entry_stats<E: Endpoint>(
    ec: &mut EntryConsistency<E>,
    core: &GameCore,
    compute: SimSpan,
    scenario: &Scenario,
    net_live: sdso_net::NetMetricsSnapshot,
) -> NodeStats {
    NodeStats {
        node: ec.runtime().node_id(),
        ticks: core.tick,
        modifications: core.modifications,
        score: core.score,
        goals: core.goals,
        deaths: core.deaths,
        shots: core.shots,
        bonuses: core.bonuses,
        exec_time: ec.runtime().now().saturating_since(sdso_net::SimInstant::ZERO),
        compute_time: compute,
        net: net_live.merged(&ec.runtime_mut().net_metrics_delta()),
        net_live,
        dso: ec.runtime().metrics(),
        ec: ec.metrics(),
        final_world: snapshot_world(ec.runtime(), scenario),
        ..NodeStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdso_core::ViewChange;
    use sdso_net::memory::MemoryHub;

    /// 4 capacity slots, 3 initial members; node 1 leaves and node 3
    /// joins at the same barrier.
    fn plan() -> MembershipPlan {
        MembershipPlan::new(4, [0, 1, 2]).with_change(4, ViewChange::new([3], [1]))
    }

    fn run_all(protocol: Protocol) -> Vec<NodeStats> {
        let scenario = Scenario::paper(4, 1).with_ticks(10);
        let plan = plan();
        let mut handles = Vec::new();
        for ep in MemoryHub::new(4).into_endpoints() {
            let s = scenario.clone();
            let p = plan.clone();
            handles.push(std::thread::spawn(move || run_churn_node(ep, &s, protocol, &p)));
        }
        handles.into_iter().map(|h| h.join().unwrap().unwrap()).collect()
    }

    fn assert_churn_run(protocol: Protocol) {
        let stats = run_all(protocol);
        assert_eq!(stats[1].ticks, 4, "the leaver exits at its trigger tick");
        assert_eq!(stats[0].ticks, 10);
        assert_eq!(stats[3].ticks, 10, "the joiner plays to the end");
        // Every final-view member converges to the identical world.
        assert_eq!(stats[0].final_world, stats[2].final_world, "{protocol}: 0 vs 2");
        assert_eq!(stats[0].final_world, stats[3].final_world, "{protocol}: 0 vs 3");
        // The leaver's tank is gone from the converged world; the joiner's
        // team has a presence record (its tank, unless currently in limbo).
        let tanks: Vec<u16> = stats[0]
            .final_world
            .iter()
            .filter_map(|b| match b {
                Block::Tank { team, .. } => Some(*team),
                _ => None,
            })
            .collect();
        assert!(!tanks.contains(&1), "{protocol}: leaver's tank must be gone");
    }

    #[test]
    fn bsync_survives_leave_and_join() {
        assert_churn_run(Protocol::Bsync);
    }

    #[test]
    fn msync_survives_leave_and_join() {
        assert_churn_run(Protocol::Msync);
    }

    #[test]
    fn msync2_survives_leave_and_join() {
        assert_churn_run(Protocol::Msync2);
    }

    #[test]
    fn entry_survives_leave_and_join() {
        assert_churn_run(Protocol::Entry);
    }

    #[test]
    fn snapshot_is_o_objects_not_o_history() {
        // Same plan, 4x the ticks before the join: the snapshot's byte
        // count must not grow with history, only with modified objects
        // (bounded by the object count).
        let sizes: Vec<u64> = [6u64, 24]
            .into_iter()
            .map(|join_tick| {
                let scenario = Scenario::paper(4, 1).with_ticks(join_tick + 2);
                let plan =
                    MembershipPlan::new(4, [0, 1, 2]).with_change(join_tick, ViewChange::join([3]));
                let mut handles = Vec::new();
                for ep in MemoryHub::new(4).into_endpoints() {
                    let s = scenario.clone();
                    let p = plan.clone();
                    handles.push(std::thread::spawn(move || {
                        run_churn_node(ep, &s, Protocol::Bsync, &p)
                    }));
                }
                let stats: Vec<NodeStats> =
                    handles.into_iter().map(|h| h.join().unwrap().unwrap()).collect();
                // The donor (node 0) counted the snapshot bytes it sent.
                stats[0].dso.snapshot_bytes
            })
            .collect();
        assert!(sizes[0] > 0, "a snapshot was sent");
        let cells = u64::from(Scenario::paper(4, 1).grid.cells());
        let bound = cells * (64 + 32);
        assert!(
            sizes[1] <= bound && sizes[0] <= bound,
            "snapshot sizes {sizes:?} must stay O(objects), bound {bound}"
        );
    }

    #[test]
    fn lrc_and_causal_are_rejected() {
        let scenario = Scenario::paper(4, 1).with_ticks(10);
        let ep = MemoryHub::new(4).into_endpoints().remove(0);
        let err = run_churn_node(ep, &scenario, Protocol::Lrc, &plan()).unwrap_err();
        assert!(matches!(err, DsoError::ProtocolViolation(_)));
    }
}
