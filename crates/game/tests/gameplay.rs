//! Longer-horizon gameplay behaviour under the real protocols: combat,
//! scoring cycles, and range effects — run on the virtual-time cluster.

use sdso_game::{run_node, Protocol, Scenario};
use sdso_sim::{NetworkModel, SimCluster};

fn play(scenario: &Scenario, protocol: Protocol) -> Vec<sdso_game::NodeStats> {
    let s = scenario.clone();
    SimCluster::new(usize::from(scenario.teams), NetworkModel::paper_testbed())
        .run(move |ep| run_node(ep, &s, protocol).map_err(sdso_net::NetError::from))
        .unwrap()
        .into_results()
        .unwrap()
}

#[test]
fn combat_happens_when_ranges_overlap() {
    // With range 3 and several teams converging on the goal, tanks must
    // eventually sight and fire at each other.
    let scenario = Scenario::paper(4, 3).with_ticks(250);
    for protocol in [Protocol::Bsync, Protocol::Msync2] {
        let stats = play(&scenario, protocol);
        let shots: u64 = stats.iter().map(|s| s.shots).sum();
        assert!(shots > 0, "{protocol}: no shots in 250 ticks at range 3");
    }
}

#[test]
fn damage_is_conserved_across_processes() {
    // Every death implies at least tank_hp incoming hits or a bomb; the
    // global death count must stay plausible relative to global shots and
    // bombs (an upper bound, not an exact identity, since shots miss).
    let scenario = Scenario::paper(4, 3).with_ticks(250);
    let stats = play(&scenario, Protocol::Bsync);
    let shots: u64 = stats.iter().map(|s| s.shots).sum();
    let deaths: u64 = stats.iter().map(|s| s.deaths).sum();
    let bombs = scenario.bombs as u64;
    assert!(
        deaths <= shots / u64::from(scenario.tank_hp) + bombs,
        "{deaths} deaths cannot be explained by {shots} shots and {bombs} bombs"
    );
}

#[test]
fn scoring_cycles_repeat_over_long_runs() {
    // Goal → patrol → goal: over 600 ticks some team should score more
    // than once, proving the respawn/patrol cycle doesn't wedge.
    let scenario = Scenario::paper(3, 1).with_ticks(600);
    let stats = play(&scenario, Protocol::Msync2);
    let total_goals: u64 = stats.iter().map(|s| s.goals).sum();
    assert!(total_goals >= 2, "only {total_goals} goal visits in 600 ticks");
}

#[test]
fn wider_range_means_more_ec_traffic() {
    // The paper's 5-lock vs 13-lock effect, as a regression guard.
    let base = Scenario::paper(4, 1).with_ticks(80);
    let wide = Scenario::paper(4, 3).with_ticks(80);
    let narrow_msgs: u64 = play(&base, Protocol::Entry).iter().map(|s| s.net.total_sent()).sum();
    let wide_msgs: u64 = play(&wide, Protocol::Entry).iter().map(|s| s.net.total_sent()).sum();
    assert!(
        wide_msgs > narrow_msgs * 2,
        "range 3 EC ({wide_msgs}) should far exceed range 1 ({narrow_msgs})"
    );
}

#[test]
fn bsync_range_has_little_effect_on_traffic() {
    // BSYNC broadcasts regardless of range: its message count is a
    // function of ticks and processes only.
    let base = Scenario::paper(4, 1).with_ticks(80);
    let wide = Scenario::paper(4, 3).with_ticks(80);
    let narrow: u64 = play(&base, Protocol::Bsync).iter().map(|s| s.net.total_sent()).sum();
    let wide_msgs: u64 = play(&wide, Protocol::Bsync).iter().map(|s| s.net.total_sent()).sum();
    let ratio = wide_msgs as f64 / narrow as f64;
    assert!(
        (0.9..1.1).contains(&ratio),
        "BSYNC traffic should be range-insensitive: {narrow} vs {wide_msgs}"
    );
}

#[test]
fn all_protocols_survive_a_two_team_duel() {
    // Smallest cluster, long horizon, both ranges: a soak across every
    // protocol family.
    for range in [1u16, 3] {
        let scenario = Scenario::paper(2, range).with_ticks(300);
        for protocol in Protocol::ALL {
            let stats = play(&scenario, protocol);
            assert_eq!(stats.len(), 2, "{protocol} range {range}");
            assert!(stats.iter().all(|s| s.ticks == 300));
        }
    }
}
