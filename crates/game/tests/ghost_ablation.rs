//! Negative control for the spawn-ghost mechanism (DESIGN.md §7): an
//! MSYNC-style s-function that ignores respawn teleports must eventually
//! violate spatial consistency in a respawn-heavy game — and the runtime
//! must *detect* that (protocol violation or deadlock), never diverge
//! silently. This test documents that the ghost positions in
//! `sdso_game::sfuncs` are load-bearing, not decorative.

use sdso_core::{DsoConfig, DsoError, LogicalTime, ObjectId, ObjectStore, SFunction, SdsoRuntime};
use sdso_game::{team_positions, Block, GameCore, Pos, Scenario};
use sdso_net::{Endpoint, NodeId};
use sdso_protocols::Lookahead;
use sdso_sim::{NetworkModel, SimCluster};

/// MSYNC2's trigger, but computed from visible tank positions only — no
/// spawn-point ghosts, so a respawn teleport is unpredictable.
struct Msync2NoGhosts {
    me: NodeId,
    scenario: Scenario,
    d: u32,
}

impl SFunction for Msync2NoGhosts {
    fn next_exchange(
        &mut self,
        peer: NodeId,
        now: LogicalTime,
        view: &ObjectStore,
    ) -> Option<LogicalTime> {
        let ours = team_positions(view, &self.scenario, self.me);
        let theirs = team_positions(view, &self.scenario, peer);
        let d = self.d;
        let delta = ours
            .iter()
            .flat_map(|&m| {
                theirs.iter().map(move |&t| m.ticks_to_alignment(t).max(m.ticks_to_within(t, d)))
            })
            .min()
            // A team in limbo is invisible: without ghosts the best this
            // schedule can do is a (wrong) "nothing can happen soon".
            .unwrap_or(8);
        Some(now.plus(delta.max(1)))
    }
}

fn run_no_ghosts(scenario: &Scenario) -> Vec<Result<(), DsoError>> {
    let outer = scenario.clone();
    let outcome = SimCluster::new(usize::from(scenario.teams), NetworkModel::paper_testbed())
        .run(move |ep| {
            let me = ep.node_id();
            let s = outer.clone();
            let config = DsoConfig::paper()
                .with_frame_wire_len(s.frame_wire_len)
                .with_merge_diffs(s.merge_diffs);
            let mut rt = SdsoRuntime::new(ep, config);
            for (idx, block) in s.initial_world().iter().enumerate() {
                rt.share(ObjectId(idx as u32), block.encode(s.block_bytes)).map_err(to_net)?;
            }
            let sfunc = Msync2NoGhosts { me, scenario: s.clone(), d: s.relevance_distance() };
            let mut node = Lookahead::new(rt, sfunc).map_err(to_net)?;
            let mut core = GameCore::new(s.clone(), me);
            struct P<'a, E: Endpoint> {
                rt: &'a mut SdsoRuntime<E>,
                s: &'a Scenario,
            }
            impl<E: Endpoint> sdso_game::BlockPort for P<'_, E> {
                fn read_block(&self, pos: Pos) -> Result<Block, DsoError> {
                    Block::decode(self.rt.read(self.s.grid.object_at(pos))?)
                        .ok_or_else(|| DsoError::ProtocolViolation("corrupt block".into()))
                }
                fn write_block(&mut self, pos: Pos, b: Block) -> Result<(), DsoError> {
                    self.rt.write(self.s.grid.object_at(pos), 0, &b.encode(self.s.block_bytes))
                }
            }
            for _ in 0..s.ticks {
                {
                    let mut port = P { rt: node.runtime_mut(), s: &s };
                    core.run_tick(&mut port).map_err(to_net)?;
                }
                node.step().map_err(to_net)?;
            }
            Ok(())
        })
        .unwrap();
    outcome
        .nodes
        .into_iter()
        .map(|n| n.result.map_err(|e| DsoError::ProtocolViolation(format!("{e}"))))
        .collect()
}

fn to_net(e: DsoError) -> sdso_net::NetError {
    e.into()
}

#[test]
fn ghostless_schedule_fails_loudly_not_silently() {
    // Dense, respawn-heavy configuration (the one that exposed the original
    // respawn race). Without spawn ghosts the schedule is unsound; the
    // guarantee under test is that the system *reports* the violation —
    // through the strict own-cell oracle, a stale-stamp rejection, or a
    // deadlock — on at least one node, rather than completing with
    // silently divergent replicas. Placement seed 1: with the vendored
    // RNG's stream this seed produces a map whose 200-tick run is
    // respawn-heavy (the default placement seed happens not to be).
    let scenario = Scenario::paper(16, 3).with_ticks(200).with_seed(1);
    let results = run_no_ghosts(&scenario);
    let failures = results.iter().filter(|r| r.is_err()).count();
    assert!(
        failures > 0,
        "the ghost-free schedule completed cleanly; either this \
         configuration stopped exercising respawn teleports (weaken of the \
         test) or violations are no longer detected (a real regression)"
    );
}

#[test]
fn ghosted_schedule_passes_the_same_configuration() {
    // Positive control: the shipped MSYNC2 (with ghosts) survives the
    // identical configuration.
    let scenario = Scenario::paper(16, 3).with_ticks(200).with_seed(1);
    let s = scenario.clone();
    let outcome = SimCluster::new(16, NetworkModel::paper_testbed())
        .run(move |ep| sdso_game::run_node(ep, &s, sdso_game::Protocol::Msync2).map_err(to_net))
        .unwrap();
    for node in outcome.nodes {
        assert!(node.result.is_ok(), "ghosted MSYNC2 must pass: {:?}", node.result.err());
    }
}
