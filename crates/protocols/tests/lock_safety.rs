//! Randomised safety tests of the entry-consistency lock layer: mutual
//! exclusion, reader sharing, and progress under contention — the paper's
//! claim that its EC baseline "explicitly deals with data races by
//! associating distributed locks with objects" made checkable.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use sdso_core::{DsoConfig, ObjectId, SdsoRuntime};
use sdso_net::memory::MemoryHub;
use sdso_protocols::{EntryConsistency, LockRequest};

/// Runs `nodes` processes that each perform `rounds` lock/increment/unlock
/// cycles over a set of shared counters, with locksets drawn from the
/// seeded schedule. A cross-thread atomic tracks concurrent holders per
/// object to detect any mutual-exclusion violation immediately.
fn contended_run(nodes: usize, objects: u32, rounds: usize, seed: u64) -> Vec<u64> {
    // holders[obj] counts concurrent write-lock holders (must stay ≤ 1).
    let holders: Arc<Vec<AtomicU64>> = Arc::new((0..objects).map(|_| AtomicU64::new(0)).collect());

    let handles: Vec<_> = MemoryHub::new(nodes)
        .into_endpoints()
        .into_iter()
        .map(|ep| {
            let holders = Arc::clone(&holders);
            std::thread::spawn(move || {
                let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
                for id in 0..objects {
                    rt.share(ObjectId(id), vec![0u8; 8]).unwrap();
                }
                let me = rt.node_id();
                let mut ec = EntryConsistency::new(rt);
                let mut increments = 0u64;
                for round in 0..rounds {
                    // A deterministic pseudo-random lockset of 1–3 objects.
                    let mix = seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(u64::from(me) * 1442695040888963407 + round as u64);
                    let count = 1 + (mix % 3) as u32;
                    let lockset: BTreeSet<u32> =
                        (0..count).map(|k| (mix >> (8 * k)) as u32 % objects).collect();
                    let requests: Vec<LockRequest> =
                        lockset.iter().map(|&o| LockRequest::write(ObjectId(o))).collect();

                    ec.acquire(&requests).unwrap();
                    // Mutual-exclusion oracle: we must be the only holder.
                    for &o in &lockset {
                        let prev = holders[o as usize].fetch_add(1, Ordering::SeqCst);
                        assert_eq!(prev, 0, "two concurrent write holders on obj {o}");
                    }
                    // Increment each locked counter.
                    for &o in &lockset {
                        let current =
                            u64::from_le_bytes(ec.read(ObjectId(o)).unwrap().try_into().unwrap());
                        ec.write(ObjectId(o), 0, &(current + 1).to_le_bytes()).unwrap();
                        increments += 1;
                    }
                    for &o in &lockset {
                        holders[o as usize].fetch_sub(1, Ordering::SeqCst);
                    }
                    let modified: BTreeSet<ObjectId> =
                        lockset.iter().map(|&o| ObjectId(o)).collect();
                    ec.release_all(&modified).unwrap();
                    ec.service_pending().unwrap();
                }
                ec.finish().unwrap();
                // Read back the final counters (our replica holds whatever
                // we last pulled; the true total is checked via the sum of
                // increments below).
                increments
            })
        })
        .collect();

    handles.into_iter().map(|h| h.join().expect("node panicked")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn ec_mutual_exclusion_under_random_contention(seed in 0u64..1_000_000) {
        let increments = contended_run(4, 3, 12, seed);
        // Progress: every node completed all rounds.
        prop_assert_eq!(increments.len(), 4);
        prop_assert!(increments.iter().all(|&i| i >= 12));
    }
}

#[test]
fn ec_increments_are_never_lost() {
    // Stronger than mutual exclusion: the counter value observed by a
    // final exclusive lock equals the number of increments performed.
    let nodes = 3;
    let rounds = 15;
    let handles: Vec<_> = MemoryHub::new(nodes)
        .into_endpoints()
        .into_iter()
        .map(|ep| {
            std::thread::spawn(move || {
                let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
                rt.share(ObjectId(0), vec![0u8; 8]).unwrap();
                let mut ec = EntryConsistency::new(rt);
                for _ in 0..rounds {
                    ec.acquire(&[LockRequest::write(ObjectId(0))]).unwrap();
                    let v = u64::from_le_bytes(ec.read(ObjectId(0)).unwrap().try_into().unwrap());
                    ec.write(ObjectId(0), 0, &(v + 1).to_le_bytes()).unwrap();
                    ec.release_all(&BTreeSet::from([ObjectId(0)])).unwrap();
                    ec.service_pending().unwrap();
                }
                // One last acquire pulls the freshest copy.
                ec.acquire(&[LockRequest::read(ObjectId(0))]).unwrap();
                let seen = u64::from_le_bytes(ec.read(ObjectId(0)).unwrap().try_into().unwrap());
                ec.release_all(&BTreeSet::new()).unwrap();
                ec.finish().unwrap();
                seen
            })
        })
        .collect();
    let finals: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let expected = nodes as u64 * rounds as u64;
    assert!(
        finals.contains(&expected),
        "some final reader must observe all {expected} increments, saw {finals:?}"
    );
    assert!(finals.iter().all(|&v| v <= expected), "counter overshoot: {finals:?}");
}

#[test]
fn lrc_lock_chain_transfers_a_counter() {
    use sdso_protocols::Lrc;
    // Token-style counter passed around via one LRC lock.
    let nodes = 3;
    let rounds = 6;
    let handles: Vec<_> = MemoryHub::new(nodes)
        .into_endpoints()
        .into_iter()
        .map(|ep| {
            std::thread::spawn(move || {
                let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
                rt.share(ObjectId(0), vec![0u8; 8]).unwrap();
                let mut lrc = Lrc::new(rt);
                for _ in 0..rounds {
                    lrc.acquire(0).unwrap();
                    let v = u64::from_le_bytes(lrc.read(ObjectId(0)).unwrap().try_into().unwrap());
                    lrc.write(ObjectId(0), 0, &(v + 1).to_le_bytes()).unwrap();
                    lrc.release(0).unwrap();
                    lrc.service_pending().unwrap();
                }
                lrc.acquire(0).unwrap();
                let seen = u64::from_le_bytes(lrc.read(ObjectId(0)).unwrap().try_into().unwrap());
                lrc.release(0).unwrap();
                lrc.finish().unwrap();
                seen
            })
        })
        .collect();
    let finals: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let expected = nodes as u64 * rounds as u64;
    assert!(
        finals.contains(&expected),
        "LRC interval transfer lost increments: {finals:?} (expected max {expected})"
    );
}
