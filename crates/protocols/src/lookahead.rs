//! The lookahead protocol engine.
//!
//! "We use the term 'lookahead' to describe any protocol that has the
//! ability to predict the future times at which groups of processes must
//! exchange information regarding modifications to shared objects" (paper
//! §1). The engine below is that prediction loop: the s-function supplies
//! the prediction, [`sdso_core::SdsoRuntime::exchange`] performs the
//! rendezvous, and the per-tick [`Lookahead::step`] ties them together.
//!
//! BSYNC, MSYNC and MSYNC2 are all instances of this type — they differ
//! only in `S`:
//!
//! | Protocol | s-function |
//! |---|---|
//! | BSYNC  | [`sdso_core::EveryTick`] — everyone, every tick |
//! | MSYNC  | `sdso_game::sfuncs::Msync` — worst-case row/column alignment |
//! | MSYNC2 | `sdso_game::sfuncs::Msync2` — alignment **and** within range |

use sdso_core::{DsoError, ExchangeReport, SFunction, SdsoRuntime, SendMode, ViewChange};
use sdso_net::{Endpoint, NodeId, SimSpan};

/// A lookahead-consistent process: an S-DSO runtime paired with the
/// s-function that drives its exchange schedule.
///
/// # Example
///
/// ```no_run
/// use sdso_core::{DsoConfig, EveryTick, ObjectId, SdsoRuntime};
/// use sdso_net::memory::MemoryHub;
/// use sdso_protocols::Lookahead;
///
/// # fn main() -> Result<(), sdso_core::DsoError> {
/// let ep = MemoryHub::new(2).into_endpoints().remove(0);
/// let mut rt = SdsoRuntime::new(ep, DsoConfig::paper());
/// rt.share(ObjectId(0), vec![0u8; 16])?;
/// let mut node = Lookahead::new(rt, EveryTick)?; // BSYNC
/// node.runtime_mut().write(ObjectId(0), 0, &[1])?;
/// node.step()?; // rendezvous with whoever is due
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Lookahead<E: Endpoint, S: SFunction> {
    runtime: SdsoRuntime<E>,
    sfunc: S,
    mode: SendMode,
}

impl<E: Endpoint, S: SFunction> Lookahead<E, S> {
    /// Wraps `runtime` (with all objects already shared) and seeds the
    /// exchange list from `sfunc`.
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::ProtocolViolation`] if the s-function schedules a
    /// non-future initial exchange.
    pub fn new(mut runtime: SdsoRuntime<E>, mut sfunc: S) -> Result<Self, DsoError> {
        runtime.init_schedule(&mut sfunc)?;
        Ok(Lookahead { runtime, sfunc, mode: SendMode::Multicast })
    }

    /// Like [`Lookahead::new`] but every exchange is forced to broadcast to
    /// all processes (the paper's `how = broadcast` override).
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::ProtocolViolation`] if the s-function schedules a
    /// non-future initial exchange.
    pub fn new_broadcast(runtime: SdsoRuntime<E>, sfunc: S) -> Result<Self, DsoError> {
        let mut this = Self::new(runtime, sfunc)?;
        this.mode = SendMode::Broadcast;
        Ok(this)
    }

    /// Performs one synchronous exchange (push-pull rendezvous with every
    /// due peer). Call once per object-modification interval.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and schedule violations.
    pub fn step(&mut self) -> Result<ExchangeReport, DsoError> {
        self.runtime.exchange(true, self.mode, &mut self.sfunc)
    }

    /// Performs one push-only exchange (no blocking for reciprocation) —
    /// the paper's `resync_flag = false` mode.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and schedule violations.
    pub fn step_push(&mut self) -> Result<ExchangeReport, DsoError> {
        self.runtime.exchange(false, self.mode, &mut self.sfunc)
    }

    /// Performs one full-rendezvous broadcast exchange regardless of the
    /// configured mode: every current-view peer is met and the schedule is
    /// recomputed from the converged state. This is the view-change
    /// barrier — churn drivers call it on every old-view member at the
    /// trigger tick before [`Lookahead::apply_view_change`].
    ///
    /// # Errors
    ///
    /// Propagates transport errors and schedule violations.
    pub fn step_barrier(&mut self) -> Result<ExchangeReport, DsoError> {
        self.runtime.exchange(true, SendMode::Broadcast, &mut self.sfunc)
    }

    /// [`Lookahead::step`] with crash detection: the rendezvous wait is
    /// bounded by `budget`, and peers that never reciprocated within it
    /// are escalated to the membership layer as an abrupt leave (the
    /// returned [`ViewChange`], empty on a quiet step). This is the fix
    /// for MSYNC/MSYNC2 parking forever on a vanished rendezvous partner:
    /// the group re-forms around the survivors instead of stalling.
    ///
    /// Every survivor must run the same bounded discipline under a
    /// schedule that makes the vanished peer due to all of them at the
    /// same tick (`EveryTick`, a broadcast barrier, or a planned crash
    /// schedule); otherwise eviction skew between survivors can drop one
    /// interval of their mutual traffic at the epoch boundary.
    ///
    /// # Errors
    ///
    /// [`DsoError::PeerUnresponsive`] when *every* live peer went silent —
    /// a process that lost the whole group cannot tell "they all crashed"
    /// from "I am partitioned", and continuing alone would fork the world.
    /// Otherwise propagates [`Lookahead::step`]'s errors.
    pub fn step_bounded(
        &mut self,
        budget: SimSpan,
    ) -> Result<(ExchangeReport, ViewChange), DsoError> {
        let (report, unresponsive) =
            self.runtime.exchange_bounded(true, self.mode, &mut self.sfunc, budget)?;
        self.escalate(report, unresponsive, budget)
    }

    /// [`Lookahead::step_barrier`] with the same bounded-wait escalation
    /// as [`Lookahead::step_bounded`].
    ///
    /// # Errors
    ///
    /// As [`Lookahead::step_bounded`].
    pub fn step_barrier_bounded(
        &mut self,
        budget: SimSpan,
    ) -> Result<(ExchangeReport, ViewChange), DsoError> {
        let (report, unresponsive) =
            self.runtime.exchange_bounded(true, SendMode::Broadcast, &mut self.sfunc, budget)?;
        self.escalate(report, unresponsive, budget)
    }

    /// Converts a non-empty unresponsive set into an applied leave-flavour
    /// view change, refusing to evict the entire peer group.
    fn escalate(
        &mut self,
        report: ExchangeReport,
        unresponsive: Vec<NodeId>,
        budget: SimSpan,
    ) -> Result<(ExchangeReport, ViewChange), DsoError> {
        if unresponsive.is_empty() {
            return Ok((report, ViewChange::new([], [])));
        }
        let me = self.runtime.node_id();
        let live_peers = self.runtime.membership().peers_of(me).len();
        if unresponsive.len() >= live_peers {
            return Err(DsoError::PeerUnresponsive { peers: unresponsive, waited: budget });
        }
        let change = ViewChange::leave(unresponsive);
        self.apply_view_change(&change)?;
        Ok((report, change))
    }

    /// Applies one membership change through the runtime, letting this
    /// node's s-function schedule first exchanges for joiners. Call only
    /// after the [`Lookahead::step_barrier`] of the trigger tick.
    ///
    /// # Errors
    ///
    /// Propagates [`sdso_core::SdsoRuntime::apply_view_change`] errors.
    pub fn apply_view_change(&mut self, change: &sdso_core::ViewChange) -> Result<(), DsoError> {
        self.runtime.apply_view_change(change, &mut self.sfunc)
    }

    /// The underlying runtime.
    pub fn runtime(&self) -> &SdsoRuntime<E> {
        &self.runtime
    }

    /// Mutable access to the underlying runtime (for object writes between
    /// steps).
    pub fn runtime_mut(&mut self) -> &mut SdsoRuntime<E> {
        &mut self.runtime
    }

    /// The s-function.
    pub fn sfunction(&self) -> &S {
        &self.sfunc
    }

    /// Mutable access to the s-function (e.g. to feed it application state
    /// between steps).
    pub fn sfunction_mut(&mut self) -> &mut S {
        &mut self.sfunc
    }

    /// Unwraps into the runtime, dropping the s-function.
    pub fn into_runtime(self) -> SdsoRuntime<E> {
        self.runtime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdso_core::{DsoConfig, EveryTick, LogicalTime, ObjectId, ObjectStore};
    use sdso_net::memory::{MemoryEndpoint, MemoryHub};

    fn cluster(n: usize) -> Vec<SdsoRuntime<MemoryEndpoint>> {
        MemoryHub::new(n)
            .into_endpoints()
            .into_iter()
            .map(|ep| {
                let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
                for id in 0..4u32 {
                    rt.share(ObjectId(id), vec![0u8; 4]).unwrap();
                }
                rt
            })
            .collect()
    }

    #[test]
    fn bsync_three_nodes_full_visibility() {
        let handles: Vec<_> = cluster(3)
            .into_iter()
            .map(|rt| {
                std::thread::spawn(move || {
                    let mut node = Lookahead::new(rt, EveryTick).unwrap();
                    let me = node.runtime().node_id();
                    for tick in 0..3u8 {
                        node.runtime_mut().write(ObjectId(u32::from(me)), 0, &[tick + 1]).unwrap();
                        let report = node.step().unwrap();
                        assert_eq!(report.peers.len(), 2, "BSYNC meets everyone");
                    }
                    node.into_runtime()
                })
            })
            .collect();
        for h in handles {
            let rt = h.join().unwrap();
            for id in 0..3u32 {
                assert_eq!(rt.read(ObjectId(id)).unwrap()[0], 3, "all writes visible");
            }
        }
    }

    #[test]
    fn sparse_schedule_skips_non_due_peers() {
        // Peers rendezvous with peer p every (p + 1) ticks: with 3 nodes,
        // node pairs have different cadences, exercising the slotted buffer
        // and early-message paths.
        #[derive(Clone, Copy)]
        struct Cadence;
        impl SFunction for Cadence {
            fn next_exchange(
                &mut self,
                peer: NodeId,
                now: LogicalTime,
                _view: &ObjectStore,
            ) -> Option<LogicalTime> {
                // Pairwise cadence must be symmetric: use (a ^ b) parity via
                // peer id sum — simplest symmetric rule: every 2 ticks for
                // all pairs.
                let _ = peer;
                Some(now.plus(2))
            }
        }
        let handles: Vec<_> = cluster(2)
            .into_iter()
            .map(|rt| {
                std::thread::spawn(move || {
                    let mut node = Lookahead::new(rt, Cadence).unwrap();
                    let me = node.runtime().node_id();
                    let mut rendezvous = 0;
                    for tick in 0..6u8 {
                        node.runtime_mut().write(ObjectId(u32::from(me)), 0, &[tick + 1]).unwrap();
                        rendezvous += node.step().unwrap().peers.len();
                    }
                    (node.into_runtime(), rendezvous)
                })
            })
            .collect();
        for h in handles {
            let (rt, rendezvous) = h.join().unwrap();
            assert_eq!(rendezvous, 3, "met the peer at ticks 2, 4, 6 only");
            // Writes up to the final rendezvous (tick 6) are visible.
            for id in 0..2u32 {
                assert_eq!(rt.read(ObjectId(id)).unwrap()[0], 6);
            }
        }
    }

    #[test]
    fn bounded_step_evicts_a_vanished_peer_and_survivors_converge() {
        // Satellite regression: a rendezvous peer that vanishes mid-run
        // used to park MSYNC-style steps forever in `await_rendezvous`.
        // With the bounded step, both survivors declare it unresponsive,
        // apply the same abrupt leave, and keep exchanging.
        let mut rts = cluster(3);
        let ghost_rt = rts.remove(2);
        // The ghost participates for ticks 1 and 2, then dies abruptly —
        // no settle, no goodbye. Its endpoint is kept alive (below) so
        // survivor traffic to it queues instead of erroring, exactly like
        // an OS buffering frames for a dead process's socket.
        let ghost = std::thread::spawn(move || {
            let mut node = Lookahead::new(ghost_rt, EveryTick).unwrap();
            for tick in 0..2u8 {
                node.runtime_mut().write(ObjectId(2), 0, &[tick + 1]).unwrap();
                node.step().unwrap();
            }
            node.into_runtime()
        });
        let survivors: Vec<_> = rts
            .into_iter()
            .map(|rt| {
                std::thread::spawn(move || {
                    let mut node = Lookahead::new(rt, EveryTick).unwrap();
                    let me = node.runtime().node_id();
                    let mut evicted = Vec::new();
                    for tick in 0..5u8 {
                        node.runtime_mut().write(ObjectId(u32::from(me)), 0, &[tick + 1]).unwrap();
                        let (_, change) = node.step_bounded(SimSpan::from_millis(200)).unwrap();
                        evicted.extend(change.left.iter().copied());
                    }
                    (node.into_runtime(), evicted)
                })
            })
            .collect();
        let ghost_rt = ghost.join().unwrap();
        for h in survivors {
            let (rt, evicted) = h.join().unwrap();
            assert_eq!(evicted, vec![2], "the ghost was evicted exactly once");
            assert!(!rt.membership().contains(2));
            // Survivors converged with each other through tick 5...
            assert_eq!(rt.read(ObjectId(0)).unwrap()[0], 5);
            assert_eq!(rt.read(ObjectId(1)).unwrap()[0], 5);
            // ...and retain the ghost's last pre-crash write.
            assert_eq!(rt.read(ObjectId(2)).unwrap()[0], 2);
        }
        drop(ghost_rt);
    }

    #[test]
    fn bounded_step_refuses_to_evict_the_whole_group() {
        // A process whose *every* peer went silent cannot distinguish a
        // group crash from its own partition; continuing alone would fork
        // the world, so the bounded step errors instead of evicting.
        let mut rts = cluster(2);
        let ghost_rt = rts.pop().unwrap();
        let rt = rts.pop().unwrap();
        let mut node = Lookahead::new(rt, EveryTick).unwrap();
        node.runtime_mut().write(ObjectId(0), 0, &[1]).unwrap();
        match node.step_bounded(SimSpan::from_millis(50)) {
            Err(DsoError::PeerUnresponsive { peers, .. }) => assert_eq!(peers, vec![1]),
            other => panic!("expected PeerUnresponsive, got {other:?}"),
        }
        drop(ghost_rt);
    }

    #[test]
    fn push_mode_step_does_not_wait() {
        let mut nodes = cluster(2);
        let b = nodes.pop().unwrap();
        let a = nodes.pop().unwrap();
        let mut a = Lookahead::new(a, EveryTick).unwrap();
        a.runtime_mut().write(ObjectId(0), 0, &[9]).unwrap();
        let report = a.step_push().unwrap(); // returns immediately
        assert_eq!(report.peers.len(), 1);
        // The peer's blocking step consumes the push.
        let t = std::thread::spawn(move || {
            let mut b = Lookahead::new(b, EveryTick).unwrap();
            b.step().unwrap();
            assert_eq!(b.runtime().read(ObjectId(0)).unwrap()[0], 9);
        });
        t.join().unwrap();
    }
}
