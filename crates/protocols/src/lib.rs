//! Consistency protocols over the S-DSO runtime.
//!
//! The paper evaluates four protocols on its distributed game:
//!
//! * **BSYNC / MSYNC / MSYNC2** — the *lookahead* family: synchronous
//!   rendezvous driven by application-supplied s-functions. All three share
//!   one engine, [`Lookahead`]; they differ only in the s-function (BSYNC:
//!   everyone every tick; MSYNC: row/column alignment lookahead; MSYNC2:
//!   alignment **and** within sensing range — the game-specific functions
//!   live in the `sdso-game` crate).
//! * **Entry consistency** — the lock-based baseline
//!   ([`EntryConsistency`]): per-object distributed locks with statically
//!   placed lock managers and pull-based update retrieval, following the
//!   Midway design as described in the paper.
//!
//! Two further protocols the paper discusses qualitatively are implemented
//! as extensions for ablation studies:
//!
//! * **Lazy release consistency** ([`Lrc`]) — locks without object
//!   association; updates travel as vector-timestamped write notices.
//! * **Causal memory** ([`CausalMemory`]) — push-based causal broadcast.

#![warn(missing_docs)]

mod causal;
mod entry;
mod lookahead;
mod lrc;
mod race;
mod vector_clock;

pub use causal::{CausalMemory, CausalMetrics};
pub use entry::{EcMetrics, EntryConsistency, LockMode, LockRequest};
pub use lookahead::Lookahead;
pub use lrc::{Lrc, LrcMetrics};
pub use race::{contention_winner, yields_to};
pub use vector_clock::{CausalOrder, VectorClock};
