//! Causal memory — a push-based protocol with vector-clock delivery.
//!
//! The paper (§2.3) argues causal memory suits scientific codes but not
//! interactive shared-world applications: every write is pushed to *all*
//! processes ("causal memory cannot determine which subset of processes
//! should be informed of such changes"). This implementation exists to
//! quantify that argument in the Ext. D ablation: it delivers writes in
//! causal order via CBCAST-style vector timestamps and counts the resulting
//! traffic.

use sdso_core::{Diff, DsoError, LogicalTime, ObjectId, SdsoRuntime, Version};
use sdso_net::wire::{Wire, WireReader, WireWriter};
use sdso_net::{Endpoint, MsgClass, NetError, NodeId};

use crate::vector_clock::VectorClock;

/// One causally-broadcast write.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CausalMsg {
    vc: VectorClock,
    object: ObjectId,
    diff: Diff,
}

impl Wire for CausalMsg {
    fn encode(&self, w: &mut WireWriter) {
        self.vc.encode(w);
        self.object.encode(w);
        self.diff.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(CausalMsg {
            vc: VectorClock::decode(r)?,
            object: ObjectId::decode(r)?,
            diff: Diff::decode(r)?,
        })
    }
}

/// Causal-memory protocol counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CausalMetrics {
    /// Writes broadcast by this process.
    pub writes_pushed: u64,
    /// Remote writes delivered (applied) in causal order.
    pub delivered: u64,
    /// Messages that had to wait in the delay queue for causal
    /// predecessors.
    pub delayed: u64,
}

/// One process of a causal-memory application.
///
/// Every [`CausalMemory::write`] is immediately pushed to all other
/// processes; [`CausalMemory::deliver_pending`] (non-blocking) or
/// [`CausalMemory::deliver_blocking`] applies incoming writes respecting
/// causal order.
#[derive(Debug)]
pub struct CausalMemory<E: Endpoint> {
    runtime: SdsoRuntime<E>,
    /// This process's knowledge: one entry per process.
    known: VectorClock,
    /// This process's write counter (its own component mirror).
    delay_queue: Vec<(NodeId, CausalMsg)>,
    metrics: CausalMetrics,
}

impl<E: Endpoint> CausalMemory<E> {
    /// Wraps a runtime whose objects are already shared.
    pub fn new(runtime: SdsoRuntime<E>) -> Self {
        let n = runtime.num_nodes();
        CausalMemory {
            runtime,
            known: VectorClock::new(n),
            delay_queue: Vec::new(),
            metrics: CausalMetrics::default(),
        }
    }

    /// The underlying runtime.
    pub fn runtime(&self) -> &SdsoRuntime<E> {
        &self.runtime
    }

    /// Mutable runtime access.
    pub fn runtime_mut(&mut self) -> &mut SdsoRuntime<E> {
        &mut self.runtime
    }

    /// Protocol counters.
    pub fn metrics(&self) -> CausalMetrics {
        self.metrics
    }

    /// This process's causal knowledge vector.
    pub fn clock(&self) -> &VectorClock {
        &self.known
    }

    /// Reads an object's local replica (causal memory reads are always
    /// local).
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::UnknownObject`] for unshared objects.
    pub fn read(&self, object: ObjectId) -> Result<&[u8], DsoError> {
        self.runtime.read(object)
    }

    /// The total-order stamp for a write whose vector clock is `vc` by
    /// `writer`: component sums strictly grow along causal chains, so a
    /// causally later write always wins last-writer-wins at every replica;
    /// truly concurrent writes tie-break deterministically by writer id.
    fn stamp_of(vc: &VectorClock, writer: NodeId) -> Version {
        let sum: u64 = (0..vc.len() as NodeId).map(|p| vc.get(p)).sum();
        Version::new(LogicalTime::from_ticks(sum), writer)
    }

    /// Writes locally and pushes the update to every other process.
    ///
    /// # Errors
    ///
    /// Propagates store and transport errors.
    pub fn write(&mut self, object: ObjectId, offset: u32, bytes: &[u8]) -> Result<(), DsoError> {
        let me = self.runtime.node_id();
        self.known.increment(me);
        let stamp = Self::stamp_of(&self.known, me);
        self.runtime.write_local(object, offset, bytes, stamp)?;
        let msg = CausalMsg {
            vc: self.known.clone(),
            object,
            diff: Diff::single(offset, bytes.to_vec()),
        };
        let encoded = sdso_net::wire::encode(&msg).to_vec();
        for peer in 0..self.runtime.num_nodes() as NodeId {
            if peer != me {
                self.runtime.send_app(peer, MsgClass::Data, encoded.clone())?;
            }
        }
        self.metrics.writes_pushed += 1;
        Ok(())
    }

    /// Applies every already-received remote write whose causal
    /// predecessors have been delivered. Non-blocking.
    ///
    /// # Errors
    ///
    /// Propagates transport and store errors.
    pub fn deliver_pending(&mut self) -> Result<usize, DsoError> {
        let mut delivered = 0usize;
        while let Some((from, bytes)) = self.runtime.try_recv_app()? {
            let msg: CausalMsg = sdso_net::wire::decode(&bytes).map_err(DsoError::Net)?;
            delivered += self.enqueue_and_drain(from, msg)?;
        }
        Ok(delivered)
    }

    /// Blocks until at least one remote write has been delivered.
    ///
    /// # Errors
    ///
    /// Propagates transport and store errors.
    pub fn deliver_blocking(&mut self) -> Result<usize, DsoError> {
        loop {
            let (from, bytes) = self.runtime.recv_app()?;
            let msg: CausalMsg = sdso_net::wire::decode(&bytes).map_err(DsoError::Net)?;
            let n = self.enqueue_and_drain(from, msg)?;
            if n > 0 {
                return Ok(n);
            }
        }
    }

    fn enqueue_and_drain(&mut self, from: NodeId, msg: CausalMsg) -> Result<usize, DsoError> {
        if !self.known.is_next_from(&msg.vc, from) {
            self.metrics.delayed += 1;
        }
        self.delay_queue.push((from, msg));
        let mut delivered = 0usize;
        loop {
            let next =
                self.delay_queue.iter().position(|(p, m)| self.known.is_next_from(&m.vc, *p));
            let Some(idx) = next else { break };
            let (p, m) = self.delay_queue.swap_remove(idx);
            // Version-gated application: two concurrent writes to one
            // object resolve by the same (causal-sum, writer) order on
            // every replica, whatever the delivery interleaving.
            let stamp = Self::stamp_of(&m.vc, p);
            self.runtime.apply_remote(m.object, &m.diff, stamp)?;
            self.known.merge(&m.vc);
            self.metrics.delivered += 1;
            delivered += 1;
        }
        Ok(delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdso_core::DsoConfig;
    use sdso_net::memory::{MemoryEndpoint, MemoryHub};

    fn cluster(n: usize) -> Vec<CausalMemory<MemoryEndpoint>> {
        MemoryHub::new(n)
            .into_endpoints()
            .into_iter()
            .map(|ep| {
                let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
                for id in 0..4u32 {
                    rt.share(ObjectId(id), vec![0u8; 4]).unwrap();
                }
                CausalMemory::new(rt)
            })
            .collect()
    }

    #[test]
    fn writes_reach_everyone() {
        let mut nodes = cluster(3);
        nodes[0].write(ObjectId(0), 0, &[7]).unwrap();
        for node in nodes.iter_mut().skip(1) {
            let delivered = node.deliver_blocking().unwrap();
            assert_eq!(delivered, 1);
            assert_eq!(node.read(ObjectId(0)).unwrap()[0], 7);
        }
    }

    #[test]
    fn causal_order_respected_across_forwarders() {
        let mut nodes = cluster(3);
        // w1 at node 0.
        nodes[0].write(ObjectId(0), 0, &[1]).unwrap();
        // Node 1 sees w1, then writes w2 (causally after w1).
        nodes[1].deliver_blocking().unwrap();
        nodes[1].write(ObjectId(1), 0, &[2]).unwrap();
        // Node 2 receives w2 *first* (pull it from the queue before w1 by
        // manipulating arrival: both are in flight; deliverability decides).
        // Regardless of arrival order, after draining everything node 2 has
        // both writes and w2 was never applied before w1.
        let mut total = 0;
        while total < 2 {
            total += nodes[2].deliver_blocking().unwrap();
        }
        assert_eq!(nodes[2].read(ObjectId(0)).unwrap()[0], 1);
        assert_eq!(nodes[2].read(ObjectId(1)).unwrap()[0], 2);
    }

    #[test]
    fn out_of_order_message_is_delayed_not_dropped() {
        let mut nodes = cluster(2);
        // Two writes from node 0; deliver both at node 1 and check both
        // applied in order.
        nodes[0].write(ObjectId(0), 0, &[1]).unwrap();
        nodes[0].write(ObjectId(0), 1, &[2]).unwrap();
        let mut total = 0;
        while total < 2 {
            total += nodes[1].deliver_blocking().unwrap();
        }
        assert_eq!(&nodes[1].read(ObjectId(0)).unwrap()[..2], &[1, 2]);
        assert_eq!(nodes[1].metrics().delivered, 2);
    }

    #[test]
    fn traffic_scales_with_cluster_size() {
        let mut nodes = cluster(3);
        nodes[0].write(ObjectId(0), 0, &[1]).unwrap();
        assert_eq!(nodes[0].runtime().net_metrics().data_sent.msgs, 2, "push to all");
    }
}
