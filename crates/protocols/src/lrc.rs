//! Lazy release consistency (LRC), Treadmarks-style.
//!
//! "With LRC, updates to shared data are propagated when locks are
//! transferred between processes. Unlike EC, LRC has no explicit
//! associations between shared data and synchronization primitives. […]
//! data dependencies are recorded using vector timestamps, and a
//! history-based mechanism determines what data modifications have to be
//! transferred with the lock" (paper §2.3). The paper chose EC over LRC as
//! its baseline precisely because "LRC must include information about
//! changes to all shared data objects" — this implementation exists to
//! quantify that in the Ext. D ablation.
//!
//! Structure: every lock has a statically-placed manager that tracks the
//! lock's last releaser. An acquirer asks the manager, which queues or
//! grants; the grant names the last releaser. The acquirer then sends the
//! releaser its vector timestamp; the releaser replies with every interval
//! (vector-stamped batch of write diffs, its own and relayed third-party
//! ones) the acquirer has not yet seen. Intervals are applied in vector
//! order. Diffs travel eagerly with the intervals (the original system's
//! lazy-diff fetch is a bandwidth optimisation orthogonal to the message
//! pattern measured here).

use std::collections::{BTreeMap, VecDeque};

use sdso_core::{Diff, DsoError, ObjectId, SdsoRuntime, Version};
use sdso_net::wire::{Wire, WireReader, WireWriter};
use sdso_net::{Endpoint, MsgClass, NetError, NodeId, SimSpan};

use crate::vector_clock::VectorClock;

/// A lock identifier (LRC locks are not tied to objects).
pub type LockId = u32;

/// One write inside an interval.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IntervalWrite {
    object: ObjectId,
    diff: Diff,
}

impl Wire for IntervalWrite {
    fn encode(&self, w: &mut WireWriter) {
        self.object.encode(w);
        self.diff.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(IntervalWrite { object: ObjectId::decode(r)?, diff: Diff::decode(r)? })
    }
}

/// A vector-stamped batch of writes performed by one process between two
/// release points.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Interval {
    owner: NodeId,
    /// The owner's interval index (its own vector component).
    index: u64,
    /// The owner's full vector clock at the closing release: the causal
    /// position of this interval. Receivers apply intervals in an order
    /// extending this partial order (component sums), so a write from an
    /// earlier lock epoch can never land on top of a later one.
    vc: VectorClock,
    writes: Vec<IntervalWrite>,
}

impl Interval {
    /// A total-order key extending the causal partial order: if interval a
    /// happened-before b then `a.vc` is componentwise ≤ with a strictly
    /// smaller sum. Concurrent intervals (true data races under LRC) order
    /// deterministically by owner.
    fn causal_key(&self) -> (u64, NodeId, u64) {
        let sum: u64 = (0..self.vc.len() as NodeId).map(|p| self.vc.get(p)).sum();
        (sum, self.owner, self.index)
    }
}

impl Wire for Interval {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u16(self.owner);
        w.put_u64(self.index);
        self.vc.encode(w);
        w.put_seq(&self.writes, |w, iw| iw.encode(w));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(Interval {
            owner: r.get_u16()?,
            index: r.get_u64()?,
            vc: VectorClock::decode(r)?,
            writes: r.get_seq(IntervalWrite::decode)?,
        })
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum LrcMessage {
    /// To a lock's manager.
    Acquire { lock: LockId },
    /// Manager → acquirer: the lock is yours; sync with `last_releaser`
    /// (`u16::MAX` when the lock was never released — nothing to fetch).
    Grant { lock: LockId, last_releaser: NodeId },
    /// Acquirer → last releaser: send me what I lack (my vector enclosed).
    IntervalReq { vc: VectorClock },
    /// Releaser → acquirer: the missing intervals.
    Intervals { intervals: Vec<Interval> },
    /// To the manager: done with the lock.
    Release { lock: LockId },
    /// Fixed-length runs: the sender finished its iterations.
    Done,
}

const TAG_ACQUIRE: u8 = 1;
const TAG_GRANT: u8 = 2;
const TAG_IREQ: u8 = 3;
const TAG_INTERVALS: u8 = 4;
const TAG_RELEASE: u8 = 5;
const TAG_DONE: u8 = 6;

impl Wire for LrcMessage {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            LrcMessage::Acquire { lock } => {
                w.put_u8(TAG_ACQUIRE);
                w.put_u32(*lock);
            }
            LrcMessage::Grant { lock, last_releaser } => {
                w.put_u8(TAG_GRANT);
                w.put_u32(*lock);
                w.put_u16(*last_releaser);
            }
            LrcMessage::IntervalReq { vc } => {
                w.put_u8(TAG_IREQ);
                vc.encode(w);
            }
            LrcMessage::Intervals { intervals } => {
                w.put_u8(TAG_INTERVALS);
                w.put_seq(intervals, |w, i| i.encode(w));
            }
            LrcMessage::Release { lock } => {
                w.put_u8(TAG_RELEASE);
                w.put_u32(*lock);
            }
            LrcMessage::Done => w.put_u8(TAG_DONE),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        match r.get_u8()? {
            TAG_ACQUIRE => Ok(LrcMessage::Acquire { lock: r.get_u32()? }),
            TAG_GRANT => Ok(LrcMessage::Grant { lock: r.get_u32()?, last_releaser: r.get_u16()? }),
            TAG_IREQ => Ok(LrcMessage::IntervalReq { vc: VectorClock::decode(r)? }),
            TAG_INTERVALS => Ok(LrcMessage::Intervals { intervals: r.get_seq(Interval::decode)? }),
            TAG_RELEASE => Ok(LrcMessage::Release { lock: r.get_u32()? }),
            TAG_DONE => Ok(LrcMessage::Done),
            tag => Err(NetError::Codec(format!("unknown LrcMessage tag {tag:#x}"))),
        }
    }
}

/// Manager-side state of one LRC lock.
#[derive(Debug)]
struct ManagedLock {
    held_by: Option<NodeId>,
    queue: VecDeque<NodeId>,
    last_releaser: Option<NodeId>,
}

impl ManagedLock {
    fn new() -> Self {
        ManagedLock { held_by: None, queue: VecDeque::new(), last_releaser: None }
    }
}

/// LRC protocol counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LrcMetrics {
    /// Lock acquisitions completed.
    pub acquires: u64,
    /// Intervals shipped to other processes.
    pub intervals_sent: u64,
    /// Intervals received and applied.
    pub intervals_applied: u64,
    /// Time blocked waiting for grants and interval transfers.
    pub lock_wait: SimSpan,
}

/// One process of an LRC application.
#[derive(Debug)]
pub struct Lrc<E: Endpoint> {
    runtime: SdsoRuntime<E>,
    vc: VectorClock,
    /// Writes of the current (open) interval.
    open_writes: BTreeMap<ObjectId, Diff>,
    /// Every interval this process knows (its own and relayed), keyed by
    /// (owner, index).
    log: BTreeMap<(NodeId, u64), Interval>,
    managed: BTreeMap<LockId, ManagedLock>,
    /// Grants received, keyed by lock.
    grants: BTreeMap<LockId, NodeId>,
    /// Interval bundles received (from a releaser) awaiting the acquire
    /// that requested them.
    interval_replies: VecDeque<Vec<Interval>>,
    dones_seen: usize,
    metrics: LrcMetrics,
}

impl<E: Endpoint> Lrc<E> {
    /// Wraps a runtime whose objects are already shared.
    pub fn new(runtime: SdsoRuntime<E>) -> Self {
        let n = runtime.num_nodes();
        Lrc {
            runtime,
            vc: VectorClock::new(n),
            open_writes: BTreeMap::new(),
            log: BTreeMap::new(),
            managed: BTreeMap::new(),
            grants: BTreeMap::new(),
            interval_replies: VecDeque::new(),
            dones_seen: 0,
            metrics: LrcMetrics::default(),
        }
    }

    /// The lock manager of `lock` in a cluster of `n`.
    pub fn manager_of(lock: LockId, n: usize) -> NodeId {
        (lock % n as u32) as NodeId
    }

    /// The underlying runtime.
    pub fn runtime(&self) -> &SdsoRuntime<E> {
        &self.runtime
    }

    /// Mutable runtime access.
    pub fn runtime_mut(&mut self) -> &mut SdsoRuntime<E> {
        &mut self.runtime
    }

    /// Protocol counters.
    pub fn metrics(&self) -> LrcMetrics {
        self.metrics
    }

    /// Reads an object's local replica.
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::UnknownObject`] for unshared objects.
    pub fn read(&self, object: ObjectId) -> Result<&[u8], DsoError> {
        self.runtime.read(object)
    }

    /// Writes into the current interval (call between acquire and release).
    ///
    /// # Errors
    ///
    /// Propagates store errors.
    pub fn write(&mut self, object: ObjectId, offset: u32, bytes: &[u8]) -> Result<(), DsoError> {
        let me = self.runtime.node_id();
        let stamp = Version::new(sdso_core::LogicalTime::from_ticks(self.vc.get(me) + 1), me);
        self.runtime.write_local(object, offset, bytes, stamp)?;
        let diff = Diff::single(offset, bytes.to_vec());
        let entry = self.open_writes.entry(object).or_default();
        *entry = entry.merge(&diff);
        Ok(())
    }

    /// Acquires `lock`, fetching and applying every interval the last
    /// releaser has that this process lacks.
    ///
    /// # Errors
    ///
    /// Propagates transport and store errors.
    pub fn acquire(&mut self, lock: LockId) -> Result<(), DsoError> {
        let me = self.runtime.node_id();
        let n = self.runtime.num_nodes();
        let manager = Self::manager_of(lock, n);
        let wait_start = self.runtime.now();
        if manager == me {
            self.handle(me, LrcMessage::Acquire { lock })?;
        } else {
            self.send(manager, MsgClass::Control, LrcMessage::Acquire { lock })?;
        }
        let releaser = loop {
            if let Some(releaser) = self.grants.remove(&lock) {
                break releaser;
            }
            self.pump_one()?;
        };
        if releaser != u16::MAX && releaser != me {
            self.send(
                releaser,
                MsgClass::Control,
                LrcMessage::IntervalReq { vc: self.vc.clone() },
            )?;
            let intervals = loop {
                if let Some(intervals) = self.interval_replies.pop_front() {
                    break intervals;
                }
                self.pump_one()?;
            };
            self.apply_intervals(intervals)?;
        }
        self.metrics.lock_wait += self.runtime.now().saturating_since(wait_start);
        self.metrics.acquires += 1;
        Ok(())
    }

    /// Releases `lock`, closing the current interval.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn release(&mut self, lock: LockId) -> Result<(), DsoError> {
        let me = self.runtime.node_id();
        let n = self.runtime.num_nodes();
        // Close the interval: even an empty one advances the vector so
        // acquirers can tell releases apart.
        self.vc.increment(me);
        let index = self.vc.get(me);
        let writes = std::mem::take(&mut self.open_writes)
            .into_iter()
            .map(|(object, diff)| IntervalWrite { object, diff })
            .collect();
        self.log.insert((me, index), Interval { owner: me, index, vc: self.vc.clone(), writes });

        let manager = Self::manager_of(lock, n);
        if manager == me {
            self.handle(me, LrcMessage::Release { lock })?;
        } else {
            self.send(manager, MsgClass::Control, LrcMessage::Release { lock })?;
        }
        Ok(())
    }

    /// Announces the end of this process's run, then keeps serving lock
    /// and interval traffic until every other process has announced too.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn finish(&mut self) -> Result<(), DsoError> {
        let me = self.runtime.node_id();
        for peer in 0..self.runtime.num_nodes() as NodeId {
            if peer != me {
                self.send(peer, MsgClass::Control, LrcMessage::Done)?;
            }
        }
        while self.dones_seen < self.runtime.num_nodes() - 1 {
            self.pump_one()?;
        }
        Ok(())
    }

    /// Services any pending protocol traffic without blocking.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn service_pending(&mut self) -> Result<(), DsoError> {
        while let Some((from, bytes)) = self.runtime.try_recv_app()? {
            let msg = sdso_net::wire::decode(&bytes).map_err(DsoError::Net)?;
            self.handle(from, msg)?;
        }
        Ok(())
    }

    fn pump_one(&mut self) -> Result<(), DsoError> {
        let (from, bytes) = self.runtime.recv_app()?;
        let msg = sdso_net::wire::decode(&bytes).map_err(DsoError::Net)?;
        self.handle(from, msg)
    }

    fn handle(&mut self, from: NodeId, msg: LrcMessage) -> Result<(), DsoError> {
        match msg {
            LrcMessage::Acquire { lock } => {
                let state = self.managed.entry(lock).or_insert_with(ManagedLock::new);
                if state.held_by.is_none() && state.queue.is_empty() {
                    state.held_by = Some(from);
                    let releaser = state.last_releaser.unwrap_or(u16::MAX);
                    self.deliver_grant(from, lock, releaser)?;
                } else {
                    state.queue.push_back(from);
                }
                Ok(())
            }
            LrcMessage::Release { lock } => {
                let state = self.managed.entry(lock).or_insert_with(ManagedLock::new);
                state.last_releaser = Some(from);
                state.held_by = None;
                if let Some(next) = state.queue.pop_front() {
                    state.held_by = Some(next);
                    let releaser = state.last_releaser.unwrap_or(u16::MAX);
                    self.deliver_grant(next, lock, releaser)?;
                }
                Ok(())
            }
            LrcMessage::Grant { lock, last_releaser } => {
                self.grants.insert(lock, last_releaser);
                Ok(())
            }
            LrcMessage::IntervalReq { vc } => {
                // Ship every interval the requester lacks, in (owner, index)
                // order. LRC "must include information about changes to all
                // shared data objects" — this is exactly the cost the paper
                // calls out.
                let missing: Vec<Interval> =
                    self.log.values().filter(|i| i.index > vc.get(i.owner)).cloned().collect();
                self.metrics.intervals_sent += missing.len() as u64;
                self.send(from, MsgClass::Data, LrcMessage::Intervals { intervals: missing })
            }
            LrcMessage::Intervals { intervals } => {
                self.interval_replies.push_back(intervals);
                Ok(())
            }
            LrcMessage::Done => {
                self.dones_seen += 1;
                Ok(())
            }
        }
    }

    fn apply_intervals(&mut self, intervals: Vec<Interval>) -> Result<(), DsoError> {
        // Apply in causal order (vector sums extend the happened-before
        // partial order along lock chains); truly concurrent intervals are
        // unsynchronised races whose outcome LRC leaves to the application,
        // resolved here deterministically by owner id.
        let mut sorted = intervals;
        sorted.sort_by_key(Interval::causal_key);
        for interval in sorted {
            if interval.index <= self.vc.get(interval.owner) {
                continue; // already seen
            }
            let (sum, owner, _) = interval.causal_key();
            let stamp = Version::new(sdso_core::LogicalTime::from_ticks(sum), owner);
            for write in &interval.writes {
                // Version-gated: a concurrent interval with a smaller causal
                // key must not overwrite a larger one that was applied in an
                // earlier fetch — every replica resolves the race the same
                // way.
                self.runtime.apply_remote(write.object, &write.diff, stamp)?;
            }
            self.metrics.intervals_applied += 1;
            // Advance knowledge to cover the whole interval and record it
            // for relay to later acquirers.
            self.vc.merge(&interval.vc);
            self.log.insert((interval.owner, interval.index), interval);
        }
        Ok(())
    }

    fn deliver_grant(
        &mut self,
        to: NodeId,
        lock: LockId,
        releaser: NodeId,
    ) -> Result<(), DsoError> {
        if to == self.runtime.node_id() {
            self.grants.insert(lock, releaser);
            Ok(())
        } else {
            self.send(to, MsgClass::Control, LrcMessage::Grant { lock, last_releaser: releaser })
        }
    }

    fn send(&mut self, to: NodeId, class: MsgClass, msg: LrcMessage) -> Result<(), DsoError> {
        let bytes = sdso_net::wire::encode(&msg).to_vec();
        self.runtime.send_app(to, class, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdso_core::DsoConfig;
    use sdso_net::memory::{MemoryEndpoint, MemoryHub};

    fn cluster(n: usize) -> Vec<Lrc<MemoryEndpoint>> {
        MemoryHub::new(n)
            .into_endpoints()
            .into_iter()
            .map(|ep| {
                let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
                for id in 0..4u32 {
                    rt.share(ObjectId(id), vec![0u8; 4]).unwrap();
                }
                Lrc::new(rt)
            })
            .collect()
    }

    #[test]
    fn message_wire_roundtrip() {
        let msgs = [
            LrcMessage::Acquire { lock: 3 },
            LrcMessage::Grant { lock: 3, last_releaser: 1 },
            LrcMessage::IntervalReq { vc: VectorClock::new(2) },
            LrcMessage::Intervals {
                intervals: vec![Interval {
                    owner: 1,
                    index: 4,
                    vc: VectorClock::new(2),
                    writes: vec![IntervalWrite {
                        object: ObjectId(2),
                        diff: Diff::single(0, vec![1]),
                    }],
                }],
            },
            LrcMessage::Release { lock: 3 },
        ];
        for msg in msgs {
            let decoded: LrcMessage =
                sdso_net::wire::decode(&sdso_net::wire::encode(&msg)).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn lock_transfer_carries_updates() {
        let mut nodes = cluster(2);
        let mut n1 = nodes.pop().unwrap();
        let mut n0 = nodes.pop().unwrap();
        // Lock 0 is managed by node 0.
        n0.acquire(0).unwrap();
        n0.write(ObjectId(1), 0, &[5]).unwrap();
        n0.release(0).unwrap();

        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let t = std::thread::spawn(move || {
            n1.acquire(0).unwrap();
            assert_eq!(n1.read(ObjectId(1)).unwrap()[0], 5, "update travelled with lock");
            n1.release(0).unwrap();
            done_tx.send(()).unwrap();
            n1
        });
        while done_rx.try_recv().is_err() {
            n0.service_pending().unwrap();
            std::thread::yield_now();
        }
        let n1 = t.join().unwrap();
        assert_eq!(n1.metrics().intervals_applied, 1);
        assert!(n0.metrics().intervals_sent >= 1);
    }

    #[test]
    fn second_acquire_does_not_refetch_seen_intervals() {
        let mut nodes = cluster(1);
        let node = &mut nodes[0];
        node.acquire(0).unwrap();
        node.write(ObjectId(0), 0, &[1]).unwrap();
        node.release(0).unwrap();
        // Re-acquiring our own lock needs no interval transfer.
        node.acquire(0).unwrap();
        node.release(0).unwrap();
        assert_eq!(node.metrics().intervals_applied, 0);
        assert_eq!(node.runtime().net_metrics().total_sent(), 0);
    }

    #[test]
    fn empty_interval_still_closes_epoch() {
        let mut nodes = cluster(1);
        let node = &mut nodes[0];
        node.acquire(7).unwrap();
        node.release(7).unwrap();
        assert_eq!(node.vc.get(0), 1, "release advances the vector");
    }
}
