//! Entry consistency (EC), the paper's lock-based baseline.
//!
//! Implemented "as efficiently as possible within the framework of S-DSO"
//! (paper §4): each object is associated with one lock; lock managers are
//! distributed evenly and statically across the processes (the manager of
//! object *k* is process *k mod n*); each manager maintains the queue of
//! pending requests and the identity of the owner of the most up-to-date
//! object copy. Processes acquire exclusive write-locks or shared
//! read-locks; acquiring a lock "ensures that updates to the locked object
//! are pulled from the owner of the up-to-date copy" via `sync_get`.
//!
//! Deadlock prevention follows the enhancement the paper says lock-based
//! protocols need: locksets are acquired in totally-ordered (object-id)
//! order. While waiting for its own grants, a process keeps servicing other
//! processes' lock traffic and object pulls, so managers never stall the
//! cluster.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use sdso_core::{
    Diff, DsoError, Epoch, LogicalTime, Never, ObjectId, SdsoRuntime, Version, ViewChange,
};
use sdso_net::wire::{Wire, WireReader, WireWriter};
use sdso_net::{Endpoint, EventKind, MsgClass, NetError, NodeId, SimSpan};

/// The `mode` operand for flight-recorder lock events.
fn obs_mode(mode: LockMode) -> u32 {
    match mode {
        LockMode::Read => 0,
        LockMode::Write => 1,
    }
}

/// Lock acquisition modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockMode {
    /// Shared read lock: any number of concurrent readers.
    Read,
    /// Exclusive write lock.
    Write,
}

impl Wire for LockMode {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(match self {
            LockMode::Read => 0,
            LockMode::Write => 1,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        match r.get_u8()? {
            0 => Ok(LockMode::Read),
            1 => Ok(LockMode::Write),
            b => Err(NetError::Codec(format!("invalid lock mode {b:#x}"))),
        }
    }
}

/// One entry of a lockset: which object, in which mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockRequest {
    /// The object to lock.
    pub object: ObjectId,
    /// Read or write.
    pub mode: LockMode,
}

impl LockRequest {
    /// A shared-read request.
    pub fn read(object: ObjectId) -> Self {
        LockRequest { object, mode: LockMode::Read }
    }

    /// An exclusive-write request.
    pub fn write(object: ObjectId) -> Self {
        LockRequest { object, mode: LockMode::Write }
    }
}

/// EC's wire messages (all control class, per the paper's accounting).
///
/// `Acquire` and `SyncDone` carry the sender's membership epoch: both can
/// legitimately arrive from a process that has already crossed a
/// view-change barrier this manager is still waiting in, and acting on
/// them under the doomed pre-change lock state would lose the grant (or
/// mis-count the barrier). Future-epoch copies are deferred until
/// [`EntryConsistency::apply_view_change`] brings this process level.
#[derive(Debug, Clone, PartialEq, Eq)]
enum EcMessage {
    Acquire {
        object: ObjectId,
        mode: LockMode,
        epoch: Epoch,
    },
    Grant {
        object: ObjectId,
        owner: NodeId,
        version: Version,
    },
    Release {
        object: ObjectId,
        modified: bool,
        version: Version,
    },
    /// Fixed-length runs: "I have finished my iterations but keep serving".
    Done,
    /// Final-sync push: the full body of an object this process wrote
    /// last, so every replica converges before the final snapshot.
    State {
        object: ObjectId,
        version: Version,
        bytes: Vec<u8>,
    },
    /// Final-sync barrier: "I have pushed all my owned state".
    SyncDone {
        epoch: Epoch,
    },
}

const TAG_ACQUIRE: u8 = 1;
const TAG_GRANT: u8 = 2;
const TAG_RELEASE: u8 = 3;
const TAG_DONE: u8 = 4;
const TAG_STATE: u8 = 5;
const TAG_SYNC_DONE: u8 = 6;

impl Wire for EcMessage {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            EcMessage::Acquire { object, mode, epoch } => {
                w.put_u8(TAG_ACQUIRE);
                object.encode(w);
                mode.encode(w);
                w.put_u32(epoch.0);
            }
            EcMessage::Grant { object, owner, version } => {
                w.put_u8(TAG_GRANT);
                object.encode(w);
                w.put_u16(*owner);
                version.encode(w);
            }
            EcMessage::Release { object, modified, version } => {
                w.put_u8(TAG_RELEASE);
                object.encode(w);
                w.put_bool(*modified);
                version.encode(w);
            }
            EcMessage::Done => w.put_u8(TAG_DONE),
            EcMessage::State { object, version, bytes } => {
                w.put_u8(TAG_STATE);
                object.encode(w);
                version.encode(w);
                w.put_bytes(bytes);
            }
            EcMessage::SyncDone { epoch } => {
                w.put_u8(TAG_SYNC_DONE);
                w.put_u32(epoch.0);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        match r.get_u8()? {
            TAG_ACQUIRE => Ok(EcMessage::Acquire {
                object: ObjectId::decode(r)?,
                mode: LockMode::decode(r)?,
                epoch: Epoch(r.get_u32()?),
            }),
            TAG_GRANT => Ok(EcMessage::Grant {
                object: ObjectId::decode(r)?,
                owner: r.get_u16()?,
                version: Version::decode(r)?,
            }),
            TAG_RELEASE => Ok(EcMessage::Release {
                object: ObjectId::decode(r)?,
                modified: r.get_bool()?,
                version: Version::decode(r)?,
            }),
            TAG_DONE => Ok(EcMessage::Done),
            TAG_STATE => Ok(EcMessage::State {
                object: ObjectId::decode(r)?,
                version: Version::decode(r)?,
                bytes: r.get_bytes()?.to_vec(),
            }),
            TAG_SYNC_DONE => Ok(EcMessage::SyncDone { epoch: Epoch(r.get_u32()?) }),
            tag => Err(NetError::Codec(format!("unknown EcMessage tag {tag:#x}"))),
        }
    }
}

/// Manager-side state of one lock.
#[derive(Debug)]
struct ManagedLock {
    readers: BTreeSet<NodeId>,
    writer: Option<NodeId>,
    queue: VecDeque<(NodeId, LockMode)>,
    /// The process holding the most up-to-date copy, and its version.
    owner: NodeId,
    version: Version,
}

impl ManagedLock {
    fn new(manager: NodeId) -> Self {
        ManagedLock {
            readers: BTreeSet::new(),
            writer: None,
            queue: VecDeque::new(),
            owner: manager,
            version: Version::INITIAL,
        }
    }

    fn compatible(&self, mode: LockMode) -> bool {
        match mode {
            LockMode::Read => self.writer.is_none(),
            LockMode::Write => self.writer.is_none() && self.readers.is_empty(),
        }
    }

    fn add_holder(&mut self, who: NodeId, mode: LockMode) {
        match mode {
            LockMode::Read => {
                self.readers.insert(who);
            }
            LockMode::Write => self.writer = Some(who),
        }
    }

    fn remove_holder(&mut self, who: NodeId) {
        if self.writer == Some(who) {
            self.writer = None;
        } else {
            self.readers.remove(&who);
        }
    }
}

/// Entry-consistency protocol counters (the inputs to the paper's Fig. 8
/// overhead breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EcMetrics {
    /// Locks acquired in total.
    pub acquires: u64,
    /// Acquires satisfied by the manager-local fast path (no messages).
    pub local_grants: u64,
    /// Object bodies pulled from owners after grants.
    pub pulls: u64,
    /// Time from sending a lockset's first request until all its grants
    /// arrived (excludes pull time).
    pub lock_wait: SimSpan,
    /// Time spent pulling object bodies from owners.
    pub pull_time: SimSpan,
}

impl EcMetrics {
    /// Element-wise sum for cluster-wide aggregation.
    pub fn merged(&self, other: &EcMetrics) -> EcMetrics {
        EcMetrics {
            acquires: self.acquires + other.acquires,
            local_grants: self.local_grants + other.local_grants,
            pulls: self.pulls + other.pulls,
            lock_wait: self.lock_wait + other.lock_wait,
            pull_time: self.pull_time + other.pull_time,
        }
    }
}

/// A pluggable lock-manager placement policy: maps an object to a
/// placement key, and the manager becomes the live member at
/// `key mod |members|` (ascending node-id order).
///
/// The default (no policy) is the paper's even spread, `key = object id`.
/// A *region-aware* policy maps every object of one spatial region to the
/// same key (e.g. `sdso_shard::RegionLattice::region_of_object`), so a
/// lockset of adjacent cells talks to one or two managers instead of
/// scattering across the cluster — the manager-placement analogue of the
/// region sharding the lookahead family gets from interest routing.
///
/// Every process of a cluster must install the same policy: both the
/// requester and the manager evaluate it, and a disagreement strands lock
/// requests at a process that does not consider itself the manager.
#[derive(Clone)]
pub struct Placement(std::sync::Arc<dyn Fn(ObjectId) -> u32 + Send + Sync>);

impl Placement {
    /// Wraps a placement-key function.
    pub fn new(f: impl Fn(ObjectId) -> u32 + Send + Sync + 'static) -> Self {
        Placement(std::sync::Arc::new(f))
    }

    /// The placement key of `object`.
    pub fn key(&self, object: ObjectId) -> u32 {
        (self.0)(object)
    }
}

impl std::fmt::Debug for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Placement(..)")
    }
}

/// One process of an entry-consistent application.
///
/// The typical iteration mirrors the paper's game loop:
///
/// 1. [`EntryConsistency::acquire`] a sorted lockset (reads for the visible
///    range, writes for the cells a move may touch);
/// 2. read replicas and decide;
/// 3. [`EntryConsistency::write`] under the write locks;
/// 4. [`EntryConsistency::release_all`] (owners recorded at the managers).
#[derive(Debug)]
pub struct EntryConsistency<E: Endpoint> {
    runtime: SdsoRuntime<E>,
    /// Manager-placement policy; `None` is the paper's `object mod n`.
    placement: Option<Placement>,
    /// Manager-route overrides: statically placed manager → the process
    /// actually serving its lock duties (a replica group's current
    /// leader). Single-hop, applied after placement.
    route: BTreeMap<NodeId, NodeId>,
    managed: BTreeMap<ObjectId, ManagedLock>,
    /// Grants received but not yet consumed by `acquire`.
    granted: BTreeMap<ObjectId, (NodeId, Version)>,
    /// Locks currently held by this process.
    held: BTreeMap<ObjectId, LockMode>,
    /// Peers that have announced the end of their run.
    dones_seen: usize,
    /// Peers that have completed their final-sync state pushes.
    sync_dones_seen: usize,
    /// Epoch-stamped messages from peers that already crossed a
    /// view-change barrier this process has not reached yet; drained
    /// after [`EntryConsistency::apply_view_change`].
    deferred: VecDeque<(NodeId, EcMessage)>,
    metrics: EcMetrics,
}

impl<E: Endpoint> EntryConsistency<E> {
    /// Wraps a runtime whose objects are already shared.
    pub fn new(runtime: SdsoRuntime<E>) -> Self {
        EntryConsistency {
            runtime,
            placement: None,
            route: BTreeMap::new(),
            managed: BTreeMap::new(),
            granted: BTreeMap::new(),
            held: BTreeMap::new(),
            dones_seen: 0,
            sync_dones_seen: 0,
            deferred: VecDeque::new(),
            metrics: EcMetrics::default(),
        }
    }

    /// The manager of `object` in a cluster of `n`: process `object mod n`
    /// ("the lock managers are distributed evenly and statically amongst
    /// the processors"). The static-membership special case of
    /// [`EntryConsistency::manager_of_view`].
    pub fn manager_of(object: ObjectId, n: usize) -> NodeId {
        (object.0 % n as u32) as NodeId
    }

    /// Installs a manager-[`Placement`] policy. Must be called before the
    /// first acquire, with the identical policy on every process.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = Some(placement);
        self
    }

    /// The manager of `object` under the current membership view: the live
    /// members sorted ascending, indexed by the object's placement key
    /// (its raw id without a [`Placement`] policy) `mod |members|`. With
    /// the full static group and no policy this reduces to the paper's
    /// `object mod n`; under churn the mapping re-distributes manager
    /// duty over exactly the processes that exist.
    pub fn manager_of_view(&self, object: ObjectId) -> NodeId {
        let members = self.runtime.membership().members();
        let key = match &self.placement {
            Some(p) => p.key(object),
            None => object.0,
        };
        let idx = key as usize % members.len();
        // The index is in range by construction; a view always contains at
        // least this process, so the fallback cannot be reached.
        let placed = members.iter().copied().nth(idx).unwrap_or_else(|| self.runtime.node_id());
        self.route.get(&placed).copied().unwrap_or(placed)
    }

    /// Redirects lock traffic for every object statically placed at
    /// `placed` toward `leader` (`None` clears the override). This is how
    /// a crash-tolerant deployment keeps EC's lock RPCs pointed at a
    /// replica group's *current* leader: placement stays static, the
    /// route table follows elections.
    ///
    /// Like [`Placement`], every process must install the same routes —
    /// both the requester and the serving process evaluate
    /// [`EntryConsistency::manager_of_view`], and a disagreement strands
    /// lock requests at a process that does not consider itself the
    /// manager. Routes are single-hop: a redirect's target is used as-is,
    /// never re-looked-up.
    pub fn set_manager_route(&mut self, placed: NodeId, leader: Option<NodeId>) {
        match leader {
            Some(to) => {
                self.route.insert(placed, to);
            }
            None => {
                self.route.remove(&placed);
            }
        }
    }

    /// The installed manager-route overrides.
    pub fn manager_routes(&self) -> &BTreeMap<NodeId, NodeId> {
        &self.route
    }

    /// The underlying runtime (object reads, metrics).
    pub fn runtime(&self) -> &SdsoRuntime<E> {
        &self.runtime
    }

    /// Mutable runtime access.
    pub fn runtime_mut(&mut self) -> &mut SdsoRuntime<E> {
        &mut self.runtime
    }

    /// Dismantles the lock layer, returning the underlying runtime. Any
    /// outstanding grants or queued requests are abandoned — callers model
    /// a process that stops participating abruptly (crash-fault paths) or
    /// one that has already released everything.
    pub fn into_runtime(self) -> SdsoRuntime<E> {
        self.runtime
    }

    /// Protocol counters.
    pub fn metrics(&self) -> EcMetrics {
        self.metrics
    }

    /// Acquires every lock in `locks`, in ascending object-id order
    /// (deadlock prevention by total ordering), pulling stale object copies
    /// from their owners as grants arrive.
    ///
    /// # Errors
    ///
    /// Propagates transport failures; duplicate objects in one lockset, or
    /// a request for a lock this process already holds (locksets do not
    /// nest), are a [`DsoError::ProtocolViolation`].
    pub fn acquire(&mut self, locks: &[LockRequest]) -> Result<(), DsoError> {
        let mut sorted = locks.to_vec();
        sorted.sort_by_key(|l| l.object);
        for pair in sorted.windows(2) {
            if pair[0].object == pair[1].object {
                return Err(DsoError::ProtocolViolation(format!(
                    "lockset contains {} twice",
                    pair[0].object
                )));
            }
        }
        let me = self.runtime.node_id();
        for req in sorted {
            if self.held.contains_key(&req.object) {
                return Err(DsoError::ProtocolViolation(format!(
                    "lock {} already held; locksets do not nest",
                    req.object
                )));
            }
            let wait_start = self.runtime.now();
            self.runtime.obs().record(
                wait_start.as_micros(),
                EventKind::LockAcquire,
                req.object.0,
                obs_mode(req.mode),
                0,
            );
            let manager = self.manager_of_view(req.object);
            if manager == me {
                self.metrics.local_grants += 1;
                self.local_acquire(req.object, req.mode)?;
            } else {
                let epoch = self.runtime.epoch();
                self.send_ec(
                    manager,
                    EcMessage::Acquire { object: req.object, mode: req.mode, epoch },
                )?;
            }
            // Wait for the grant (self-grants land in `granted` too).
            let (owner, version) = loop {
                if let Some(grant) = self.granted.remove(&req.object) {
                    break grant;
                }
                self.pump_one()?;
            };
            let granted_at = self.runtime.now();
            self.runtime.obs().record(
                granted_at.as_micros(),
                EventKind::LockGrant,
                req.object.0,
                obs_mode(req.mode),
                0,
            );
            self.metrics.lock_wait += granted_at.saturating_since(wait_start);
            self.metrics.acquires += 1;
            self.held.insert(req.object, req.mode);
            // Pull the up-to-date copy if ours is stale.
            if owner != me && version > self.runtime.version_of(req.object)? {
                let pull_start = self.runtime.now();
                self.runtime.sync_get(owner, req.object)?;
                self.metrics.pulls += 1;
                self.metrics.pull_time += self.runtime.now().saturating_since(pull_start);
            }
        }
        Ok(())
    }

    /// Writes under a held write lock, bumping the object's version.
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::ProtocolViolation`] if the write lock is not
    /// held, plus any store error.
    pub fn write(&mut self, object: ObjectId, offset: u32, bytes: &[u8]) -> Result<(), DsoError> {
        if self.held.get(&object) != Some(&LockMode::Write) {
            return Err(DsoError::ProtocolViolation(format!(
                "write to {object} without an exclusive lock"
            )));
        }
        let me = self.runtime.node_id();
        let old = self.runtime.version_of(object)?;
        let version = Version::new(LogicalTime::from_ticks(old.time.as_ticks() + 1), me);
        self.runtime.write_local(object, offset, bytes, version)
    }

    /// Reads an object (valid for any held lock; EC only guarantees
    /// freshness for objects in the current lockset).
    ///
    /// # Errors
    ///
    /// Returns [`DsoError::UnknownObject`] for unshared objects.
    pub fn read(&self, object: ObjectId) -> Result<&[u8], DsoError> {
        self.runtime.read(object)
    }

    /// Releases every held lock, telling each manager whether the object
    /// was modified (so it can update the owner pointer).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn release_all(&mut self, modified: &BTreeSet<ObjectId>) -> Result<(), DsoError> {
        let me = self.runtime.node_id();
        let held = std::mem::take(&mut self.held);
        for (object, _mode) in held {
            self.runtime.obs().record(
                self.runtime.now().as_micros(),
                EventKind::LockRelease,
                object.0,
                0,
                0,
            );
            let was_modified = modified.contains(&object);
            let version = self.runtime.version_of(object)?;
            let manager = self.manager_of_view(object);
            if manager == me {
                self.local_release(object, me, was_modified, version)?;
            } else {
                self.send_ec(
                    manager,
                    EcMessage::Release { object, modified: was_modified, version },
                )?;
            }
        }
        Ok(())
    }

    /// Announces the end of this process's run, then keeps serving manager
    /// duties (grants, releases, pulls) until every other process has
    /// announced too. Required for fixed-length runs: a finished process
    /// may still manage locks and own up-to-date copies that others need.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn finish(&mut self) -> Result<(), DsoError> {
        let me = self.runtime.node_id();
        let peers = self.runtime.membership().peers_of(me);
        for &peer in &peers {
            self.send_ec(peer, EcMessage::Done)?;
        }
        while self.dones_seen < peers.len() {
            self.pump_one()?;
        }
        Ok(())
    }

    /// Disseminates final object state so every replica converges before
    /// its terminal snapshot. Must be called after [`EntryConsistency::finish`]
    /// (every process has stopped iterating).
    ///
    /// Each process pushes the full body of every object whose replica it
    /// wrote last — by construction the globally newest version of an
    /// object lives at its writer — and receivers apply it version-gated.
    /// A second barrier (`SyncDone`) keeps everyone serving until all
    /// pushes have landed. The pushes are control-class termination
    /// traffic, not part of the paper's measured data exchange.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn final_sync(&mut self) -> Result<(), DsoError> {
        self.view_sync()
    }

    /// Flush barrier over the current view: every member pushes its
    /// last-written object bodies and waits for every other member's
    /// pushes, leaving all live replicas convergent. Reusable — the
    /// barrier counter resets on completion — so churn drivers run one
    /// flush per view change (with no locks held) before
    /// [`EntryConsistency::apply_view_change`], and a leaver's newest
    /// writes are disseminated before it exits.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn view_sync(&mut self) -> Result<(), DsoError> {
        let me = self.runtime.node_id();
        let peers = self.runtime.membership().peers_of(me);
        for object in self.runtime.object_ids() {
            let version = self.runtime.version_of(object)?;
            if version.writer != me || version.time == LogicalTime::ZERO {
                continue;
            }
            let bytes = self.runtime.read(object)?.to_vec();
            for &peer in &peers {
                self.send_ec(peer, EcMessage::State { object, version, bytes: bytes.clone() })?;
            }
        }
        let epoch = self.runtime.epoch();
        for &peer in &peers {
            self.send_ec(peer, EcMessage::SyncDone { epoch })?;
        }
        while self.sync_dones_seen < peers.len() {
            self.pump_one()?;
        }
        self.sync_dones_seen = 0;
        Ok(())
    }

    /// Applies one membership change at a view-change barrier.
    ///
    /// Contract: every member of the *old* view has completed a
    /// [`EntryConsistency::view_sync`] flush with no locks held, so all
    /// live replicas hold the newest copy of every object and no lock or
    /// pull traffic is in flight. Under that contract lock state restarts
    /// from scratch in the new view: a leaver's holds and queue entries
    /// are implicitly revoked, and ownership of every object transfers to
    /// its (re-mapped) manager. The fresh `Version::INITIAL` owner floor
    /// is correct post-flush — no grant can name a newer copy than the
    /// acquirer already holds, so no stale pull is ever issued.
    ///
    /// # Errors
    ///
    /// Propagates runtime view-change failures.
    pub fn apply_view_change(&mut self, change: &ViewChange) -> Result<(), DsoError> {
        self.runtime.apply_view_change(change, &mut Never)?;
        self.managed.clear();
        self.granted.clear();
        // Replay traffic from peers that crossed this barrier first: their
        // new-epoch acquires now land on the fresh lock state (re-deferring
        // anything stamped even further ahead).
        let deferred = std::mem::take(&mut self.deferred);
        for (from, msg) in deferred {
            self.handle(from, msg)?;
        }
        Ok(())
    }

    /// Services any pending protocol traffic without blocking; call freely
    /// between iterations so manager duties don't lag behind.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn service_pending(&mut self) -> Result<(), DsoError> {
        while let Some((from, bytes)) = self.runtime.try_recv_app()? {
            let msg = sdso_net::wire::decode(&bytes).map_err(DsoError::Net)?;
            self.handle(from, msg)?;
        }
        Ok(())
    }

    /// Blocks on one message and services it.
    fn pump_one(&mut self) -> Result<(), DsoError> {
        let (from, bytes) = self.runtime.recv_app()?;
        let msg = sdso_net::wire::decode(&bytes).map_err(DsoError::Net)?;
        self.handle(from, msg)
    }

    /// Manager-side + client-side message dispatch. Epoch-stamped messages
    /// from beyond the next view-change barrier are deferred, not acted on:
    /// granting (or barrier-counting) them under lock state the barrier is
    /// about to reset would leak the grant when
    /// [`EntryConsistency::apply_view_change`] clears it.
    fn handle(&mut self, from: NodeId, msg: EcMessage) -> Result<(), DsoError> {
        if let EcMessage::Acquire { epoch, .. } | EcMessage::SyncDone { epoch } = msg {
            if epoch > self.runtime.epoch() {
                self.deferred.push_back((from, msg));
                return Ok(());
            }
        }
        match msg {
            EcMessage::Acquire { object, mode, epoch: _ } => {
                let me = self.runtime.node_id();
                let lock = self.managed.entry(object).or_insert_with(|| ManagedLock::new(me));
                if lock.queue.is_empty() && lock.compatible(mode) {
                    lock.add_holder(from, mode);
                    let (owner, version) = (lock.owner, lock.version);
                    self.deliver_grant(from, object, owner, version)?;
                } else {
                    lock.queue.push_back((from, mode));
                }
                Ok(())
            }
            EcMessage::Release { object, modified, version } => {
                self.local_release(object, from, modified, version)
            }
            EcMessage::Grant { object, owner, version } => {
                self.granted.insert(object, (owner, version));
                Ok(())
            }
            EcMessage::Done => {
                self.dones_seen += 1;
                Ok(())
            }
            EcMessage::State { object, version, bytes } => {
                let diff = Diff::single(0, bytes);
                self.runtime.apply_remote(object, &diff, version)?;
                Ok(())
            }
            EcMessage::SyncDone { epoch: _ } => {
                self.sync_dones_seen += 1;
                Ok(())
            }
        }
    }

    /// Acquire when this process is the manager: grant immediately when
    /// possible, otherwise enqueue self and wait via the pump.
    fn local_acquire(&mut self, object: ObjectId, mode: LockMode) -> Result<(), DsoError> {
        let me = self.runtime.node_id();
        let epoch = self.runtime.epoch();
        self.handle(me, EcMessage::Acquire { object, mode, epoch })
    }

    /// Release processing at the manager (local or remote requester).
    fn local_release(
        &mut self,
        object: ObjectId,
        who: NodeId,
        modified: bool,
        version: Version,
    ) -> Result<(), DsoError> {
        let me = self.runtime.node_id();
        let lock = self.managed.entry(object).or_insert_with(|| ManagedLock::new(me));
        lock.remove_holder(who);
        if modified {
            lock.owner = who;
            lock.version = version;
        }
        // Grant queued requests in FIFO order, batching compatible heads.
        while let Some(lock) = self.managed.get_mut(&object) {
            let Some(&(next, mode)) = lock.queue.front() else { break };
            if !lock.compatible(mode) {
                break;
            }
            lock.queue.pop_front();
            lock.add_holder(next, mode);
            let (owner, version) = (lock.owner, lock.version);
            self.deliver_grant(next, object, owner, version)?;
        }
        Ok(())
    }

    fn deliver_grant(
        &mut self,
        to: NodeId,
        object: ObjectId,
        owner: NodeId,
        version: Version,
    ) -> Result<(), DsoError> {
        if to == self.runtime.node_id() {
            self.granted.insert(object, (owner, version));
            Ok(())
        } else {
            self.send_ec(to, EcMessage::Grant { object, owner, version })
        }
    }

    fn send_ec(&mut self, to: NodeId, msg: EcMessage) -> Result<(), DsoError> {
        let bytes = sdso_net::wire::encode(&msg).to_vec();
        self.runtime.send_app(to, MsgClass::Control, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdso_core::DsoConfig;
    use sdso_net::memory::{MemoryEndpoint, MemoryHub};

    fn cluster(n: usize, objects: u32) -> Vec<EntryConsistency<MemoryEndpoint>> {
        MemoryHub::new(n)
            .into_endpoints()
            .into_iter()
            .map(|ep| {
                let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
                for id in 0..objects {
                    rt.share(ObjectId(id), vec![0u8; 8]).unwrap();
                }
                EntryConsistency::new(rt)
            })
            .collect()
    }

    #[test]
    fn wire_roundtrip() {
        for msg in [
            EcMessage::Acquire { object: ObjectId(5), mode: LockMode::Write, epoch: Epoch(3) },
            EcMessage::SyncDone { epoch: Epoch(7) },
            EcMessage::Grant {
                object: ObjectId(5),
                owner: 2,
                version: Version::new(LogicalTime::from_ticks(9), 1),
            },
            EcMessage::Release {
                object: ObjectId(5),
                modified: true,
                version: Version::new(LogicalTime::from_ticks(10), 0),
            },
        ] {
            let decoded: EcMessage = sdso_net::wire::decode(&sdso_net::wire::encode(&msg)).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn manager_assignment_is_static_and_even() {
        let counts = (0..32u32).fold([0usize; 4], |mut acc, id| {
            acc[usize::from(EntryConsistency::<MemoryEndpoint>::manager_of(ObjectId(id), 4))] += 1;
            acc
        });
        assert_eq!(counts, [8, 8, 8, 8]);
    }

    #[test]
    fn local_lock_no_messages() {
        // One node: every manager is local; no traffic at all.
        let mut nodes = cluster(1, 4);
        let node = &mut nodes[0];
        node.acquire(&[LockRequest::write(ObjectId(0))]).unwrap();
        node.write(ObjectId(0), 0, &[7]).unwrap();
        node.release_all(&BTreeSet::from([ObjectId(0)])).unwrap();
        assert_eq!(node.runtime().net_metrics().total_sent(), 0);
        assert_eq!(node.metrics().local_grants, 1);
    }

    #[test]
    fn write_without_lock_rejected() {
        let mut nodes = cluster(1, 1);
        assert!(matches!(
            nodes[0].write(ObjectId(0), 0, &[1]),
            Err(DsoError::ProtocolViolation(_))
        ));
    }

    #[test]
    fn writes_propagate_through_pull() {
        // Node 0 writes object 1 (managed by node 1); node 1 then reads it.
        let mut nodes = cluster(2, 2);
        let mut n1 = nodes.pop().unwrap();
        let mut n0 = nodes.pop().unwrap();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let t = std::thread::spawn(move || {
            // Node 1: serve manager duties until n0's release lands (owner
            // of object 1 becomes node 0), then acquire & read.
            loop {
                n1.service_pending().unwrap();
                if n1.managed.get(&ObjectId(1)).is_some_and(|l| l.owner == 0) {
                    break;
                }
                std::thread::yield_now();
            }
            n1.acquire(&[LockRequest::read(ObjectId(1))]).unwrap();
            assert_eq!(n1.read(ObjectId(1)).unwrap()[0], 42);
            assert_eq!(n1.metrics().pulls, 1);
            n1.release_all(&BTreeSet::new()).unwrap();
            done_tx.send(()).unwrap();
            n1
        });
        n0.acquire(&[LockRequest::write(ObjectId(1))]).unwrap();
        n0.write(ObjectId(1), 0, &[42]).unwrap();
        n0.release_all(&BTreeSet::from([ObjectId(1)])).unwrap();
        // Keep servicing n1's pull (GetReq) until it finishes.
        while done_rx.try_recv().is_err() {
            n0.service_pending().unwrap();
            std::thread::yield_now();
        }
        let n1 = t.join().unwrap();
        let _ = (n0, n1);
    }

    #[test]
    fn duplicate_lockset_rejected() {
        let mut nodes = cluster(1, 2);
        let err = nodes[0]
            .acquire(&[LockRequest::read(ObjectId(0)), LockRequest::write(ObjectId(0))])
            .unwrap_err();
        assert!(matches!(err, DsoError::ProtocolViolation(_)));
    }

    #[test]
    fn queued_writer_waits_for_reader_release() {
        // Node 0 exercises its manager queueing logic directly through
        // handle; the simulated contenders (9, …) are real cluster members
        // whose endpoints simply never read their grants.
        let mut nodes = cluster(10, 1);
        let node = &mut nodes[0];
        // A remote reader (fictitious node id 0 is us; use handle with from=0
        // only for self) — instead simulate: we hold the read lock, then a
        // queued self-write must wait. Single-node can't deadlock because
        // release drains the queue.
        node.acquire(&[LockRequest::read(ObjectId(0))]).unwrap();
        // A (simulated) remote writer request goes into the queue.
        node.handle(
            9,
            EcMessage::Acquire { object: ObjectId(0), mode: LockMode::Write, epoch: Epoch::ZERO },
        )
        .unwrap();
        assert_eq!(node.managed[&ObjectId(0)].queue.len(), 1);
        node.release_all(&BTreeSet::new()).unwrap();
        // Release drained the queue: the writer got the lock.
        assert_eq!(node.managed[&ObjectId(0)].queue.len(), 0);
        assert_eq!(node.managed[&ObjectId(0)].writer, Some(9));
    }

    #[test]
    fn manager_mapping_follows_the_view() {
        let mut nodes = cluster(4, 4);
        let view = sdso_core::MembershipView::initial(4, [0, 2, 3]).unwrap();
        nodes[0].runtime_mut().set_membership(view);
        // Members sorted {0, 2, 3}: object k maps to the k-mod-3rd member,
        // never to absent node 1.
        assert_eq!(nodes[0].manager_of_view(ObjectId(0)), 0);
        assert_eq!(nodes[0].manager_of_view(ObjectId(1)), 2);
        assert_eq!(nodes[0].manager_of_view(ObjectId(2)), 3);
        assert_eq!(nodes[0].manager_of_view(ObjectId(3)), 0);
    }

    #[test]
    fn manager_route_overrides_follow_the_leader() {
        // A replica group's election moves lock duty off the statically
        // placed manager: the route table redirects exactly that node's
        // objects, composes with placement and the view, and clears back.
        let mut nodes = cluster(4, 4);
        let node = &mut nodes[0];
        assert_eq!(node.manager_of_view(ObjectId(1)), 1);
        assert_eq!(node.manager_of_view(ObjectId(5)), 1);
        node.set_manager_route(1, Some(3));
        assert_eq!(node.manager_of_view(ObjectId(1)), 3, "redirected to the leader");
        assert_eq!(node.manager_of_view(ObjectId(5)), 3, "every object placed at 1 follows");
        assert_eq!(node.manager_of_view(ObjectId(2)), 2, "other managers untouched");
        // Single-hop: a route whose target is itself rerouted is not
        // chased (3 -> 0 does not turn 1's traffic toward 0).
        node.set_manager_route(3, Some(0));
        assert_eq!(node.manager_of_view(ObjectId(1)), 3);
        node.set_manager_route(1, None);
        node.set_manager_route(3, None);
        assert_eq!(node.manager_of_view(ObjectId(1)), 1, "cleared routes restore placement");
        assert!(node.manager_routes().is_empty());
    }

    #[test]
    fn region_placement_colocates_adjacent_lock_managers() {
        // With the region lattice as placement policy, every cell of a
        // region shares one manager, so a lockset of adjacent cells talks
        // to one or two managers instead of scattering `object mod n`.
        let lattice = sdso_shard::RegionLattice::paper();
        let mut nodes = cluster(4, 4);
        let node = nodes
            .pop()
            .unwrap()
            .with_placement(Placement::new(move |obj| u32::from(lattice.region_of_object(obj).0)));
        let cell = |x: u32, y: u32| ObjectId(y * 32 + x);
        // Cells (0,0), (7,0) and (7,7) all sit in region 0 — one manager —
        // where the default policy would scatter them over three nodes.
        assert_eq!(node.manager_of_view(cell(0, 0)), node.manager_of_view(cell(7, 0)));
        assert_eq!(node.manager_of_view(cell(0, 0)), node.manager_of_view(cell(7, 7)));
        // Manager duty still spreads over the whole cluster: the paper
        // lattice's 12 regions cover all four nodes under `region mod 4`.
        let managers: BTreeSet<NodeId> = (0..u32::from(lattice.regions()))
            .map(|r| node.manager_of_view(cell((r % 4) * 8, (r / 4) * 8)))
            .collect();
        assert_eq!(managers, BTreeSet::from([0, 1, 2, 3]));
        // And the mapping still follows the membership view: with node 1
        // absent, region keys index the sorted members {0, 2, 3}.
        let mut node = node;
        let view = sdso_core::MembershipView::initial(4, [0, 2, 3]).unwrap();
        node.runtime_mut().set_membership(view);
        assert_eq!(node.manager_of_view(cell(8, 0)), 2, "region 1 -> members[1 % 3]");
        assert_eq!(node.manager_of_view(cell(16, 0)), 3, "region 2 -> members[2 % 3]");
    }

    #[test]
    fn view_change_revokes_leaver_holds_and_remaps() {
        use sdso_core::ViewChange;
        // Node 0 manages object 0 and has granted a write lock to node 3;
        // node 3 then leaves at a barrier without releasing.
        let mut nodes = cluster(4, 2);
        let node = &mut nodes[0];
        node.handle(
            3,
            EcMessage::Acquire { object: ObjectId(0), mode: LockMode::Write, epoch: Epoch::ZERO },
        )
        .unwrap();
        assert_eq!(node.managed[&ObjectId(0)].writer, Some(3));
        node.apply_view_change(&ViewChange::leave([3])).unwrap();
        assert!(node.managed.is_empty(), "the leaver's hold is revoked");
        // Fresh acquires succeed under the new 3-member view (objects 0
        // and 1 both manage locally at node 0 now: {0,1,2}[k mod 3]).
        node.acquire(&[LockRequest::write(ObjectId(0))]).unwrap();
        node.write(ObjectId(0), 0, &[5]).unwrap();
        node.release_all(&BTreeSet::from([ObjectId(0)])).unwrap();
        assert_eq!(node.managed[&ObjectId(0)].owner, 0);
    }

    #[test]
    fn future_epoch_acquire_defers_until_the_barrier() {
        use sdso_core::ViewChange;
        // A peer one barrier ahead acquires under epoch 1 while this
        // manager is still at epoch 0 (inside the view-change barrier):
        // acting on it now would grant under lock state the view change is
        // about to clear, silently losing the lock.
        let mut nodes = cluster(4, 2);
        let node = &mut nodes[0];
        node.handle(
            2,
            EcMessage::Acquire { object: ObjectId(0), mode: LockMode::Write, epoch: Epoch(1) },
        )
        .unwrap();
        assert!(node.managed.is_empty(), "future-epoch acquire must not touch lock state");
        node.apply_view_change(&ViewChange::leave([3])).unwrap();
        assert_eq!(
            node.managed[&ObjectId(0)].writer,
            Some(2),
            "deferred acquire granted once the barrier is crossed"
        );
    }

    #[test]
    fn fifo_prevents_queue_jumping() {
        let mut nodes = cluster(10, 1);
        let node = &mut nodes[0];
        let acq = |mode| EcMessage::Acquire { object: ObjectId(0), mode, epoch: Epoch::ZERO };
        // Simulated remote writer holds the lock...
        node.handle(7, acq(LockMode::Write)).unwrap();
        // ...a remote writer queues...
        node.handle(8, acq(LockMode::Write)).unwrap();
        // ...then a compatible-looking reader must still queue behind it.
        node.handle(9, acq(LockMode::Read)).unwrap();
        assert_eq!(node.managed[&ObjectId(0)].queue.len(), 2);
        // First release grants the writer only; second grants the reader.
        node.handle(
            7,
            EcMessage::Release { object: ObjectId(0), modified: false, version: Version::INITIAL },
        )
        .unwrap();
        assert_eq!(node.managed[&ObjectId(0)].writer, Some(8));
        assert_eq!(node.managed[&ObjectId(0)].queue.len(), 1);
    }
}
