//! Vector clocks, the causality backbone of the LRC and causal-memory
//! extensions.

use sdso_net::wire::{Wire, WireReader, WireWriter};
use sdso_net::{NetError, NodeId};

/// The relationship between two vector timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CausalOrder {
    /// Identical vectors.
    Equal,
    /// `self` happened strictly before the other.
    Before,
    /// `self` happened strictly after the other.
    After,
    /// Neither dominates: concurrent.
    Concurrent,
}

/// A fixed-width vector clock over a cluster's processes.
///
/// # Example
///
/// ```
/// use sdso_protocols::{CausalOrder, VectorClock};
///
/// let mut a = VectorClock::new(3);
/// let mut b = VectorClock::new(3);
/// a.increment(0);
/// b.increment(1);
/// assert_eq!(a.compare(&b), CausalOrder::Concurrent);
/// b.merge(&a);
/// b.increment(1);
/// assert_eq!(a.compare(&b), CausalOrder::Before);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct VectorClock {
    ticks: Vec<u64>,
}

impl VectorClock {
    /// A zero clock for `n` processes.
    pub fn new(n: usize) -> Self {
        VectorClock { ticks: vec![0; n] }
    }

    /// Number of processes this clock covers.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// Whether the clock covers zero processes.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// The component for `process`.
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    pub fn get(&self, process: NodeId) -> u64 {
        self.ticks[usize::from(process)]
    }

    /// Advances `process`'s component by one.
    ///
    /// # Panics
    ///
    /// Panics if `process` is out of range.
    pub fn increment(&mut self, process: NodeId) {
        self.ticks[usize::from(process)] += 1;
    }

    /// Component-wise maximum with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the clocks have different widths.
    pub fn merge(&mut self, other: &VectorClock) {
        assert_eq!(self.ticks.len(), other.ticks.len(), "clock width mismatch");
        for (mine, theirs) in self.ticks.iter_mut().zip(&other.ticks) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// The causal relationship between `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if the clocks have different widths.
    pub fn compare(&self, other: &VectorClock) -> CausalOrder {
        assert_eq!(self.ticks.len(), other.ticks.len(), "clock width mismatch");
        let mut less = false;
        let mut greater = false;
        for (a, b) in self.ticks.iter().zip(&other.ticks) {
            if a < b {
                less = true;
            } else if a > b {
                greater = true;
            }
        }
        match (less, greater) {
            (false, false) => CausalOrder::Equal,
            (true, false) => CausalOrder::Before,
            (false, true) => CausalOrder::After,
            (true, true) => CausalOrder::Concurrent,
        }
    }

    /// Whether a message stamped `msg` from `sender` is the causally next
    /// deliverable event at a process whose knowledge is `self`:
    /// `msg[sender] == self[sender] + 1` and `msg[k] <= self[k]` elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if widths differ or `sender` is out of range.
    pub fn is_next_from(&self, msg: &VectorClock, sender: NodeId) -> bool {
        assert_eq!(self.ticks.len(), msg.ticks.len(), "clock width mismatch");
        for (i, (&mine, &theirs)) in self.ticks.iter().zip(&msg.ticks).enumerate() {
            if i == usize::from(sender) {
                if theirs != mine + 1 {
                    return false;
                }
            } else if theirs > mine {
                return false;
            }
        }
        true
    }
}

impl Wire for VectorClock {
    fn encode(&self, w: &mut WireWriter) {
        w.put_seq(&self.ticks, |w, &t| w.put_u64(t));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(VectorClock { ticks: r.get_seq(|r| r.get_u64())? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_clocks_are_equal() {
        let a = VectorClock::new(4);
        assert_eq!(a.compare(&VectorClock::new(4)), CausalOrder::Equal);
    }

    #[test]
    fn increment_makes_after() {
        let a = VectorClock::new(2);
        let mut b = a.clone();
        b.increment(1);
        assert_eq!(b.compare(&a), CausalOrder::After);
        assert_eq!(a.compare(&b), CausalOrder::Before);
    }

    #[test]
    fn divergent_clocks_are_concurrent() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        a.increment(0);
        b.increment(1);
        assert_eq!(a.compare(&b), CausalOrder::Concurrent);
    }

    #[test]
    fn merge_takes_componentwise_max() {
        let mut a = VectorClock::new(3);
        a.increment(0);
        a.increment(0);
        let mut b = VectorClock::new(3);
        b.increment(2);
        a.merge(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 0);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn delivery_condition() {
        // Receiver knows (1, 0); next from sender 0 is (2, 0).
        let mut known = VectorClock::new(2);
        known.increment(0);
        let mut msg = known.clone();
        msg.increment(0);
        assert!(known.is_next_from(&msg, 0));
        // A gap (3, 0) is not deliverable.
        let mut gap = msg.clone();
        gap.increment(0);
        assert!(!known.is_next_from(&gap, 0));
        // A message depending on undelivered third-party state isn't either.
        let mut dep = msg.clone();
        dep.increment(1);
        assert!(!known.is_next_from(&dep, 0));
    }

    #[test]
    fn wire_roundtrip() {
        let mut v = VectorClock::new(3);
        v.increment(1);
        v.increment(1);
        v.increment(2);
        let decoded: VectorClock = sdso_net::wire::decode(&sdso_net::wire::encode(&v)).unwrap();
        assert_eq!(decoded, v);
    }
}
