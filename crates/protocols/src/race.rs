//! Data-race arbitration without locks.
//!
//! The lookahead protocols "avoid using locks or serialized access to all
//! shared objects": when two processes are in contention for one object in
//! the same interval, "the process with the lowest ID is blocked, while the
//! other process generates an event that potentially modifies the common
//! object" (paper §3.2). Blocked processes still participate in the
//! rendezvous, exchanging a bare SYNC control message.
//!
//! Because spatial consistency guarantees that contending processes have
//! fresh copies of each other's relevant state, both sides evaluate these
//! functions on identical inputs and reach the same verdict without any
//! message exchange.

use sdso_net::NodeId;

/// Whether process `me` must yield (hold still) this interval given that it
/// contends with `other` for the same object.
///
/// The paper's rule: the lowest ID blocks.
pub fn yields_to(me: NodeId, other: NodeId) -> bool {
    me < other
}

/// The process that may proceed out of a set of contenders (the highest
/// id, per the lowest-ID-blocks rule). Returns `None` for an empty set.
pub fn contention_winner(contenders: impl IntoIterator<Item = NodeId>) -> Option<NodeId> {
    contenders.into_iter().max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowest_id_yields() {
        assert!(yields_to(0, 1));
        assert!(!yields_to(1, 0));
    }

    #[test]
    fn exactly_one_contender_proceeds() {
        let group = [3u16, 7, 1];
        let winner = contention_winner(group).unwrap();
        assert_eq!(winner, 7);
        let proceeding: Vec<_> =
            group.iter().filter(|&&p| group.iter().all(|&q| q == p || !yields_to(p, q))).collect();
        assert_eq!(proceeding, vec![&7]);
    }

    #[test]
    fn empty_contention_has_no_winner() {
        assert_eq!(contention_winner(std::iter::empty()), None);
    }

    #[test]
    fn verdicts_are_symmetric() {
        for a in 0u16..5 {
            for b in 0u16..5 {
                if a != b {
                    assert_ne!(yields_to(a, b), yields_to(b, a), "exactly one side yields");
                }
            }
        }
    }
}
