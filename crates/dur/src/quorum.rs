//! Quorum-replicated lock managers: term-based leader election with
//! randomized timeouts, log replication of lock commands, and failover
//! that re-derives the grant table from the committed log.
//!
//! Entry consistency places each lock's manager statically; a manager
//! crash takes every lock it owns down with it. [`LockReplica`] removes
//! that single point of failure with a small Raft-shaped core (in the
//! streamlet/raft family: elect by majority vote, replicate in leader
//! order, commit at majority match, newest-log-wins at election):
//!
//! * **Deterministic.** A replica is a pure state machine driven by
//!   [`LockReplica::on_message`] and [`LockReplica::on_timer`]; outgoing
//!   messages accumulate in an outbox the host drains. Election jitter
//!   comes from a seeded [`DetRng`], timers sit in the transport's
//!   [`DeadlineQueue`] — same inputs, same elections, same log.
//! * **Host-agnostic.** The host supplies the clock and the wires:
//!   the virtual-time simulator, the reactor transport, or the in-module
//!   test loop all drive the identical state machine.
//! * **Recoverable.** The committed prefix is exactly the grant history;
//!   a new leader's table is re-derived from its log, so failover never
//!   invents or loses a grant that a majority acknowledged.

use std::collections::{BTreeMap, BTreeSet};

use sdso_net::deadline::DeadlineQueue;
use sdso_net::{DetRng, NodeId, SimInstant, SimSpan};
use sdso_obs::{EventKind, Obs};

use crate::record::{LockCmd, Reader};

/// An election term.
pub type Term = u64;

/// A replica's current role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaRole {
    /// Following a leader (or waiting to hear from one).
    Follower,
    /// Standing for election.
    Candidate,
    /// Won the current term's election.
    Leader,
}

/// One replicated log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// Term the entry was appended under.
    pub term: Term,
    /// The replicated command.
    pub cmd: LockCmd,
}

/// Messages between replicas. Hosts carry them on whatever transport
/// they have (the codec below rides in app messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuorumMsg {
    /// A candidate solicits a vote.
    RequestVote {
        /// Candidate's term.
        term: Term,
        /// Index of the candidate's last log entry.
        last_index: u64,
        /// Term of the candidate's last log entry.
        last_term: Term,
    },
    /// A vote reply.
    Vote {
        /// Voter's term.
        term: Term,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Leader replication (empty `entries` = heartbeat).
    Append {
        /// Leader's term.
        term: Term,
        /// Index of the entry preceding `entries`.
        prev_index: u64,
        /// Term of that entry (0 at the log head).
        prev_term: Term,
        /// Entries to append.
        entries: Vec<LogEntry>,
        /// Leader's commit index.
        commit: u64,
    },
    /// Replication reply.
    AppendOk {
        /// Follower's term.
        term: Term,
        /// Whether the append matched.
        ok: bool,
        /// Highest log index now known replicated at the follower
        /// (on failure: the follower's log length, as a back-off hint).
        match_index: u64,
    },
}

impl QuorumMsg {
    /// Encodes the message for an app-message wire.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            QuorumMsg::RequestVote { term, last_index, last_term } => {
                out.push(1);
                out.extend_from_slice(&term.to_le_bytes());
                out.extend_from_slice(&last_index.to_le_bytes());
                out.extend_from_slice(&last_term.to_le_bytes());
            }
            QuorumMsg::Vote { term, granted } => {
                out.push(2);
                out.extend_from_slice(&term.to_le_bytes());
                out.push(u8::from(*granted));
            }
            QuorumMsg::Append { term, prev_index, prev_term, entries, commit } => {
                out.push(3);
                out.extend_from_slice(&term.to_le_bytes());
                out.extend_from_slice(&prev_index.to_le_bytes());
                out.extend_from_slice(&prev_term.to_le_bytes());
                out.extend_from_slice(&commit.to_le_bytes());
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for e in entries {
                    out.extend_from_slice(&e.term.to_le_bytes());
                    let lock_rec =
                        crate::record::DurRecord::Lock { term: e.term, index: 0, cmd: e.cmd };
                    let enc = lock_rec.encode();
                    out.extend_from_slice(&(enc.len() as u32).to_le_bytes());
                    out.extend_from_slice(&enc);
                }
            }
            QuorumMsg::AppendOk { term, ok, match_index } => {
                out.push(4);
                out.extend_from_slice(&term.to_le_bytes());
                out.push(u8::from(*ok));
                out.extend_from_slice(&match_index.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a message; `None` on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<QuorumMsg> {
        let mut r = Reader { data: bytes, pos: 0 };
        let msg = match r.u8()? {
            1 => {
                QuorumMsg::RequestVote { term: r.u64()?, last_index: r.u64()?, last_term: r.u64()? }
            }
            2 => QuorumMsg::Vote { term: r.u64()?, granted: r.u8()? != 0 },
            3 => {
                let term = r.u64()?;
                let prev_index = r.u64()?;
                let prev_term = r.u64()?;
                let commit = r.u64()?;
                let count = r.u32()? as usize;
                let mut entries = Vec::with_capacity(count.min(1 << 16));
                for _ in 0..count {
                    let eterm = r.u64()?;
                    let enc = r.bytes()?;
                    match crate::record::DurRecord::decode(&enc)? {
                        crate::record::DurRecord::Lock { cmd, .. } => {
                            entries.push(LogEntry { term: eterm, cmd });
                        }
                        _ => return None,
                    }
                }
                QuorumMsg::Append { term, prev_index, prev_term, entries, commit }
            }
            4 => QuorumMsg::AppendOk { term: r.u64()?, ok: r.u8()? != 0, match_index: r.u64()? },
            _ => return None,
        };
        if r.pos == bytes.len() {
            Some(msg)
        } else {
            None
        }
    }
}

/// The lock table a replica derives from its *committed* log prefix.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GrantTable {
    holders: BTreeMap<u32, NodeId>,
}

impl GrantTable {
    /// Applies one committed command.
    pub fn apply(&mut self, cmd: &LockCmd) {
        match *cmd {
            LockCmd::Grant { lock, to } => {
                self.holders.insert(lock, to);
            }
            LockCmd::Release { lock, .. } => {
                self.holders.remove(&lock);
            }
            LockCmd::Transfer { lock, to, .. } => {
                self.holders.insert(lock, to);
            }
        }
    }

    /// The current holder of `lock`, if granted.
    pub fn holder(&self, lock: u32) -> Option<NodeId> {
        self.holders.get(&lock).copied()
    }

    /// Number of currently granted locks.
    pub fn len(&self) -> usize {
        self.holders.len()
    }

    /// Whether no locks are granted.
    pub fn is_empty(&self) -> bool {
        self.holders.is_empty()
    }
}

/// Why a proposal was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProposeError {
    /// This replica is not the leader; retry at `hint` if known.
    NotLeader {
        /// The replica last heard from as leader, if any.
        hint: Option<NodeId>,
    },
}

/// Election and heartbeat pacing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuorumConfig {
    /// Minimum silence before a follower stands for election.
    pub election_min: SimSpan,
    /// Uniform extra jitter added on top of `election_min` (what breaks
    /// split votes).
    pub election_jitter: SimSpan,
    /// Leader heartbeat interval (must be well under `election_min`).
    pub heartbeat: SimSpan,
}

impl Default for QuorumConfig {
    fn default() -> Self {
        QuorumConfig {
            election_min: SimSpan::from_millis(10),
            election_jitter: SimSpan::from_millis(10),
            heartbeat: SimSpan::from_millis(3),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum TimerKind {
    Election,
    Heartbeat,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Timer {
    kind: TimerKind,
    gen: u64,
}

/// One replica of the replicated lock-manager state machine.
#[derive(Debug)]
pub struct LockReplica {
    me: NodeId,
    members: Vec<NodeId>,
    cfg: QuorumConfig,
    rng: DetRng,
    obs: Obs,
    role: ReplicaRole,
    term: Term,
    voted_for: Option<NodeId>,
    votes: BTreeSet<NodeId>,
    log: Vec<LogEntry>,
    commit: u64,
    applied: u64,
    grants: GrantTable,
    committed: Vec<LockCmd>,
    next_index: BTreeMap<NodeId, u64>,
    match_index: BTreeMap<NodeId, u64>,
    leader_hint: Option<NodeId>,
    timers: DeadlineQueue<Timer>,
    election_gen: u64,
    heartbeat_gen: u64,
    elections_won: u64,
    outbox: Vec<(NodeId, QuorumMsg)>,
}

impl LockReplica {
    /// Creates a replica of the quorum `members` (which must contain
    /// `me`), with election jitter drawn from `seed`, and schedules its
    /// first election timeout from `now`.
    ///
    /// # Panics
    ///
    /// Panics if `members` does not contain `me` or is empty.
    pub fn new(
        me: NodeId,
        members: Vec<NodeId>,
        cfg: QuorumConfig,
        seed: u64,
        now: SimInstant,
    ) -> Self {
        Self::with_obs(me, members, cfg, seed, now, Obs::disabled())
    }

    /// [`LockReplica::new`] recording elections into `obs`.
    ///
    /// # Panics
    ///
    /// Panics if `members` does not contain `me` or is empty.
    pub fn with_obs(
        me: NodeId,
        members: Vec<NodeId>,
        cfg: QuorumConfig,
        seed: u64,
        now: SimInstant,
        obs: Obs,
    ) -> Self {
        assert!(members.contains(&me), "replica {me} must be a quorum member");
        let mut replica = LockReplica {
            me,
            members,
            cfg,
            rng: DetRng::new(seed ^ (u64::from(me) << 32)),
            obs,
            role: ReplicaRole::Follower,
            term: 0,
            voted_for: None,
            votes: BTreeSet::new(),
            log: Vec::new(),
            commit: 0,
            applied: 0,
            grants: GrantTable::default(),
            committed: Vec::new(),
            next_index: BTreeMap::new(),
            match_index: BTreeMap::new(),
            leader_hint: None,
            timers: DeadlineQueue::new(),
            election_gen: 0,
            heartbeat_gen: 0,
            elections_won: 0,
            outbox: Vec::new(),
        };
        replica.reset_election_timer(now);
        replica
    }

    // ------------------------------------------------------------------
    // Host-facing surface
    // ------------------------------------------------------------------

    /// This replica's id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// The replica's current role.
    pub fn role(&self) -> ReplicaRole {
        self.role
    }

    /// Whether this replica currently leads.
    pub fn is_leader(&self) -> bool {
        self.role == ReplicaRole::Leader
    }

    /// The current term.
    pub fn term(&self) -> Term {
        self.term
    }

    /// The replica last believed to lead (itself when leading).
    pub fn leader_hint(&self) -> Option<NodeId> {
        self.leader_hint
    }

    /// Commit index (entries at or below it are durable at a majority).
    pub fn commit_index(&self) -> u64 {
        self.commit
    }

    /// The grant table derived from the committed prefix.
    pub fn grants(&self) -> &GrantTable {
        &self.grants
    }

    /// The committed command history, in commit order.
    pub fn committed(&self) -> &[LockCmd] {
        &self.committed
    }

    /// Elections this replica has won.
    pub fn elections_won(&self) -> u64 {
        self.elections_won
    }

    /// The replicated log (for recovery journaling by the host).
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    /// When the host must next call [`LockReplica::on_timer`].
    pub fn next_deadline(&self) -> Option<SimInstant> {
        self.timers.next_deadline().map(SimInstant::from_micros)
    }

    /// Drains the messages this replica wants sent.
    pub fn take_outbox(&mut self) -> Vec<(NodeId, QuorumMsg)> {
        std::mem::take(&mut self.outbox)
    }

    /// Proposes a command for replication. Only the leader accepts;
    /// followers answer with a redirect hint.
    ///
    /// # Errors
    ///
    /// [`ProposeError::NotLeader`] when this replica does not lead.
    pub fn propose(&mut self, cmd: LockCmd, now: SimInstant) -> Result<u64, ProposeError> {
        if self.role != ReplicaRole::Leader {
            return Err(ProposeError::NotLeader { hint: self.leader_hint });
        }
        self.log.push(LogEntry { term: self.term, cmd });
        let index = self.log.len() as u64;
        if self.majority() == 1 {
            // Single-replica quorum: committed on append.
            self.advance_commit();
        } else {
            self.broadcast_append(now);
        }
        Ok(index)
    }

    /// Fires every timer due at `now`.
    pub fn on_timer(&mut self, now: SimInstant) {
        while let Some(timer) = self.timers.pop_due(now.as_micros()) {
            match timer.kind {
                TimerKind::Election
                    if timer.gen == self.election_gen && self.role != ReplicaRole::Leader =>
                {
                    self.start_election(now);
                }
                TimerKind::Heartbeat
                    if timer.gen == self.heartbeat_gen && self.role == ReplicaRole::Leader =>
                {
                    self.broadcast_append(now);
                    self.schedule_heartbeat(now);
                }
                // A stale generation (superseded by a later reschedule)
                // or a timer that no longer matches the role.
                _ => {}
            }
        }
    }

    /// Processes one message from a peer replica.
    pub fn on_message(&mut self, from: NodeId, msg: QuorumMsg, now: SimInstant) {
        match msg {
            QuorumMsg::RequestVote { term, last_index, last_term } => {
                self.observe_term(term);
                let up_to_date = {
                    let (my_last_index, my_last_term) = self.last_log();
                    last_term > my_last_term
                        || (last_term == my_last_term && last_index >= my_last_index)
                };
                let granted = term == self.term
                    && up_to_date
                    && (self.voted_for.is_none() || self.voted_for == Some(from));
                if granted {
                    self.voted_for = Some(from);
                    self.reset_election_timer(now);
                }
                self.outbox.push((from, QuorumMsg::Vote { term: self.term, granted }));
            }
            QuorumMsg::Vote { term, granted } => {
                self.observe_term(term);
                if self.role == ReplicaRole::Candidate && term == self.term && granted {
                    self.votes.insert(from);
                    if self.votes.len() >= self.majority() {
                        self.become_leader(now);
                    }
                }
            }
            QuorumMsg::Append { term, prev_index, prev_term, entries, commit } => {
                if term < self.term {
                    self.outbox.push((
                        from,
                        QuorumMsg::AppendOk { term: self.term, ok: false, match_index: 0 },
                    ));
                    return;
                }
                self.observe_term(term);
                self.role = ReplicaRole::Follower;
                self.leader_hint = Some(from);
                self.reset_election_timer(now);

                let prev = prev_index as usize;
                let prev_matches =
                    prev == 0 || (prev <= self.log.len() && self.log[prev - 1].term == prev_term);
                if !prev_matches {
                    // Roll back to the divergence point and report our
                    // length so the leader backs off its next_index.
                    if prev <= self.log.len() {
                        self.log.truncate(prev.saturating_sub(1));
                    }
                    self.outbox.push((
                        from,
                        QuorumMsg::AppendOk {
                            term: self.term,
                            ok: false,
                            match_index: self.log.len() as u64,
                        },
                    ));
                    return;
                }
                for (i, entry) in entries.iter().enumerate() {
                    let idx = prev + i + 1;
                    if idx <= self.log.len() {
                        if self.log[idx - 1].term != entry.term {
                            self.log.truncate(idx - 1);
                            self.log.push(*entry);
                        }
                    } else {
                        self.log.push(*entry);
                    }
                }
                let match_index = (prev + entries.len()) as u64;
                if commit > self.commit {
                    self.commit = commit.min(self.log.len() as u64);
                    self.apply_committed();
                }
                self.outbox
                    .push((from, QuorumMsg::AppendOk { term: self.term, ok: true, match_index }));
            }
            QuorumMsg::AppendOk { term, ok, match_index } => {
                self.observe_term(term);
                if self.role != ReplicaRole::Leader || term != self.term {
                    return;
                }
                if ok {
                    let m = self.match_index.entry(from).or_insert(0);
                    *m = (*m).max(match_index);
                    self.next_index.insert(from, match_index + 1);
                    self.advance_commit();
                } else {
                    let next = self.next_index.entry(from).or_insert(1);
                    *next = (*next - 1).clamp(match_index + 1, u64::MAX).max(1);
                    self.send_append_to(from);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn majority(&self) -> usize {
        self.members.len() / 2 + 1
    }

    fn last_log(&self) -> (u64, Term) {
        match self.log.last() {
            Some(e) => (self.log.len() as u64, e.term),
            None => (0, 0),
        }
    }

    /// Steps down if `term` is newer than ours.
    fn observe_term(&mut self, term: Term) {
        if term > self.term {
            self.term = term;
            self.role = ReplicaRole::Follower;
            self.voted_for = None;
            self.votes.clear();
        }
    }

    fn reset_election_timer(&mut self, now: SimInstant) {
        self.election_gen += 1;
        let jitter = self.rng.up_to(self.cfg.election_jitter.as_micros());
        let at = now.as_micros() + self.cfg.election_min.as_micros() + jitter;
        self.timers.schedule(at, Timer { kind: TimerKind::Election, gen: self.election_gen });
    }

    fn schedule_heartbeat(&mut self, now: SimInstant) {
        self.timers.schedule(
            now.as_micros() + self.cfg.heartbeat.as_micros(),
            Timer { kind: TimerKind::Heartbeat, gen: self.heartbeat_gen },
        );
    }

    fn start_election(&mut self, now: SimInstant) {
        self.term += 1;
        self.role = ReplicaRole::Candidate;
        self.voted_for = Some(self.me);
        self.votes = BTreeSet::from([self.me]);
        let (last_index, last_term) = self.last_log();
        let peers: Vec<NodeId> = self.members.iter().copied().filter(|&m| m != self.me).collect();
        for peer in peers {
            self.outbox
                .push((peer, QuorumMsg::RequestVote { term: self.term, last_index, last_term }));
        }
        self.reset_election_timer(now);
        if self.votes.len() >= self.majority() {
            self.become_leader(now);
        }
    }

    fn become_leader(&mut self, now: SimInstant) {
        self.role = ReplicaRole::Leader;
        self.leader_hint = Some(self.me);
        self.elections_won += 1;
        let last = self.log.len() as u64;
        self.next_index = self.members.iter().map(|&m| (m, last + 1)).collect();
        self.match_index = self.members.iter().map(|&m| (m, 0)).collect();
        self.heartbeat_gen += 1;
        self.obs.record(
            now.as_micros(),
            EventKind::ElectionWon,
            u32::from(self.me),
            self.term as u32,
            0,
        );
        self.broadcast_append(now);
        self.schedule_heartbeat(now);
    }

    fn broadcast_append(&mut self, _now: SimInstant) {
        let peers: Vec<NodeId> = self.members.iter().copied().filter(|&m| m != self.me).collect();
        for peer in peers {
            self.send_append_to(peer);
        }
    }

    fn send_append_to(&mut self, peer: NodeId) {
        let next = *self.next_index.get(&peer).unwrap_or(&1);
        let prev_index = next.saturating_sub(1);
        let prev_term = if prev_index == 0 { 0 } else { self.log[(prev_index - 1) as usize].term };
        let entries: Vec<LogEntry> = self.log[(next - 1) as usize..].to_vec();
        self.outbox.push((
            peer,
            QuorumMsg::Append {
                term: self.term,
                prev_index,
                prev_term,
                entries,
                commit: self.commit,
            },
        ));
    }

    fn advance_commit(&mut self) {
        let my_last = self.log.len() as u64;
        for n in ((self.commit + 1)..=my_last).rev() {
            // Only entries from the current term commit by counting (the
            // Raft commit rule); earlier-term entries commit transitively.
            if self.log[(n - 1) as usize].term != self.term {
                continue;
            }
            let replicated = 1 + self
                .members
                .iter()
                .filter(|&&m| m != self.me)
                .filter(|&&m| self.match_index.get(&m).copied().unwrap_or(0) >= n)
                .count();
            if replicated >= self.majority() {
                self.commit = n;
                self.apply_committed();
                break;
            }
        }
    }

    fn apply_committed(&mut self) {
        while self.applied < self.commit {
            self.applied += 1;
            let cmd = self.log[(self.applied - 1) as usize].cmd;
            self.grants.apply(&cmd);
            self.committed.push(cmd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Per-hop latency of the test network, in virtual microseconds.
    const LAT: u64 = 500;

    /// A tiny deterministic virtual-time network driving replicas.
    struct Quorumette {
        replicas: Vec<LockReplica>,
        down: BTreeSet<NodeId>,
        queue: Vec<(u64, u64, NodeId, NodeId, QuorumMsg)>, // (at, seq, to, from, msg)
        seq: u64,
        now: u64,
    }

    impl Quorumette {
        fn new(n: u16, seed: u64) -> Self {
            let members: Vec<NodeId> = (0..n).collect();
            let replicas = members
                .iter()
                .map(|&m| {
                    LockReplica::new(
                        m,
                        members.clone(),
                        QuorumConfig::default(),
                        seed,
                        SimInstant::ZERO,
                    )
                })
                .collect();
            Quorumette { replicas, down: BTreeSet::new(), queue: Vec::new(), seq: 0, now: 0 }
        }

        fn pump_outboxes(&mut self) {
            for i in 0..self.replicas.len() {
                let from = self.replicas[i].id();
                if self.down.contains(&from) {
                    self.replicas[i].take_outbox();
                    continue;
                }
                for (to, msg) in self.replicas[i].take_outbox() {
                    if self.down.contains(&to) {
                        continue;
                    }
                    self.queue.push((self.now + LAT, self.seq, to, from, msg));
                    self.seq += 1;
                }
            }
        }

        /// Advances to the next event (message arrival or timer) and
        /// processes everything due. Returns false when nothing is left.
        fn step(&mut self) -> bool {
            self.pump_outboxes();
            let next_msg = self.queue.iter().map(|e| e.0).min();
            let next_timer = self
                .replicas
                .iter()
                .filter(|r| !self.down.contains(&r.id()))
                .filter_map(|r| r.next_deadline())
                .map(|d| d.as_micros())
                .min();
            let Some(at) = [next_msg, next_timer].into_iter().flatten().min() else {
                return false;
            };
            self.now = self.now.max(at);
            let mut due: Vec<_> = Vec::new();
            self.queue.retain(|e| {
                if e.0 <= at {
                    due.push(e.clone());
                    false
                } else {
                    true
                }
            });
            due.sort_by_key(|e| (e.0, e.1));
            for (_, _, to, from, msg) in due {
                if !self.down.contains(&to) {
                    let idx = to as usize;
                    self.replicas[idx].on_message(from, msg, SimInstant::from_micros(self.now));
                }
            }
            for r in &mut self.replicas {
                if !self.down.contains(&r.id()) {
                    r.on_timer(SimInstant::from_micros(self.now));
                }
            }
            self.pump_outboxes();
            true
        }

        fn run_until(&mut self, deadline_micros: u64, mut pred: impl FnMut(&Self) -> bool) -> bool {
            while self.now < deadline_micros {
                if pred(self) {
                    return true;
                }
                if !self.step() {
                    return pred(self);
                }
            }
            pred(self)
        }

        fn live_leader(&self) -> Option<NodeId> {
            let leaders: Vec<NodeId> = self
                .replicas
                .iter()
                .filter(|r| !self.down.contains(&r.id()) && r.is_leader())
                .map(|r| r.id())
                .collect();
            (leaders.len() == 1).then(|| leaders[0])
        }

        fn replica_mut(&mut self, id: NodeId) -> &mut LockReplica {
            &mut self.replicas[id as usize]
        }
    }

    fn elect(q: &mut Quorumette) -> NodeId {
        assert!(
            q.run_until(2_000_000, |q| q.live_leader().is_some()),
            "no leader elected within 2 virtual seconds"
        );
        q.live_leader().unwrap()
    }

    /// Drives `cmds` through the quorum with NotLeader redirect retries,
    /// returning the virtual time at which the last command committed.
    fn drive(q: &mut Quorumette, cmds: &[LockCmd]) {
        for &cmd in cmds {
            let mut target = elect(q);
            loop {
                let now = SimInstant::from_micros(q.now);
                match q.replica_mut(target).propose(cmd, now) {
                    Ok(index) => {
                        assert!(
                            q.run_until(q.now + 2_000_000, |q| q
                                .replicas
                                .iter()
                                .filter(|r| !q.down.contains(&r.id()))
                                .all(|r| r.commit_index() >= index)),
                            "command did not commit quorum-wide"
                        );
                        break;
                    }
                    Err(ProposeError::NotLeader { hint }) => {
                        target = match hint {
                            Some(h) if !q.down.contains(&h) && h != target => h,
                            _ => elect(q),
                        };
                    }
                }
            }
        }
    }

    #[test]
    fn three_replicas_elect_exactly_one_live_leader() {
        let mut q = Quorumette::new(3, 42);
        let leader = elect(&mut q);
        // Stability: run on; the leader holds (same term, no usurper).
        let term = q.replicas[leader as usize].term();
        q.run_until(q.now + 200_000, |_| false);
        assert_eq!(q.live_leader(), Some(leader), "heartbeats suppress new elections");
        assert_eq!(q.replicas[leader as usize].term(), term);
    }

    #[test]
    fn committed_commands_replicate_to_every_replica() {
        let mut q = Quorumette::new(3, 7);
        let cmds = [
            LockCmd::Grant { lock: 1, to: 0 },
            LockCmd::Grant { lock: 2, to: 1 },
            LockCmd::Release { lock: 1, from: 0 },
            LockCmd::Transfer { lock: 2, from: 1, to: 2 },
        ];
        drive(&mut q, &cmds);
        for r in &q.replicas {
            assert_eq!(r.committed(), &cmds, "identical committed history at {}", r.id());
            assert_eq!(r.grants().holder(2), Some(2));
            assert_eq!(r.grants().holder(1), None);
        }
    }

    #[test]
    fn leader_crash_fails_over_and_rederives_grants() {
        let mut q = Quorumette::new(3, 99);
        drive(&mut q, &[LockCmd::Grant { lock: 5, to: 1 }, LockCmd::Grant { lock: 6, to: 2 }]);
        let old_leader = elect(&mut q);
        let old_term = q.replicas[old_leader as usize].term();
        q.down.insert(old_leader);

        // The survivors elect a new leader in a strictly later term.
        assert!(
            q.run_until(q.now + 2_000_000, |q| q.live_leader().is_some_and(|l| l != old_leader)),
            "no failover"
        );
        let new_leader = q.live_leader().unwrap();
        assert!(q.replicas[new_leader as usize].term() > old_term);
        // Its grant table was re-derived from the committed log, intact.
        assert_eq!(q.replicas[new_leader as usize].grants().holder(5), Some(1));
        assert_eq!(q.replicas[new_leader as usize].grants().holder(6), Some(2));

        // The quorum keeps accepting commands.
        drive(&mut q, &[LockCmd::Release { lock: 5, from: 1 }]);
        for r in q.replicas.iter().filter(|r| !q.down.contains(&r.id())) {
            assert_eq!(r.grants().holder(5), None);
            assert_eq!(r.committed().len(), 3);
        }
    }

    #[test]
    fn crash_and_crash_free_runs_commit_identical_histories() {
        // The flagship acceptance shape at the lock-service level: the
        // same client command stream, with and without a leader crash
        // mid-stream, commits the same history and final table.
        let cmds: Vec<LockCmd> = (0..8u32)
            .map(|i| {
                if i % 3 == 2 {
                    LockCmd::Release { lock: i / 3, from: (i % 2) as NodeId }
                } else {
                    LockCmd::Grant { lock: i / 3, to: (i % 2) as NodeId }
                }
            })
            .collect();

        let mut calm = Quorumette::new(3, 1234);
        drive(&mut calm, &cmds);

        let mut chaotic = Quorumette::new(3, 1234);
        drive(&mut chaotic, &cmds[..4]);
        let victim = elect(&mut chaotic);
        chaotic.down.insert(victim);
        drive(&mut chaotic, &cmds[4..]);

        let calm_history = calm.replicas[0].committed().to_vec();
        let survivor = chaotic.replicas.iter().find(|r| !chaotic.down.contains(&r.id())).unwrap();
        assert_eq!(survivor.committed(), &calm_history[..], "crash changed the committed history");
        assert_eq!(survivor.grants(), calm.replicas[0].grants());
    }

    #[test]
    fn same_seed_replays_identical_elections() {
        let run = |seed: u64| {
            let mut q = Quorumette::new(3, seed);
            let leader = elect(&mut q);
            (leader, q.replicas[leader as usize].term(), q.now)
        };
        assert_eq!(run(555), run(555), "same seed, same winner, same term, same time");
        // And measuring once more for a different seed usually differs in
        // timing — not asserted (it legitimately may collide).
    }

    #[test]
    fn quorum_msgs_round_trip_the_codec() {
        let msgs = vec![
            QuorumMsg::RequestVote { term: 3, last_index: 9, last_term: 2 },
            QuorumMsg::Vote { term: 3, granted: true },
            QuorumMsg::Append {
                term: 4,
                prev_index: 2,
                prev_term: 1,
                entries: vec![
                    LogEntry { term: 4, cmd: LockCmd::Grant { lock: 7, to: 1 } },
                    LogEntry { term: 4, cmd: LockCmd::Transfer { lock: 7, from: 1, to: 0 } },
                ],
                commit: 2,
            },
            QuorumMsg::AppendOk { term: 4, ok: false, match_index: 11 },
        ];
        for msg in msgs {
            assert_eq!(QuorumMsg::decode(&msg.encode()), Some(msg));
        }
        assert_eq!(QuorumMsg::decode(&[]), None);
        assert_eq!(QuorumMsg::decode(&[9, 1, 2]), None);
    }

    #[test]
    fn minority_partition_cannot_commit() {
        let mut q = Quorumette::new(3, 21);
        let leader = elect(&mut q);
        // Cut the leader off from both followers.
        let followers: Vec<NodeId> = (0..3).filter(|&n| n != leader).collect();
        q.down.insert(followers[0]);
        q.down.insert(followers[1]);
        let now = SimInstant::from_micros(q.now);
        let idx = q.replica_mut(leader).propose(LockCmd::Grant { lock: 1, to: 0 }, now).unwrap();
        q.run_until(q.now + 500_000, |_| false);
        assert!(
            q.replicas[leader as usize].commit_index() < idx,
            "an isolated leader must not commit"
        );
    }
}
