//! Bridges a [`FaultPlan`]'s crash schedule into the membership layer.
//!
//! The simulator realises a crash as an abrupt leave (the crasher stops
//! mid-protocol; survivors apply a leave-flavoured view change at the
//! crash tick) and a restart as a late join (the crashed process comes
//! back with its WAL-recovered identity and pulls a snapshot from a
//! donor). Both are exactly the membership churn machinery from the
//! dynamic-groups work — so deriving a [`MembershipPlan`] from the crash
//! events lets every existing churn-aware runner execute a crash scenario
//! unchanged.

use sdso_member::{MembershipPlan, ViewChange};
use sdso_net::{FaultPlan, NodeId};

/// Derives the [`MembershipPlan`] that realises `plan`'s crash events
/// over a group of `capacity` slots initially populated by `initial`:
/// each crash becomes a leave at its crash tick, each restart a join at
/// its restart tick, with same-tick events merged into one view change.
///
/// # Panics
///
/// Panics when the schedule is invalid for the group — a crash of a
/// non-member, a restart of a node that never left, or a change sequence
/// [`MembershipPlan::with_change`] rejects. Call [`validate_crash_plan`]
/// first for a `Result`-shaped answer.
pub fn crash_membership_plan(
    capacity: usize,
    initial: impl IntoIterator<Item = NodeId>,
    plan: &FaultPlan,
) -> MembershipPlan {
    let mut events: Vec<(u64, bool, NodeId)> = Vec::new(); // (tick, is_join, node)
    for crash in &plan.crashes {
        events.push((crash.crash_tick, false, crash.node));
        if let Some(restart) = crash.restart_tick {
            events.push((restart, true, crash.node));
        }
    }
    events.sort_by_key(|&(tick, is_join, node)| (tick, node, is_join));

    let mut membership = MembershipPlan::new(capacity, initial);
    let mut i = 0;
    while i < events.len() {
        let tick = events[i].0;
        let mut joined = Vec::new();
        let mut left = Vec::new();
        while i < events.len() && events[i].0 == tick {
            let (_, is_join, node) = events[i];
            if is_join {
                joined.push(node);
            } else {
                left.push(node);
            }
            i += 1;
        }
        membership = membership.with_change(tick, ViewChange::new(joined, left));
    }
    membership
}

/// Checks that `plan`'s crash schedule is realisable over a group of
/// `capacity` slots that starts full: every crashed node is a live member
/// when it crashes, restarts strictly follow crashes, and the group never
/// loses its last live member (someone must survive to serve as the
/// restart's snapshot donor).
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn validate_crash_plan(plan: &FaultPlan, capacity: usize) -> Result<(), String> {
    let mut events: Vec<(u64, bool, NodeId)> = Vec::new();
    for crash in &plan.crashes {
        if usize::from(crash.node) >= capacity {
            return Err(format!("crash of node {} exceeds group capacity {capacity}", crash.node));
        }
        if let Some(restart) = crash.restart_tick {
            if restart <= crash.crash_tick {
                return Err(format!(
                    "node {} restarts at tick {restart}, not after its crash at tick {}",
                    crash.node, crash.crash_tick
                ));
            }
            events.push((restart, true, crash.node));
        }
        events.push((crash.crash_tick, false, crash.node));
    }
    events.sort_by_key(|&(tick, is_join, node)| (tick, node, is_join));

    let mut live = capacity;
    let mut down: Vec<NodeId> = Vec::new();
    for (tick, is_join, node) in events {
        if is_join {
            // Builder invariants guarantee the node is down here.
            down.retain(|&n| n != node);
            live += 1;
        } else {
            if down.contains(&node) {
                return Err(format!("node {node} crashes twice (second at tick {tick})"));
            }
            down.push(node);
            live -= 1;
            if live == 0 {
                return Err(format!(
                    "crash of node {node} at tick {tick} leaves no live member to recover from"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crashes_become_leaves_and_restarts_become_joins() {
        let plan = FaultPlan::new(1).with_crash(2, 5, Some(9)).with_crash(1, 7, None);
        let membership = crash_membership_plan(4, 0..4, &plan);

        assert_eq!(membership.leave_tick_of(2), Some(5));
        assert_eq!(membership.join_tick_of(2), Some(9));
        assert_eq!(membership.leave_tick_of(1), Some(7));
        assert_eq!(membership.join_tick_of(1), None, "no restart, no join");

        let before = membership.view_at(4);
        assert!(before.contains(2));
        let during = membership.view_at(8);
        assert!(!during.contains(2), "down between crash and restart");
        assert!(!during.contains(1));
        let after = membership.final_view();
        assert!(after.contains(2), "restarted");
        assert!(!after.contains(1), "never came back");
        assert_eq!(after.len(), 3);
    }

    #[test]
    fn same_tick_events_merge_into_one_change() {
        let plan = FaultPlan::new(1).with_crash(1, 3, Some(6)).with_crash(2, 6, Some(8));
        let membership = crash_membership_plan(3, 0..3, &plan);
        let change = membership.change_at(6).expect("merged change at tick 6");
        assert!(change.joined.contains(&1), "node 1 rejoins at 6");
        assert!(change.left.contains(&2), "node 2 crashes at 6");
    }

    #[test]
    fn seeded_plans_validate_and_derive() {
        let plan = FaultPlan::new(0xD15EA5E).with_seeded_crashes(16, 4, 4, 40);
        validate_crash_plan(&plan, 16).expect("seeded schedule is realisable");
        let membership = crash_membership_plan(16, 0..16, &plan);
        let leaves = membership.changes().iter().filter(|(_, c)| !c.left.is_empty()).count();
        let joins = membership.changes().iter().filter(|(_, c)| !c.joined.is_empty()).count();
        assert!(leaves + joins >= plan.crashes.len(), "every crash shows up in the plan");
        assert!(membership.final_view().len() >= 12, "at most 4 stay down");
    }

    #[test]
    fn validation_rejects_bad_schedules() {
        let oob = FaultPlan::new(1).with_crash(9, 2, None);
        assert!(validate_crash_plan(&oob, 4).unwrap_err().contains("capacity"));

        let mut wipeout = FaultPlan::new(1);
        wipeout = wipeout.with_crash(0, 2, None).with_crash(1, 3, None);
        assert!(validate_crash_plan(&wipeout, 2).unwrap_err().contains("no live member"));
    }
}
