//! Typed WAL records and their byte codec.
//!
//! Each [`DurRecord`] is one committed fact a process journals before
//! acting on it: its identity and epoch, tick-frontier advances, local
//! object writes, opaque application checkpoints, and replicated
//! lock-manager commands. The codec is self-contained (tag byte +
//! little-endian fields) so a record decodes without any schema outside
//! this module; an undecodable payload is treated like tail corruption by
//! the store — replay stops there.

use sdso_net::NodeId;

/// A replicated lock-manager command — the unit of quorum log
/// replication and the lock-flavoured WAL record payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockCmd {
    /// `lock` was granted to `to`.
    Grant {
        /// The lock's object id.
        lock: u32,
        /// The grantee.
        to: NodeId,
    },
    /// `lock` was released by `from`.
    Release {
        /// The lock's object id.
        lock: u32,
        /// The releasing holder.
        from: NodeId,
    },
    /// `lock` moved from `from` to `to` without an intervening release
    /// (entry consistency's interval transfer).
    Transfer {
        /// The lock's object id.
        lock: u32,
        /// Previous holder.
        from: NodeId,
        /// New holder.
        to: NodeId,
    },
}

impl LockCmd {
    /// The lock this command concerns.
    pub fn lock(&self) -> u32 {
        match *self {
            LockCmd::Grant { lock, .. }
            | LockCmd::Release { lock, .. }
            | LockCmd::Transfer { lock, .. } => lock,
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match *self {
            LockCmd::Grant { lock, to } => {
                out.push(0);
                out.extend_from_slice(&lock.to_le_bytes());
                out.extend_from_slice(&u32::from(to).to_le_bytes());
            }
            LockCmd::Release { lock, from } => {
                out.push(1);
                out.extend_from_slice(&lock.to_le_bytes());
                out.extend_from_slice(&u32::from(from).to_le_bytes());
            }
            LockCmd::Transfer { lock, from, to } => {
                out.push(2);
                out.extend_from_slice(&lock.to_le_bytes());
                out.extend_from_slice(&u32::from(from).to_le_bytes());
                out.extend_from_slice(&u32::from(to).to_le_bytes());
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Option<LockCmd> {
        match r.u8()? {
            0 => Some(LockCmd::Grant { lock: r.u32()?, to: r.node()? }),
            1 => Some(LockCmd::Release { lock: r.u32()?, from: r.node()? }),
            2 => Some(LockCmd::Transfer { lock: r.u32()?, from: r.node()?, to: r.node()? }),
            _ => None,
        }
    }
}

/// One committed fact in a process's write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurRecord {
    /// Written once when the log is created (and again after each
    /// checkpoint): who this log belongs to and which membership epoch it
    /// last operated in. Recovery asserts the identity matches before
    /// trusting anything else.
    Ident {
        /// The owning process.
        node: NodeId,
        /// The membership epoch at write time.
        epoch: u32,
    },
    /// A committed logical-tick boundary: everything before it in the log
    /// happened at or before `time`.
    Tick {
        /// The logical (rendezvous) tick just completed.
        time: u64,
        /// The Lamport frontier at that boundary.
        lamport: u64,
    },
    /// A committed local write to a shared object.
    Write {
        /// The object written.
        object: u32,
        /// Byte offset of the write.
        offset: u32,
        /// The bytes written.
        bytes: Vec<u8>,
        /// Lamport stamp of the write.
        stamp: u64,
        /// The writing process (version tie-breaker).
        writer: NodeId,
    },
    /// An opaque application-state blob (e.g. a game core's private
    /// state), tagged so one log can carry several kinds.
    App {
        /// Application-defined discriminator.
        tag: u8,
        /// The encoded state.
        bytes: Vec<u8>,
    },
    /// A replicated lock-manager log entry (term + index locate it in the
    /// quorum log).
    Lock {
        /// Election term the entry was appended under.
        term: u64,
        /// 1-based position in the quorum log.
        index: u64,
        /// The replicated command.
        cmd: LockCmd,
    },
}

const TAG_IDENT: u8 = 1;
const TAG_TICK: u8 = 2;
const TAG_WRITE: u8 = 3;
const TAG_APP: u8 = 4;
const TAG_LOCK: u8 = 5;

impl DurRecord {
    /// The record's wire tag (also the `WalAppend` event operand).
    pub fn tag(&self) -> u8 {
        match self {
            DurRecord::Ident { .. } => TAG_IDENT,
            DurRecord::Tick { .. } => TAG_TICK,
            DurRecord::Write { .. } => TAG_WRITE,
            DurRecord::App { .. } => TAG_APP,
            DurRecord::Lock { .. } => TAG_LOCK,
        }
    }

    /// Encodes the record as a WAL payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(self.tag());
        match self {
            DurRecord::Ident { node, epoch } => {
                out.extend_from_slice(&u32::from(*node).to_le_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
            }
            DurRecord::Tick { time, lamport } => {
                out.extend_from_slice(&time.to_le_bytes());
                out.extend_from_slice(&lamport.to_le_bytes());
            }
            DurRecord::Write { object, offset, bytes, stamp, writer } => {
                out.extend_from_slice(&object.to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&stamp.to_le_bytes());
                out.extend_from_slice(&u32::from(*writer).to_le_bytes());
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
            }
            DurRecord::App { tag, bytes } => {
                out.push(*tag);
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
            }
            DurRecord::Lock { term, index, cmd } => {
                out.extend_from_slice(&term.to_le_bytes());
                out.extend_from_slice(&index.to_le_bytes());
                cmd.encode_into(&mut out);
            }
        }
        out
    }

    /// Decodes a WAL payload; `None` on any malformed input (the store
    /// treats that as corruption and stops replay).
    pub fn decode(payload: &[u8]) -> Option<DurRecord> {
        let mut r = Reader { data: payload, pos: 0 };
        let rec = match r.u8()? {
            TAG_IDENT => DurRecord::Ident { node: r.node()?, epoch: r.u32()? },
            TAG_TICK => DurRecord::Tick { time: r.u64()?, lamport: r.u64()? },
            TAG_WRITE => {
                let object = r.u32()?;
                let offset = r.u32()?;
                let stamp = r.u64()?;
                let writer = r.node()?;
                let bytes = r.bytes()?;
                DurRecord::Write { object, offset, bytes, stamp, writer }
            }
            TAG_APP => {
                let tag = r.u8()?;
                let bytes = r.bytes()?;
                DurRecord::App { tag, bytes }
            }
            TAG_LOCK => {
                let term = r.u64()?;
                let index = r.u64()?;
                DurRecord::Lock { term, index, cmd: LockCmd::decode_from(&mut r)? }
            }
            _ => return None,
        };
        if r.pos == payload.len() {
            Some(rec)
        } else {
            None
        }
    }
}

pub(crate) struct Reader<'a> {
    pub(crate) data: &'a [u8],
    pub(crate) pos: usize,
}

impl Reader<'_> {
    pub(crate) fn u8(&mut self) -> Option<u8> {
        let b = *self.data.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        let s = self.data.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(s.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        let s = self.data.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(s.try_into().unwrap()))
    }

    pub(crate) fn node(&mut self) -> Option<NodeId> {
        NodeId::try_from(self.u32()?).ok()
    }

    pub(crate) fn bytes(&mut self) -> Option<Vec<u8>> {
        let len = self.u32()? as usize;
        let s = self.data.get(self.pos..self.pos + len)?;
        self.pos += len;
        Some(s.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<DurRecord> {
        vec![
            DurRecord::Ident { node: 3, epoch: 7 },
            DurRecord::Tick { time: 42, lamport: 99 },
            DurRecord::Write { object: 5, offset: 16, bytes: vec![1, 2, 3], stamp: 8, writer: 2 },
            DurRecord::App { tag: 9, bytes: b"state".to_vec() },
            DurRecord::Lock { term: 2, index: 11, cmd: LockCmd::Grant { lock: 4, to: 1 } },
            DurRecord::Lock { term: 3, index: 12, cmd: LockCmd::Release { lock: 4, from: 1 } },
            DurRecord::Lock {
                term: 3,
                index: 13,
                cmd: LockCmd::Transfer { lock: 4, from: 1, to: 2 },
            },
        ]
    }

    #[test]
    fn records_round_trip() {
        for rec in samples() {
            let encoded = rec.encode();
            assert_eq!(DurRecord::decode(&encoded), Some(rec));
        }
    }

    #[test]
    fn trailing_garbage_and_truncation_are_rejected() {
        for rec in samples() {
            let mut encoded = rec.encode();
            encoded.push(0);
            assert_eq!(DurRecord::decode(&encoded), None, "trailing byte must fail");
            let short = &encoded[..encoded.len() - 2];
            assert_eq!(DurRecord::decode(short), None, "truncated payload must fail");
        }
        assert_eq!(DurRecord::decode(&[]), None);
        assert_eq!(DurRecord::decode(&[200]), None, "unknown tag");
    }
}
