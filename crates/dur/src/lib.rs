//! Crash-fault tolerance for S-DSO: write-ahead logging, snapshot
//! recovery, and quorum-replicated lock managers.
//!
//! The paper's exchange engine assumes processes never die; every
//! resilience layer so far (message faults in `sdso-net`, membership
//! churn in `sdso-member`) kept that assumption. This crate removes it:
//!
//! * [`CommitSink`] / [`Wal`] — a sync-on-commit byte sink and a
//!   length+CRC framed write-ahead log over it. Opening a log scans for a
//!   torn tail (a crash mid-append) and truncates back to the last whole
//!   record, so recovery always sees a *prefix* of the committed history.
//! * [`DurRecord`] / [`SnapshotImage`] / [`DurStore`] — the typed record
//!   set a process journals (identity, tick frontiers, object writes,
//!   application state), periodic snapshots that bound replay length, and
//!   the store that composes the two into a [`RecoveryImage`].
//! * [`LockReplica`] — entry consistency's lock-manager state replicated
//!   across a small leader-elected quorum: term-based elections with
//!   randomized timeouts over the transport's `DeadlineQueue`, log
//!   replication of grant/release/transfer records, and failover that
//!   re-derives the grant table from the committed log.
//! * [`crash`] — helpers that turn a `FaultPlan`'s crash schedule into
//!   the membership plan drivers replay it under (crash = abrupt leave,
//!   restart = late join with WAL-carried identity).
//!
//! Everything is deterministic: sinks can be in-memory ([`MemSink`]) for
//! simulator runs and proptests, elections draw their jitter from the
//! seeded `DetRng`, and the same fault plan replays bit-identically.

#![warn(missing_docs)]

pub mod commit;
pub mod crash;
pub mod quorum;
pub mod record;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use commit::{CommitFile, CommitSink, MemSink};
pub use crash::{crash_membership_plan, validate_crash_plan};
pub use quorum::{
    GrantTable, LockReplica, LogEntry, ProposeError, QuorumConfig, QuorumMsg, ReplicaRole,
};
pub use record::{DurRecord, LockCmd};
pub use snapshot::{SnapObject, SnapshotImage};
pub use store::{DurStore, RecoveryImage};
pub use wal::{crc32, Wal};
