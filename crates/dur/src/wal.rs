//! The write-ahead log: length+checksum framed records over a
//! [`CommitSink`], with torn-tail truncation on open.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! [payload_len: u32][crc32(payload): u32][payload: payload_len bytes]
//! ```
//!
//! A crash can interrupt an append anywhere — a partial header, a partial
//! payload, or garbage from a sector rewrite. [`Wal::open`] scans from
//! the front and stops at the first frame that is incomplete or fails its
//! checksum, truncating the sink back to the end of the last whole
//! record. Recovery therefore always observes a *prefix* of the appended
//! history, never a reordered or interior-corrupted one (an interior
//! corruption cuts the prefix at that point — strictly safer than
//! trusting the tail behind it).

use std::io;

use crate::commit::CommitSink;

/// Bytes of framing per record: payload length + checksum.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a single record's payload; anything larger in a header
/// is treated as corruption (a torn header can otherwise fabricate an
/// absurd length that swallows the rest of the log).
pub const MAX_RECORD: u32 = 1 << 26;

/// CRC-32 (IEEE 802.3, reflected) of `bytes`. Bitwise, table-free: WAL
/// records are small and appended once per committed interval, so
/// throughput is irrelevant next to the `fsync` they ride with.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A write-ahead log over a [`CommitSink`].
#[derive(Debug)]
pub struct Wal<S: CommitSink> {
    sink: S,
    records: u64,
}

/// What [`Wal::open`] recovered from the sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecovery {
    /// Every whole, checksum-valid record payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes cut from the tail (0 for a cleanly-closed log).
    pub truncated_bytes: u64,
}

impl<S: CommitSink> Wal<S> {
    /// Opens a log over `sink`: scans every frame, truncates the first
    /// torn or corrupt tail, and returns the log plus the recovered
    /// record payloads.
    ///
    /// # Errors
    ///
    /// Returns the sink's I/O errors.
    pub fn open(mut sink: S) -> io::Result<(Self, WalRecovery)> {
        let data = sink.read_all()?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        while let Some(header) = data.get(pos..pos + FRAME_HEADER) {
            let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
            let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
            if len > MAX_RECORD {
                break;
            }
            let body_start = pos + FRAME_HEADER;
            let Some(payload) = data.get(body_start..body_start + len as usize) else { break };
            if crc32(payload) != crc {
                break;
            }
            records.push(payload.to_vec());
            pos = body_start + len as usize;
        }
        let truncated_bytes = (data.len() - pos) as u64;
        if truncated_bytes > 0 {
            sink.truncate(pos as u64)?;
        }
        let wal = Wal { sink, records: records.len() as u64 };
        Ok((wal, WalRecovery { records, truncated_bytes }))
    }

    /// Appends one record and commits it.
    ///
    /// # Errors
    ///
    /// Returns the sink's I/O errors. A failed append leaves at worst a
    /// torn tail, which the next open truncates.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`MAX_RECORD`] bytes.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        assert!(payload.len() as u64 <= u64::from(MAX_RECORD), "WAL record too large");
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.sink.append(&frame)?;
        self.records += 1;
        Ok(())
    }

    /// Number of records appended through this handle plus those
    /// recovered at open.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Committed log length in bytes.
    pub fn len(&self) -> u64 {
        self.sink.len()
    }

    /// Whether the log holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.sink.is_empty()
    }

    /// Truncates the log to empty (after a successful checkpoint has made
    /// its content redundant).
    ///
    /// # Errors
    ///
    /// Returns the sink's I/O errors.
    pub fn reset(&mut self) -> io::Result<()> {
        self.sink.truncate(0)?;
        self.records = 0;
        Ok(())
    }

    /// The underlying sink (for tests simulating crashes).
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consumes the log, returning the sink.
    pub fn into_sink(self) -> S {
        self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commit::MemSink;
    use proptest::prelude::*;

    fn wal_with(payloads: &[&[u8]]) -> MemSink {
        let (mut wal, rec) = Wal::open(MemSink::new()).unwrap();
        assert_eq!(rec.truncated_bytes, 0);
        for p in payloads {
            wal.append(p).unwrap();
        }
        wal.into_sink()
    }

    #[test]
    fn round_trips_records_in_order() {
        let sink = wal_with(&[b"one", b"two", b"", b"three"]);
        let (wal, rec) = Wal::open(sink).unwrap();
        assert_eq!(rec.records, vec![b"one".to_vec(), b"two".to_vec(), vec![], b"three".to_vec()]);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(wal.records(), 4);
    }

    #[test]
    fn torn_tail_is_truncated_to_last_whole_record() {
        let sink = wal_with(&[b"alpha", b"beta"]);
        let full = sink.data().to_vec();
        // Cut mid-way through the second record's payload.
        let cut = full.len() - 2;
        let torn = MemSink::from_bytes(full[..cut].to_vec());
        let (wal, rec) = Wal::open(torn).unwrap();
        assert_eq!(rec.records, vec![b"alpha".to_vec()]);
        assert!(rec.truncated_bytes > 0);
        // The sink itself was cut back: reopening is clean.
        let (_, rec2) = Wal::open(wal.into_sink()).unwrap();
        assert_eq!(rec2.records, vec![b"alpha".to_vec()]);
        assert_eq!(rec2.truncated_bytes, 0);
    }

    #[test]
    fn corrupt_byte_cuts_the_prefix_there() {
        let sink = wal_with(&[b"aaaa", b"bbbb", b"cccc"]);
        let mut bytes = sink.data().to_vec();
        // Flip a bit inside the second record's payload.
        let second_payload_at = (FRAME_HEADER + 4) + FRAME_HEADER + 1;
        bytes[second_payload_at] ^= 0x40;
        let (_, rec) = Wal::open(MemSink::from_bytes(bytes)).unwrap();
        assert_eq!(rec.records, vec![b"aaaa".to_vec()], "corruption cuts from its record on");
    }

    #[test]
    fn absurd_length_header_is_corruption_not_allocation() {
        let sink = wal_with(&[b"ok"]);
        let mut bytes = sink.data().to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let (_, rec) = Wal::open(MemSink::from_bytes(bytes)).unwrap();
        assert_eq!(rec.records.len(), 1);
    }

    #[test]
    fn append_after_torn_open_continues_cleanly() {
        let sink = wal_with(&[b"first", b"second"]);
        let full = sink.data().to_vec();
        let torn = MemSink::from_bytes(full[..full.len() - 3].to_vec());
        let (mut wal, rec) = Wal::open(torn).unwrap();
        assert_eq!(rec.records.len(), 1);
        wal.append(b"third").unwrap();
        let (_, rec2) = Wal::open(wal.into_sink()).unwrap();
        assert_eq!(rec2.records, vec![b"first".to_vec(), b"third".to_vec()]);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Satellite 3: truncating the log at *any* byte offset recovers a
        /// prefix of the appended records, never garbage, never a gap.
        fn truncation_anywhere_yields_a_prefix(
            payload_lens in proptest::collection::vec(0usize..40, 1..8),
            cut_permille in 0u64..1000,
        ) {
            let payloads: Vec<Vec<u8>> = payload_lens
                .iter()
                .enumerate()
                .map(|(i, &l)| vec![i as u8 + 1; l])
                .collect();
            let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
            let sink = wal_with(&refs);
            let full = sink.data().to_vec();
            let cut = (full.len() * cut_permille as usize) / 1000;
            let (_, rec) = Wal::open(MemSink::from_bytes(full[..cut].to_vec())).unwrap();
            prop_assert!(rec.records.len() <= payloads.len());
            for (got, want) in rec.records.iter().zip(&payloads) {
                prop_assert_eq!(got, want, "recovered records are a clean prefix");
            }
        }

        /// Flipping a byte anywhere in the log still recovers a prefix of
        /// the appended records (corruption cuts, it never fabricates).
        fn corruption_anywhere_yields_a_prefix(
            payload_lens in proptest::collection::vec(1usize..40, 1..8),
            pos_permille in 0u64..1000,
            flip in 1u8..=255,
        ) {
            let payloads: Vec<Vec<u8>> = payload_lens
                .iter()
                .enumerate()
                .map(|(i, &l)| vec![i as u8 + 1; l])
                .collect();
            let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
            let sink = wal_with(&refs);
            let mut bytes = sink.data().to_vec();
            let pos = ((bytes.len() - 1) * pos_permille as usize) / 1000;
            bytes[pos] ^= flip;
            let (_, rec) = Wal::open(MemSink::from_bytes(bytes)).unwrap();
            prop_assert!(rec.records.len() <= payloads.len());
            for (got, want) in rec.records.iter().zip(&payloads) {
                prop_assert_eq!(got, want, "recovered records are a clean prefix");
            }
        }
    }
}
