//! Point-in-time object-store snapshots.
//!
//! A snapshot bounds WAL replay: once an image is durably on disk, every
//! record it covers is redundant and the log can be truncated. Images are
//! self-checking — a magic header, a version byte and a trailing CRC over
//! the body — so a half-written image (crash during checkpoint, before
//! the atomic rename landed) is detected and ignored, falling back to the
//! previous state.

use sdso_net::NodeId;

use crate::record::Reader;
use crate::wal::crc32;

const MAGIC: &[u8; 4] = b"SDSN";
const VERSION: u8 = 1;

/// One object's state inside a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapObject {
    /// The object's id.
    pub id: u32,
    /// Lamport stamp of its newest write.
    pub stamp: u64,
    /// The stamping writer (version tie-breaker).
    pub writer: NodeId,
    /// The full object body.
    pub body: Vec<u8>,
}

/// A point-in-time image of one process's durable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotImage {
    /// The owning process.
    pub node: NodeId,
    /// Membership epoch at checkpoint time.
    pub epoch: u32,
    /// Logical (rendezvous-tick) frontier at checkpoint time.
    pub time: u64,
    /// Lamport frontier at checkpoint time.
    pub lamport: u64,
    /// Every object modified since initialisation.
    pub objects: Vec<SnapObject>,
    /// Opaque application state (e.g. the game core).
    pub app: Vec<u8>,
}

impl SnapshotImage {
    /// Encodes the image with its integrity trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&u32::from(self.node).to_le_bytes());
        body.extend_from_slice(&self.epoch.to_le_bytes());
        body.extend_from_slice(&self.time.to_le_bytes());
        body.extend_from_slice(&self.lamport.to_le_bytes());
        body.extend_from_slice(&(self.objects.len() as u32).to_le_bytes());
        for obj in &self.objects {
            body.extend_from_slice(&obj.id.to_le_bytes());
            body.extend_from_slice(&obj.stamp.to_le_bytes());
            body.extend_from_slice(&u32::from(obj.writer).to_le_bytes());
            body.extend_from_slice(&(obj.body.len() as u32).to_le_bytes());
            body.extend_from_slice(&obj.body);
        }
        body.extend_from_slice(&(self.app.len() as u32).to_le_bytes());
        body.extend_from_slice(&self.app);

        let mut out = Vec::with_capacity(body.len() + 9);
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out
    }

    /// Decodes an image; `None` when the bytes are missing, torn, or fail
    /// their checksum (recovery then proceeds without a snapshot).
    pub fn decode(bytes: &[u8]) -> Option<SnapshotImage> {
        if bytes.len() < MAGIC.len() + 1 + 4 || &bytes[..4] != MAGIC || bytes[4] != VERSION {
            return None;
        }
        let body = &bytes[5..bytes.len() - 4];
        let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        if crc32(body) != crc {
            return None;
        }
        let mut r = Reader { data: body, pos: 0 };
        let node = r.node()?;
        let epoch = r.u32()?;
        let time = r.u64()?;
        let lamport = r.u64()?;
        let count = r.u32()? as usize;
        let mut objects = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let id = r.u32()?;
            let stamp = r.u64()?;
            let writer = r.node()?;
            let body = r.bytes()?;
            objects.push(SnapObject { id, stamp, writer, body });
        }
        let app = r.bytes()?;
        if r.pos != body.len() {
            return None;
        }
        Some(SnapshotImage { node, epoch, time, lamport, objects, app })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotImage {
        SnapshotImage {
            node: 2,
            epoch: 5,
            time: 31,
            lamport: 90,
            objects: vec![
                SnapObject { id: 1, stamp: 88, writer: 2, body: vec![9; 16] },
                SnapObject { id: 7, stamp: 90, writer: 0, body: vec![1, 2, 3] },
            ],
            app: b"core-state".to_vec(),
        }
    }

    #[test]
    fn image_round_trips() {
        let img = sample();
        assert_eq!(SnapshotImage::decode(&img.encode()), Some(img));
    }

    #[test]
    fn torn_or_corrupt_image_is_rejected() {
        let encoded = sample().encode();
        for cut in [0, 3, 5, encoded.len() / 2, encoded.len() - 1] {
            assert_eq!(SnapshotImage::decode(&encoded[..cut]), None, "torn at {cut}");
        }
        let mut flipped = encoded.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert_eq!(SnapshotImage::decode(&flipped), None, "interior corruption");
        assert_eq!(SnapshotImage::decode(b"not a snapshot"), None);
    }
}
