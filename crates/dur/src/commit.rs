//! Sync-on-commit byte sinks — the sole raw-write site in this crate.
//!
//! Durability is only as strong as its weakest write path, so every byte
//! that must survive a crash funnels through [`CommitSink`]: an append is
//! not "committed" until the sink has flushed it to stable storage, and a
//! whole-content replace is atomic (readers see the old content or the
//! new, never a mix). The `durability` lint in `sdso-check` enforces that
//! no other module in `crates/dur` performs raw file writes.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// A durable byte sink with sync-on-commit semantics.
///
/// Implementations promise that when [`CommitSink::append`] or
/// [`CommitSink::replace`] returns `Ok`, the bytes survive a process
/// crash (for the in-memory sink, "survive" means: remain in the buffer a
/// test hands to the next incarnation).
pub trait CommitSink {
    /// Appends `bytes` at the end and commits them to stable storage
    /// before returning.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Truncates the sink to `len` bytes and commits the new length.
    /// Recovery uses this to cut a torn tail.
    fn truncate(&mut self, len: u64) -> io::Result<()>;

    /// Current committed length in bytes.
    fn len(&self) -> u64;

    /// Whether the sink holds no bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads the entire committed content.
    fn read_all(&mut self) -> io::Result<Vec<u8>>;

    /// Atomically replaces the entire content with `bytes`: after a crash
    /// at any point, a reader sees either the old content or the new one.
    fn replace(&mut self, bytes: &[u8]) -> io::Result<()>;
}

/// A [`CommitSink`] over a real file: appends are `write` + `fsync`,
/// replaces go through a temporary file renamed into place (the classic
/// write-tmp / fsync / rename / fsync-dir sequence).
#[derive(Debug)]
pub struct CommitFile {
    file: File,
    path: PathBuf,
    len: u64,
}

impl CommitFile {
    /// Opens (creating if absent) the file at `path` for durable appends.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        // Existing content is the recovery source — never truncate here.
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let len = file.seek(SeekFrom::End(0))?;
        Ok(CommitFile { file, path, len })
    }

    /// The file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flushes the directory entry after a rename, so the replacement
    /// itself is durable, not just the replacing file's content.
    fn sync_parent_dir(&self) -> io::Result<()> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                File::open(parent)?.sync_all()?;
            }
        }
        Ok(())
    }
}

impl CommitSink for CommitFile {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(bytes)?;
        self.file.sync_data()?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.file.sync_data()?;
        self.len = len;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::with_capacity(self.len as usize);
        self.file.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn replace(&mut self, bytes: &[u8]) -> io::Result<()> {
        let tmp_path = self.path.with_extension("tmp");
        {
            let mut tmp =
                OpenOptions::new().write(true).create(true).truncate(true).open(&tmp_path)?;
            tmp.write_all(bytes)?;
            tmp.sync_all()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        self.sync_parent_dir()?;
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.len = bytes.len() as u64;
        Ok(())
    }
}

/// An in-memory [`CommitSink`] for the simulator and property tests: the
/// buffer *is* the stable storage, so a test models a crash by keeping
/// the buffer and dropping everything else — and models torn writes by
/// mutilating the buffer's tail before handing it to the next
/// incarnation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemSink {
    data: Vec<u8>,
}

impl MemSink {
    /// An empty sink.
    pub fn new() -> Self {
        MemSink::default()
    }

    /// Wraps pre-existing "stable storage" (e.g. the buffer surviving a
    /// simulated crash).
    pub fn from_bytes(data: Vec<u8>) -> Self {
        MemSink { data }
    }

    /// The committed bytes, for inspection or crash simulation.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Consumes the sink, returning the committed bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }
}

impl CommitSink for MemSink {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.data.extend_from_slice(bytes);
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.data.truncate(len as usize);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.data.len() as u64
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        Ok(self.data.clone())
    }

    fn replace(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.data = bytes.to_vec();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_sink_round_trips() {
        let mut s = MemSink::new();
        s.append(b"abc").unwrap();
        s.append(b"def").unwrap();
        assert_eq!(s.len(), 6);
        assert_eq!(s.read_all().unwrap(), b"abcdef");
        s.truncate(4).unwrap();
        assert_eq!(s.read_all().unwrap(), b"abcd");
        s.replace(b"xy").unwrap();
        assert_eq!(s.read_all().unwrap(), b"xy");
    }

    #[test]
    fn commit_file_appends_and_replaces() {
        let dir = std::env::temp_dir().join(format!("sdso-dur-commit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        {
            let mut f = CommitFile::open(&path).unwrap();
            f.append(b"hello ").unwrap();
            f.append(b"world").unwrap();
            assert_eq!(f.read_all().unwrap(), b"hello world");
        }
        {
            // Reopen: length is recovered from the file.
            let mut f = CommitFile::open(&path).unwrap();
            assert_eq!(f.len(), 11);
            f.truncate(5).unwrap();
            assert_eq!(f.read_all().unwrap(), b"hello");
            f.replace(b"new content").unwrap();
            assert_eq!(f.read_all().unwrap(), b"new content");
            f.append(b"!").unwrap();
            assert_eq!(f.read_all().unwrap(), b"new content!");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
