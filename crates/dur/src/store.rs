//! The durable store: one WAL plus one snapshot image per process.
//!
//! Write path: every committed fact is appended to the WAL
//! ([`DurStore::append`]); periodically the caller folds its full state
//! into a [`SnapshotImage`] and calls [`DurStore::checkpoint`], which
//! atomically replaces the on-disk image *then* truncates the WAL — a
//! crash between the two steps leaves a valid image plus a redundant (but
//! harmless, idempotently replayable) log.
//!
//! Recovery path: [`DurStore::open`] decodes the newest valid image (a
//! torn checkpoint falls back to none), replays the WAL's whole-record
//! prefix, and hands both to the caller as a [`RecoveryImage`].

use std::io;
use std::path::Path;

use sdso_net::NodeId;

use crate::commit::{CommitFile, CommitSink, MemSink};
use crate::record::DurRecord;
use crate::snapshot::SnapshotImage;
use crate::wal::Wal;

/// Everything recovery learned from stable storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryImage {
    /// The newest valid checkpoint, if one survived.
    pub snapshot: Option<SnapshotImage>,
    /// Typed records replayed from the WAL (after the snapshot, if any).
    pub records: Vec<DurRecord>,
    /// Bytes the torn-tail scan cut from the WAL.
    pub truncated_bytes: u64,
    /// Records whose payload no longer decoded (counted, then replay
    /// stopped — undecodable frames are corruption, not data).
    pub undecodable: usize,
}

impl RecoveryImage {
    /// A recovery with nothing on stable storage (first boot).
    pub fn empty() -> Self {
        RecoveryImage { snapshot: None, records: Vec::new(), truncated_bytes: 0, undecodable: 0 }
    }

    /// Whether stable storage held any state at all.
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_none() && self.records.is_empty()
    }

    /// The recovered identity: the snapshot's, or the newest `Ident`
    /// record's.
    pub fn ident(&self) -> Option<(NodeId, u32)> {
        let from_wal = self.records.iter().rev().find_map(|r| match r {
            DurRecord::Ident { node, epoch } => Some((*node, *epoch)),
            _ => None,
        });
        from_wal.or_else(|| self.snapshot.as_ref().map(|s| (s.node, s.epoch)))
    }

    /// The recovered `(logical_time, lamport)` frontier: the snapshot's,
    /// advanced by every later `Tick` record.
    pub fn frontier(&self) -> (u64, u64) {
        let (mut time, mut lamport) =
            self.snapshot.as_ref().map_or((0, 0), |s| (s.time, s.lamport));
        for rec in &self.records {
            match rec {
                DurRecord::Tick { time: t, lamport: l } => {
                    time = time.max(*t);
                    lamport = lamport.max(*l);
                }
                DurRecord::Write { stamp, .. } => lamport = lamport.max(*stamp),
                _ => {}
            }
        }
        (time, lamport)
    }

    /// The newest application-state blob with `tag`: the WAL's (newer),
    /// else — for tag 0, the conventional "primary state" tag — the
    /// snapshot's `app` field.
    pub fn app_state(&self, tag: u8) -> Option<&[u8]> {
        let from_wal = self.records.iter().rev().find_map(|r| match r {
            DurRecord::App { tag: t, bytes } if *t == tag => Some(bytes.as_slice()),
            _ => None,
        });
        from_wal.or_else(|| {
            (tag == 0)
                .then(|| self.snapshot.as_ref().map(|s| s.app.as_slice()))
                .flatten()
                .filter(|a| !a.is_empty())
        })
    }
}

/// One process's durable storage: a WAL and a snapshot slot over a
/// generic [`CommitSink`].
#[derive(Debug)]
pub struct DurStore<S: CommitSink> {
    wal: Wal<S>,
    snap: S,
}

impl DurStore<CommitFile> {
    /// Opens (creating as needed) the store under directory `dir` — the
    /// conventional `wal.log` / `snap.img` file pair — and recovers
    /// whatever stable state it holds.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O errors.
    pub fn open_dir(dir: impl AsRef<Path>) -> io::Result<(Self, RecoveryImage)> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let wal_sink = CommitFile::open(dir.join("wal.log"))?;
        let snap_sink = CommitFile::open(dir.join("snap.img"))?;
        DurStore::open(wal_sink, snap_sink)
    }
}

impl DurStore<MemSink> {
    /// A fresh, empty in-memory store (simulator nodes, tests).
    pub fn in_memory() -> Self {
        let (store, recovered) = DurStore::open(MemSink::new(), MemSink::new()).unwrap();
        debug_assert!(recovered.is_empty());
        store
    }

    /// Re-opens a store from the byte pair a previous incarnation's
    /// [`DurStore::into_bytes`] produced — the simulator's model of
    /// rebooting off the same disk.
    ///
    /// # Errors
    ///
    /// Never fails for in-memory sinks; kept fallible for signature
    /// parity with the fs path.
    pub fn from_bytes(wal: Vec<u8>, snap: Vec<u8>) -> io::Result<(Self, RecoveryImage)> {
        DurStore::open(MemSink::from_bytes(wal), MemSink::from_bytes(snap))
    }

    /// The `(wal, snapshot)` byte pair representing this store's stable
    /// storage.
    pub fn into_bytes(self) -> (Vec<u8>, Vec<u8>) {
        (self.wal.into_sink().into_bytes(), self.snap.into_bytes())
    }
}

impl<S: CommitSink> DurStore<S> {
    /// Opens a store over explicit sinks and recovers its state.
    ///
    /// # Errors
    ///
    /// Returns the sinks' I/O errors.
    pub fn open(wal_sink: S, mut snap_sink: S) -> io::Result<(Self, RecoveryImage)> {
        let snapshot = SnapshotImage::decode(&snap_sink.read_all()?);
        let (wal, wal_rec) = Wal::open(wal_sink)?;
        let mut records = Vec::with_capacity(wal_rec.records.len());
        let mut undecodable = 0usize;
        for payload in &wal_rec.records {
            match DurRecord::decode(payload) {
                Some(rec) => records.push(rec),
                None => {
                    // A framed-but-untyped record: corruption the CRC
                    // happened to miss, or a format from the future.
                    // Either way nothing after it can be trusted.
                    undecodable = wal_rec.records.len() - records.len();
                    break;
                }
            }
        }
        let image = RecoveryImage {
            snapshot,
            records,
            truncated_bytes: wal_rec.truncated_bytes,
            undecodable,
        };
        Ok((DurStore { wal, snap: snap_sink }, image))
    }

    /// Appends one record to the WAL and commits it.
    ///
    /// # Errors
    ///
    /// Returns the sink's I/O errors.
    pub fn append(&mut self, rec: &DurRecord) -> io::Result<()> {
        self.wal.append(&rec.encode())
    }

    /// Durably replaces the snapshot with `image`, then truncates the
    /// WAL. Crashing between the two steps is safe: the log's records are
    /// idempotent against the newer image.
    ///
    /// # Errors
    ///
    /// Returns the sinks' I/O errors.
    pub fn checkpoint(&mut self, image: &SnapshotImage) -> io::Result<()> {
        self.snap.replace(&image.encode())?;
        self.wal.reset()
    }

    /// WAL length in bytes (for checkpoint pacing).
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// Records appended or recovered through this handle's WAL.
    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LockCmd;
    use crate::snapshot::SnapObject;

    fn write(object: u32, stamp: u64) -> DurRecord {
        DurRecord::Write { object, offset: 0, bytes: vec![stamp as u8], stamp, writer: 1 }
    }

    #[test]
    fn append_crash_recover_round_trip() {
        let mut store = DurStore::in_memory();
        store.append(&DurRecord::Ident { node: 1, epoch: 0 }).unwrap();
        store.append(&write(4, 10)).unwrap();
        store.append(&DurRecord::Tick { time: 1, lamport: 10 }).unwrap();
        let (wal, snap) = store.into_bytes();

        let (_, rec) = DurStore::from_bytes(wal, snap).unwrap();
        assert_eq!(rec.ident(), Some((1, 0)));
        assert_eq!(rec.frontier(), (1, 10));
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.truncated_bytes, 0);
    }

    #[test]
    fn checkpoint_bounds_replay_and_survives() {
        let mut store = DurStore::in_memory();
        store.append(&write(4, 5)).unwrap();
        let image = SnapshotImage {
            node: 2,
            epoch: 3,
            time: 9,
            lamport: 20,
            objects: vec![SnapObject { id: 4, stamp: 20, writer: 2, body: vec![7] }],
            app: b"app".to_vec(),
        };
        store.checkpoint(&image).unwrap();
        assert_eq!(store.wal_len(), 0, "checkpoint truncates the log");
        store.append(&DurRecord::Tick { time: 10, lamport: 21 }).unwrap();
        let (wal, snap) = store.into_bytes();

        let (_, rec) = DurStore::from_bytes(wal, snap).unwrap();
        assert_eq!(rec.snapshot.as_ref(), Some(&image));
        assert_eq!(rec.ident(), Some((2, 3)));
        assert_eq!(rec.frontier(), (10, 21), "WAL ticks advance the snapshot frontier");
        assert_eq!(rec.app_state(0), Some(b"app".as_slice()));
    }

    #[test]
    fn torn_snapshot_falls_back_to_none() {
        let mut store = DurStore::in_memory();
        let image =
            SnapshotImage { node: 0, epoch: 1, time: 5, lamport: 6, objects: vec![], app: vec![] };
        store.checkpoint(&image).unwrap();
        store.append(&write(1, 7)).unwrap();
        let (wal, snap) = store.into_bytes();
        let torn_snap = snap[..snap.len() / 2].to_vec();
        let (_, rec) = DurStore::from_bytes(wal, torn_snap).unwrap();
        assert!(rec.snapshot.is_none(), "half-written image is ignored");
        assert_eq!(rec.records, vec![write(1, 7)], "the WAL still replays");
    }

    #[test]
    fn wal_app_state_shadows_snapshot_app_state() {
        let mut store = DurStore::in_memory();
        let image = SnapshotImage {
            node: 0,
            epoch: 0,
            time: 1,
            lamport: 1,
            objects: vec![],
            app: b"old".to_vec(),
        };
        store.checkpoint(&image).unwrap();
        store.append(&DurRecord::App { tag: 0, bytes: b"new".to_vec() }).unwrap();
        let (wal, snap) = store.into_bytes();
        let (_, rec) = DurStore::from_bytes(wal, snap).unwrap();
        assert_eq!(rec.app_state(0), Some(b"new".as_slice()));
        assert_eq!(rec.app_state(1), None, "unknown tag: snapshot app is tag-0 only");
    }

    #[test]
    fn lock_records_survive_with_the_rest() {
        let mut store = DurStore::in_memory();
        let lock = DurRecord::Lock { term: 1, index: 1, cmd: LockCmd::Grant { lock: 3, to: 0 } };
        store.append(&lock).unwrap();
        let (wal, snap) = store.into_bytes();
        let (_, rec) = DurStore::from_bytes(wal, snap).unwrap();
        assert_eq!(rec.records, vec![lock]);
    }
}
