//! Fixture: host time and OS entropy in replay-critical code (must trip
//! `wall-clock`).

pub fn stamp() -> u128 {
    let started = std::time::Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    started.elapsed().as_micros()
}

pub fn jitter() -> u64 {
    // Seeded from the environment: not replayable.
    let mut rng = thread_rng();
    rng.next_u64()
}
