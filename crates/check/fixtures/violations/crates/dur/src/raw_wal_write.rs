//! Fixture: a WAL append that writes the record straight to the file
//! (must trip `durability`). Nothing here fsyncs — the OS page cache
//! "commits" the record, the process reports it durable, and a crash
//! eats it. Every one of these paths must instead funnel through the
//! sync-on-commit `CommitSink`.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

pub struct RawWal {
    file: File,
}

impl RawWal {
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(RawWal { file: File::create(path)? })
    }

    pub fn append(&mut self, record: &[u8]) -> io::Result<()> {
        self.file.write_all(record)
    }

    pub fn append_partial(&mut self, record: &[u8]) -> io::Result<usize> {
        self.file.write(record)
    }
}

pub fn dump_snapshot(path: &Path, bytes: &[u8]) -> io::Result<()> {
    std::fs::write(path, bytes)
}

pub fn reopen(path: &Path) -> io::Result<File> {
    OpenOptions::new().append(true).open(path)
}
