//! Fixture: in-scope protocol code calling across the crate boundary into
//! a helper that panics (must trip cross-file `no-panic` at this call
//! site, not inside the helper's own file).

pub fn apply_update(bytes: &[u8]) -> Update {
    decode_update_header(bytes)
}
