//! Fixture: panics on a protocol path (must trip `no-panic`).

pub fn grant(granted: &mut std::collections::BTreeMap<u32, u8>, object: u32) -> u8 {
    let mode = granted.remove(&object).unwrap();
    if mode > 2 {
        panic!("bad mode {mode}");
    }
    mode
}

pub fn pump(queue: &mut Vec<u32>) -> u32 {
    queue.pop().expect("queue is never empty")
}
