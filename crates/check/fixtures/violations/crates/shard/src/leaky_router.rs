//! Fixture: a leaked-cross-region-diff router (must trip
//! `region-routing`). The decision checks only that the object falls on
//! the lattice and never consults the peer's interest set, so every
//! live diff ships to every peer — full-mesh traffic wearing a sharded
//! protocol's name.

pub struct LeakyRouter {
    pub cells: u32,
}

impl LeakyRouter {
    pub fn routes(&self, _peer: u16, object: u32) -> bool {
        object < self.cells
    }
}
