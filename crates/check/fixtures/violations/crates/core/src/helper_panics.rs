//! Fixture: out-of-scope helper that panics; reached from
//! `crates/protocols/src/cross_panic.rs` (part of the cross-file
//! `no-panic` fixture). This file itself is outside the file-scoped
//! `no-panic` scope, so only the reachability pass can see it.

pub fn decode_update_header(bytes: &[u8]) -> Update {
    let tag = bytes.first().unwrap();
    Update::from_tag(*tag)
}
