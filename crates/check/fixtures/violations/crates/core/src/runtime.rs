//! Fixture: catch-all arm over a wire enum (must trip `exhaustive-match`).

pub fn classify(msg: DsoMessage) -> &'static str {
    match msg {
        DsoMessage::Data { .. } => "data",
        DsoMessage::Sync { .. } => "sync",
        _ => "other",
    }
}
