//! Fixture: a version-rejecting codec path (must trip `wire-compat`).
//! Both halves of the compatibility contract are broken here: the offer
//! handler errors on anything below v2 (dropping every not-yet-upgraded
//! peer off the wire), and the decoder's wildcard arm rejects instead of
//! routing unknown versions to the absolute v1 path — so a future v3
//! sender is cut off too, even though v3 would still negotiate down.

pub const CODEC_V1: u8 = 1;
pub const CODEC_V2: u8 = 2;

pub struct StrictCodec {
    pub peer_version: u8,
}

pub enum CodecError {
    Unsupported(u8),
}

impl StrictCodec {
    pub fn on_offer(&mut self, version: u8) -> Result<(), CodecError> {
        if version < CODEC_V2 {
            return Err(CodecError::Unsupported(version));
        }
        self.peer_version = version;
        Ok(())
    }

    pub fn decode(&self, version: u8, blob: &[u8]) -> Result<Vec<u8>, CodecError> {
        match version {
            CODEC_V2 => Ok(blob.to_vec()),
            other => Err(CodecError::Unsupported(other)),
        }
    }
}
