//! Fixture: per-call allocation in a marked hot path (must trip
//! `no-alloc-in-hot-path`).

/// Encodes one frame into `out`. sdso-check: hot-path
pub fn append_frame_badly(out: &mut Vec<u8>, payload: &Payload) {
    let copy = payload.bytes.to_vec();
    out.extend_from_slice(&copy);
}

/// Flushes the batch. sdso-check: hot-path
pub fn flush_badly(out: &mut Vec<u8>) {
    let scratch = make_scratch_badly();
    out.extend_from_slice(&scratch);
}

// Unmarked and allocating: the cross-file pass must flag the call above.
fn make_scratch_badly() -> Vec<u8> {
    Vec::with_capacity(64)
}
