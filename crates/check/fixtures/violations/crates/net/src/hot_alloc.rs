//! Fixture: per-call allocation in a marked hot path (must trip
//! `no-alloc-in-hot-path`).

/// Encodes one frame into `out`. sdso-check: hot-path
pub fn append_frame_badly(out: &mut Vec<u8>, payload: &Payload) {
    let copy = payload.bytes.to_vec();
    out.extend_from_slice(&copy);
}
