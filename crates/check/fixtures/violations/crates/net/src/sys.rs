//! Fixture: FFI module without a `## Safety audit` table and an `unsafe`
//! block without a SAFETY: justification (must trip `unsafe-audit` twice).

extern "C" {
    fn eventfd(initval: u32, flags: i32) -> i32;
}

pub fn make_eventfd() -> i32 {
    unsafe { eventfd(0, 0) }
}
