//! Fixture: raw descriptor escaping its owning type outside sys.rs (must
//! trip `fd-ownership`).

use std::os::fd::{AsRawFd, RawFd};

pub fn leak_listener_fd(l: &std::net::TcpListener) -> RawFd {
    l.as_raw_fd()
}
