//! Fixture: helper with a blocking channel receive, reachable from the
//! reactor's `run` across files (part of the `no-blocking-in-reactor`
//! fixture).

pub fn drain_commands_slowly(rx: &Receiver<Command>) {
    while let Ok(cmd) = rx.recv() {
        dispatch(cmd);
    }
}
