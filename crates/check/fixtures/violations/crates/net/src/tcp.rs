//! Fixture: ABBA lock-order inversion in the TCP transport (must trip
//! `lock-order`).

pub fn broadcast(&self) {
    let readers = self.readers.lock();
    for peer in readers.iter() {
        // Inversion: `writers` (rank 0) taken while `readers` (rank 1) is
        // still held; the acceptor thread takes them the other way round.
        let mut slot = self.writers[usize::from(*peer)].lock();
        slot.flush();
    }
}
