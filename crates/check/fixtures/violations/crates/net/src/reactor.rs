//! Fixture: blocking constructs on the poll thread (must trip
//! `no-blocking-in-reactor` three ways: a direct sleep, a lock guard held
//! across `epoll_wait`, and a blocking receive reached through a helper in
//! another file).

impl Reactor {
    fn run(mut self) {
        let guard = self.shared.peer_events.lock();
        self.poller.wait(&mut self.events, None);
        drop(guard);
        std::thread::sleep(Duration::from_millis(5));
        drain_commands_slowly(&self.cmd_rx);
    }
}
