//! Fixture: the bug-removed twin of the violations leaky_router.rs —
//! the decision consults the peer's interest set before shipping, so a
//! diff crosses a region boundary only toward peers whose sensing range
//! covers it (must lint clean).

use std::collections::BTreeMap;

pub struct InterestedRouter {
    pub cells: u32,
    pub interest: BTreeMap<u16, (u32, u32)>,
}

impl InterestedRouter {
    pub fn routes(&self, peer: u16, object: u32) -> bool {
        match self.interest.get(&peer) {
            Some(&(lo, hi)) => object >= lo && object < hi,
            // An unobserved peer conservatively receives everything:
            // routing defers traffic, it must never lose it.
            None => object < self.cells,
        }
    }
}
