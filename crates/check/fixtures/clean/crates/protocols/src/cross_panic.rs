//! Fixture: the bug-removed twin of the violations cross_panic.rs — the
//! cross-crate helper is total, so the boundary call is fine (must lint
//! clean).

pub fn apply_update(bytes: &[u8]) -> Result<Update, CodecError> {
    decode_update_header(bytes)
}
