//! Fixture: the bug-removed twin of the violations hot_alloc.rs — the hot
//! path appends in place and its callee reuses pooled scratch (must lint
//! clean).

/// Encodes one frame into `out`. sdso-check: hot-path
pub fn append_frame(out: &mut Vec<u8>, payload: &Payload) {
    out.extend_from_slice(&payload.bytes);
}

/// Flushes the batch. sdso-check: hot-path
pub fn flush(out: &mut Vec<u8>, pool: &BufPool) {
    fill_from_pool(out, pool);
}

/// Marked itself, so the cross-file pass checks it in its own right.
/// sdso-check: hot-path
fn fill_from_pool(out: &mut Vec<u8>, pool: &BufPool) {
    let scratch = pool.get();
    out.extend_from_slice(&scratch);
}
