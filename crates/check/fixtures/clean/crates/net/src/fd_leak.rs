//! Fixture: the bug-removed twin of the violations fd_leak.rs — the
//! listener stays behind its owning type and the poller registers it by
//! reference (must lint clean).

pub fn register_listener(poller: &Poller, l: &std::net::TcpListener) {
    poller.add(l, TOKEN_LISTENER, Interest::READ);
}
