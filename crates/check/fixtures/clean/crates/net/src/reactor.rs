//! Fixture: the bug-removed twin of the violations reactor.rs — the lock
//! guard drops before `epoll_wait`, the channel is drained nonblockingly,
//! and nothing sleeps (must lint clean).

impl Reactor {
    fn run(mut self) {
        {
            let mut guard = self.shared.peer_events.lock();
            guard.clear();
        }
        self.poller.wait(&mut self.events, None);
        while let Ok(cmd) = self.cmd_rx.try_recv() {
            self.dispatch(cmd);
        }
    }

    fn dispatch(&mut self, cmd: Command) {
        self.pending.push(cmd);
    }
}
