//! Fixture: the bug-removed twin of the violations sys.rs — FFI with its
//! audit table and a justified `unsafe` (must lint clean).
//!
//! ## Safety audit
//!
//! | entry point | contract |
//! | `eventfd` | flags are valid `EFD_*` bits; returns -1 or an owned fd |

extern "C" {
    fn eventfd(initval: u32, flags: i32) -> i32;
}

pub fn make_eventfd() -> i32 {
    // SAFETY: eventfd has no pointer arguments; any initval/flags values
    // are accepted or rejected by the kernel via -1/errno.
    unsafe { eventfd(0, 0) }
}
