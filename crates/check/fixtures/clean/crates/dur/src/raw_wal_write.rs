//! Fixture twin: the same WAL append with the bug removed — every
//! persisted byte goes through the sync-on-commit sink, which owns the
//! file handle and pairs each write with its fsync. `durability` must
//! stay silent here.

use std::io;

pub trait CommitSink {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    fn replace(&mut self, bytes: &[u8]) -> io::Result<()>;
}

pub struct SinkWal<S: CommitSink> {
    sink: S,
}

impl<S: CommitSink> SinkWal<S> {
    pub fn new(sink: S) -> Self {
        SinkWal { sink }
    }

    pub fn append(&mut self, record: &[u8]) -> io::Result<()> {
        self.sink.append(record)
    }
}

pub fn dump_snapshot<S: CommitSink>(sink: &mut S, bytes: &[u8]) -> io::Result<()> {
    sink.replace(bytes)
}
