//! Bug-removed twin of the `wire-compat` violation fixture: the same
//! codec surface with the rejections replaced by the negotiation
//! contract — record the peer's version and cap with the minimum we
//! implement, and route every unknown version through the absolute v1
//! decode path. Old and future binaries both stay on the wire.

pub const CODEC_V1: u8 = 1;
pub const CODEC_V2: u8 = 2;

pub struct StrictCodec {
    pub peer_version: u8,
}

pub enum CodecError {
    Truncated,
}

impl StrictCodec {
    pub fn on_offer(&mut self, version: u8) -> Result<(), CodecError> {
        self.peer_version = version.min(CODEC_V2);
        Ok(())
    }

    pub fn decode(&self, version: u8, blob: &[u8]) -> Result<Vec<u8>, CodecError> {
        if version >= CODEC_V2 {
            return Ok(self.decode_v2(blob));
        }
        Ok(self.decode_v1(blob))
    }

    fn decode_v1(&self, blob: &[u8]) -> Vec<u8> {
        blob.to_vec()
    }

    fn decode_v2(&self, blob: &[u8]) -> Vec<u8> {
        blob.to_vec()
    }
}
