//! Fixture: the bug-removed twin of the violations helper_panics.rs — the
//! helper returns a typed error instead of panicking (must lint clean).

pub fn decode_update_header(bytes: &[u8]) -> Result<Update, CodecError> {
    let tag = bytes.first().ok_or(CodecError::Truncated)?;
    Update::from_tag(*tag).ok_or(CodecError::BadTag)
}
