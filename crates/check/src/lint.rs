//! The lint driver: file discovery, rule execution, allowlisting.
//!
//! Two phases. Phase one reads every source file and runs the per-file
//! rules. Phase two builds the workspace call graph and runs the
//! cross-file passes (`no-panic` reachability, hot-path alloc propagation,
//! `no-blocking-in-reactor`). Both phases' findings then pass through the
//! allowlists, and any allowlist entry that suppressed nothing becomes a
//! `stale-allow` finding of its own.

use std::path::{Path, PathBuf};

use crate::allowlist::{AllowUse, Allowlists};
use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::lexer::{clean_source, strip_test_modules};
use crate::rules::{self, FileCtx, Prepared};

/// Result of one lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Surviving (non-allowlisted) diagnostics, sorted by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Every allowlist entry with its hit count (for `--list-allows`).
    pub allow_usage: Vec<AllowUse>,
}

/// Lints every `crates/*/src/**/*.rs` under `root`.
///
/// `allow_dir` defaults to `<root>/crates/check/allowlists`; pointing
/// `root` at a fixture tree therefore starts with no suppressions.
///
/// # Errors
///
/// Returns a description if `root` has no `crates/` directory or a source
/// file cannot be read.
pub fn run(root: &Path, allow_dir: Option<&Path>) -> Result<LintReport, String> {
    let default_allow = root.join("crates/check/allowlists");
    let allow = Allowlists::load(allow_dir.unwrap_or(&default_allow));
    let files = discover(root)?;
    let mut prepared = Vec::with_capacity(files.len());
    for path in &files {
        let rel = rel_path(root, path);
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let clean = strip_test_modules(&clean_source(&src));
        prepared.push(Prepared { rel_path: rel, src, clean });
    }
    // Phase one: per-file rules.
    let mut raw = Vec::new();
    for f in &prepared {
        let lines: Vec<&str> = f.src.lines().collect();
        let ctx = FileCtx { rel_path: &f.rel_path, clean: &f.clean, lines: &lines };
        raw.extend(rules::run_all(&ctx));
    }
    // Phase two: cross-file passes over the workspace call graph.
    let refs: Vec<(&str, &str)> =
        prepared.iter().map(|f| (f.rel_path.as_str(), f.clean.as_str())).collect();
    let graph = CallGraph::build(&refs);
    raw.extend(rules::cross::check(&prepared, &graph));
    raw.extend(rules::no_blocking_reactor::check(&prepared, &graph));
    // Allowlisting (counts hits), then rot detection.
    let mut diagnostics = Vec::new();
    for d in raw {
        let line_text = prepared
            .iter()
            .find(|f| f.rel_path == d.path)
            .and_then(|f| f.src.lines().nth(d.line.saturating_sub(1)))
            .unwrap_or("");
        if !allow.allows(d.rule, &d.path, line_text) {
            diagnostics.push(d);
        }
    }
    diagnostics.extend(allow.stale_diagnostics());
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(LintReport { diagnostics, files_scanned: files.len(), allow_usage: allow.usage() })
}

/// All `.rs` files under `<root>/crates/*/src`, sorted for determinism.
fn discover(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates = root.join("crates");
    let entries = std::fs::read_dir(&crates)
        .map_err(|e| format!("no crates/ directory under {}: {e}", root.display()))?;
    let mut files = Vec::new();
    for entry in entries.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Root-relative path with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The check crate lives at `<workspace>/crates/check`.
    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
    }

    #[test]
    fn workspace_is_clean() {
        let report = run(&workspace_root(), None).unwrap();
        assert!(report.files_scanned > 30, "scanned {}", report.files_scanned);
        let rendered: Vec<String> = report.diagnostics.iter().map(ToString::to_string).collect();
        assert!(report.diagnostics.is_empty(), "workspace must lint clean:\n{rendered:?}");
    }

    #[test]
    fn violation_fixture_is_caught() {
        let fixture = workspace_root().join("crates/check/fixtures/violations");
        let report = run(&fixture, None).unwrap();
        let rules: std::collections::BTreeSet<&str> =
            report.diagnostics.iter().map(|d| d.rule).collect();
        for rule in [
            "no-panic",
            "wall-clock",
            "lock-order",
            "exhaustive-match",
            "no-alloc-in-hot-path",
            "unsafe-audit",
            "fd-ownership",
            "no-blocking-in-reactor",
            "region-routing",
            "durability",
            "wire-compat",
        ] {
            assert!(rules.contains(rule), "fixture must trip {rule}; got {rules:?}");
        }
    }

    #[test]
    fn cross_file_findings_land_at_the_boundary() {
        let fixture = workspace_root().join("crates/check/fixtures/violations");
        let report = run(&fixture, None).unwrap();
        // The panic lives in core/helper_panics.rs (out of scope); the
        // finding must sit on the protocols-side call.
        assert!(
            report.diagnostics.iter().any(|d| d.rule == "no-panic"
                && d.path == "crates/protocols/src/cross_panic.rs"
                && d.message.contains("`decode_update_header`")),
            "cross-panic boundary finding missing:\n{:#?}",
            report.diagnostics
        );
        // The hot path's callee allocates one file-local level away.
        assert!(
            report.diagnostics.iter().any(|d| d.rule == "no-alloc-in-hot-path"
                && d.message.contains("`flush_badly` calls `make_scratch_badly`")),
            "cross-alloc finding missing:\n{:#?}",
            report.diagnostics
        );
        // The blocking recv is reached through a helper in another file.
        assert!(
            report.diagnostics.iter().any(|d| d.rule == "no-blocking-in-reactor"
                && d.path == "crates/net/src/dial_helper.rs"
                && d.message.contains("`run` -> `drain_commands_slowly`")),
            "cross-file blocking finding missing:\n{:#?}",
            report.diagnostics
        );
    }

    #[test]
    fn clean_fixture_lints_clean() {
        let fixture = workspace_root().join("crates/check/fixtures/clean");
        let report = run(&fixture, None).unwrap();
        let rendered: Vec<String> = report.diagnostics.iter().map(ToString::to_string).collect();
        assert!(report.diagnostics.is_empty(), "bug-removed twins must pass:\n{rendered:?}");
    }
}
