//! The lint driver: file discovery, rule execution, allowlisting.

use std::path::{Path, PathBuf};

use crate::allowlist::Allowlists;
use crate::diag::Diagnostic;
use crate::lexer::{clean_source, strip_test_modules};
use crate::rules::{self, FileCtx};

/// Result of one lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Surviving (non-allowlisted) diagnostics, sorted by path then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

/// Lints every `crates/*/src/**/*.rs` under `root`.
///
/// `allow_dir` defaults to `<root>/crates/check/allowlists`; pointing
/// `root` at a fixture tree therefore starts with no suppressions.
///
/// # Errors
///
/// Returns a description if `root` has no `crates/` directory or a source
/// file cannot be read.
pub fn run(root: &Path, allow_dir: Option<&Path>) -> Result<LintReport, String> {
    let default_allow = root.join("crates/check/allowlists");
    let allow = Allowlists::load(allow_dir.unwrap_or(&default_allow));
    let files = discover(root)?;
    let mut diagnostics = Vec::new();
    for path in &files {
        let rel = rel_path(root, path);
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let clean = strip_test_modules(&clean_source(&src));
        let lines: Vec<&str> = src.lines().collect();
        let ctx = FileCtx { rel_path: &rel, clean: &clean, lines: &lines };
        for d in rules::run_all(&ctx) {
            let line_text = lines.get(d.line - 1).copied().unwrap_or("");
            if !allow.allows(d.rule, &d.path, line_text) {
                diagnostics.push(d);
            }
        }
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(LintReport { diagnostics, files_scanned: files.len() })
}

/// All `.rs` files under `<root>/crates/*/src`, sorted for determinism.
fn discover(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates = root.join("crates");
    let entries = std::fs::read_dir(&crates)
        .map_err(|e| format!("no crates/ directory under {}: {e}", root.display()))?;
    let mut files = Vec::new();
    for entry in entries.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Root-relative path with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The check crate lives at `<workspace>/crates/check`.
    fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
    }

    #[test]
    fn workspace_is_clean() {
        let report = run(&workspace_root(), None).unwrap();
        assert!(report.files_scanned > 30, "scanned {}", report.files_scanned);
        let rendered: Vec<String> = report.diagnostics.iter().map(ToString::to_string).collect();
        assert!(report.diagnostics.is_empty(), "workspace must lint clean:\n{rendered:?}");
    }

    #[test]
    fn violation_fixture_is_caught() {
        let fixture = workspace_root().join("crates/check/fixtures/violations");
        let report = run(&fixture, None).unwrap();
        let rules: std::collections::BTreeSet<&str> =
            report.diagnostics.iter().map(|d| d.rule).collect();
        for rule in
            ["no-panic", "wall-clock", "lock-order", "exhaustive-match", "no-alloc-in-hot-path"]
        {
            assert!(rules.contains(rule), "fixture must trip {rule}; got {rules:?}");
        }
    }
}
