//! `race`: offline happens-before race detection over flight-recorder
//! event logs.
//!
//! The flight recorder ([`sdso_obs`]) gives every node a totally ordered
//! stream of events; synchronizing pairs among them — message send/recv,
//! lock grant/release, worker-thread spawn/join — induce a partial order
//! (happens-before) across nodes. Two accesses to the same shared object
//! are a **race** when neither happens before the other and at least one
//! is a write. This module replays an exported event log
//! ([`sdso_obs::export::event_log`] JSON), maintains one vector clock per
//! node, and reports every unordered conflicting pair, Eraser/FastTrack
//! style but post-mortem: the trace is evidence, the clocks are the proof.
//!
//! Synchronization model:
//!
//! * `Send(peer, ..)` snapshots the sender's clock into a FIFO per
//!   `(sender, peer)` channel; the matching `Recv` pops and joins it.
//!   (TCP preserves per-pair order, so FIFO matching is sound.)
//! * `LockGrant(object)` joins the lock's clock; `LockRelease(object)`
//!   stores the holder's clock into it. The EC lock manager hands grants
//!   over messages, so the send/recv edges carry the strong ordering;
//!   the lock edges tighten it when both sides appear in the trace.
//! * `ThreadSpawn(child, WORKER)` snapshots the spawner's clock; the
//!   child's stream joins it before its first event. `ThreadJoin(child,
//!   WORKER)` waits for the child's stream to drain, then joins its final
//!   clock. Reactor/dialer roles are internal threads without streams of
//!   their own and carry no cross-stream edge.
//! * `ObjectRead`/`ObjectWrite` are the accesses being checked.
//!
//! The ring buffer drops oldest events under pressure, so a `Recv` may
//! have no surviving `Send` (or a child no surviving spawn). A blocked
//! stream only stalls while some other stream can make progress; at a
//! global standstill the replay processes one blocked event *without* its
//! edge and counts it in [`RaceReport::unmatched`] — detection degrades
//! to more possible false positives instead of failing, and the count
//! tells you how much to trust the output.

use std::collections::{HashMap, VecDeque};

use sdso_obs::EventKind;

/// One node's exported event stream.
#[derive(Debug)]
pub struct NodeStream {
    /// Node id.
    pub node: u32,
    /// Events the ring dropped before export (0 = the trace is complete).
    pub dropped: u64,
    /// `(at_micros, kind, a, b, c)` tuples in recording order.
    pub events: Vec<(u64, u8, u32, u32, u32)>,
}

/// One access that participates in a race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Node that performed the access.
    pub node: u32,
    /// Its timestamp (microseconds, that node's clock).
    pub at: u64,
    /// True if the access is a write.
    pub write: bool,
}

/// An unordered conflicting pair of accesses to one object.
#[derive(Debug, Clone, Copy)]
pub struct Race {
    /// The shared object both sides touched.
    pub object: u32,
    /// The access that was processed first.
    pub first: Access,
    /// The later, conflicting access.
    pub second: Access,
}

impl std::fmt::Display for Race {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let shape = match (self.first.write, self.second.write) {
            (true, true) => "write-write",
            (true, false) => "write-read",
            _ => "read-write",
        };
        write!(
            f,
            "{shape} race on object {}: node {} at {}us vs node {} at {}us \
             (no happens-before edge between them)",
            self.object, self.first.node, self.first.at, self.second.node, self.second.at
        )
    }
}

/// Result of one replay.
#[derive(Debug)]
pub struct RaceReport {
    /// Unordered conflicting pairs, deduplicated per (object, node pair,
    /// shape).
    pub races: Vec<Race>,
    /// Streams replayed.
    pub nodes: usize,
    /// Events processed.
    pub events: usize,
    /// Synchronizing events replayed without their edge (truncated trace);
    /// nonzero means races below may include false positives.
    pub unmatched: usize,
    /// Sum of per-node dropped counts from the recorder rings.
    pub dropped: u64,
}

type Clock = Vec<u64>;

fn join(into: &mut Clock, other: &Clock) {
    for (a, b) in into.iter_mut().zip(other) {
        *a = (*a).max(*b);
    }
}

fn leq(a: &Clock, b: &Clock) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y)
}

/// A recorded access with the clock it happened at.
#[derive(Debug, Clone)]
struct Stamped {
    access: Access,
    clock: Clock,
}

/// Replays `streams` and reports every racy access pair.
pub fn analyze(streams: &[NodeStream]) -> RaceReport {
    let n = streams.len();
    let index_of: HashMap<u32, usize> =
        streams.iter().enumerate().map(|(i, s)| (s.node, i)).collect();
    // Which nodes have a surviving WORKER spawn record pointing at them —
    // those streams wait for the spawn edge before starting.
    let mut spawned: HashMap<usize, bool> = HashMap::new();
    for s in streams {
        for &(_, kind, a, b, _) in &s.events {
            if kind == EventKind::ThreadSpawn as u8
                && b == sdso_obs::THREAD_ROLE_WORKER
                && index_of.contains_key(&a)
            {
                spawned.insert(index_of[&a], false);
            }
        }
    }
    let mut clocks: Vec<Clock> = vec![vec![0; n]; n];
    let mut cursors: Vec<usize> = vec![0; n];
    let mut channels: HashMap<(usize, usize), VecDeque<Clock>> = HashMap::new();
    let mut lock_clocks: HashMap<u32, Clock> = HashMap::new();
    let mut spawn_clocks: HashMap<usize, Clock> = HashMap::new();
    let mut last_write: HashMap<u32, Stamped> = HashMap::new();
    let mut reads: HashMap<u32, Vec<Stamped>> = HashMap::new();
    let mut races: Vec<Race> = Vec::new();
    let mut race_keys: std::collections::HashSet<(u32, u32, u32, bool, bool)> =
        std::collections::HashSet::new();
    let mut events = 0usize;
    let mut unmatched = 0usize;

    // True if stream `i`'s next event can be processed with all its edges.
    let ready = |i: usize,
                 cursors: &[usize],
                 channels: &HashMap<(usize, usize), VecDeque<Clock>>,
                 spawn_clocks: &HashMap<usize, Clock>|
     -> bool {
        let cur = cursors[i];
        if cur >= streams[i].events.len() {
            return false;
        }
        if cur == 0 && spawned.contains_key(&i) && !spawn_clocks.contains_key(&i) {
            return false;
        }
        let (_, kind, a, b, _) = streams[i].events[cur];
        if kind == EventKind::Recv as u8 {
            if let Some(&sender) = index_of.get(&a) {
                return channels.get(&(sender, i)).is_some_and(|q| !q.is_empty());
            }
            return true; // sender not in the trace: nothing to wait for
        }
        if kind == EventKind::ThreadJoin as u8 && b == sdso_obs::THREAD_ROLE_WORKER {
            if let Some(&child) = index_of.get(&a) {
                return cursors[child] >= streams[child].events.len();
            }
        }
        true
    };

    loop {
        // Prefer the ready stream whose next event is earliest; timestamps
        // are only roughly comparable across nodes, but this keeps lock
        // release-before-grant pairs in their real order almost always.
        let mut pick: Option<(usize, u64)> = None;
        for i in 0..n {
            if ready(i, &cursors, &channels, &spawn_clocks) {
                let at = streams[i].events[cursors[i]].0;
                if pick.is_none_or(|(_, best)| at < best) {
                    pick = Some((i, at));
                }
            }
        }
        let (i, forced) = match pick {
            Some((i, _)) => (i, false),
            None => {
                // Global standstill: every remaining stream is blocked.
                // Force the earliest blocked event through without its edge.
                let mut blocked: Option<(usize, u64)> = None;
                for i in 0..n {
                    if cursors[i] < streams[i].events.len() {
                        let at = streams[i].events[cursors[i]].0;
                        if blocked.is_none_or(|(_, best)| at < best) {
                            blocked = Some((i, at));
                        }
                    }
                }
                match blocked {
                    Some((i, _)) => (i, true),
                    None => break, // all streams drained
                }
            }
        };
        let cur = cursors[i];
        let (at, kind, a, b, c) = streams[i].events[cur];
        cursors[i] += 1;
        events += 1;
        if forced {
            unmatched += 1;
        }
        if cur == 0 {
            if let Some(sc) = spawn_clocks.get(&i) {
                let sc = sc.clone();
                join(&mut clocks[i], &sc);
            }
        }
        clocks[i][i] += 1;
        let kind = usize::from(kind);
        let kind = if kind < EventKind::ALL.len() { Some(EventKind::ALL[kind]) } else { None };
        match kind {
            Some(EventKind::Send) => {
                if let Some(&peer) = index_of.get(&a) {
                    channels.entry((i, peer)).or_default().push_back(clocks[i].clone());
                }
            }
            Some(EventKind::Recv) => {
                if let Some(&sender) = index_of.get(&a) {
                    if let Some(sc) = channels.get_mut(&(sender, i)).and_then(VecDeque::pop_front) {
                        let clock = sc;
                        join(&mut clocks[i], &clock);
                    } else if !forced {
                        // ready() said go because the sender queue check
                        // passed; reaching here means the send was dropped.
                        unmatched += 1;
                    }
                }
            }
            Some(EventKind::LockGrant) => {
                if let Some(lc) = lock_clocks.get(&a) {
                    let lc = lc.clone();
                    join(&mut clocks[i], &lc);
                }
            }
            Some(EventKind::LockRelease) => {
                lock_clocks.insert(a, clocks[i].clone());
            }
            Some(EventKind::ThreadSpawn) => {
                if b == sdso_obs::THREAD_ROLE_WORKER {
                    if let Some(&child) = index_of.get(&a) {
                        spawn_clocks.insert(child, clocks[i].clone());
                    }
                }
            }
            Some(EventKind::ThreadJoin) => {
                if b == sdso_obs::THREAD_ROLE_WORKER {
                    if let Some(&child) = index_of.get(&a) {
                        let child_clock = clocks[child].clone();
                        join(&mut clocks[i], &child_clock);
                    }
                }
            }
            Some(EventKind::ObjectRead) => {
                let access = Access { node: streams[i].node, at, write: false };
                if let Some(w) = last_write.get(&a) {
                    if w.access.node != access.node && !leq(&w.clock, &clocks[i]) {
                        push_race(&mut races, &mut race_keys, a, w.access, access);
                    }
                }
                reads.entry(a).or_default().push(Stamped { access, clock: clocks[i].clone() });
            }
            Some(EventKind::ObjectWrite) => {
                let access = Access { node: streams[i].node, at, write: true };
                if let Some(w) = last_write.get(&a) {
                    if w.access.node != access.node && !leq(&w.clock, &clocks[i]) {
                        push_race(&mut races, &mut race_keys, a, w.access, access);
                    }
                }
                for r in reads.get(&a).map(Vec::as_slice).unwrap_or_default() {
                    if r.access.node != access.node && !leq(&r.clock, &clocks[i]) {
                        push_race(&mut races, &mut race_keys, a, r.access, access);
                    }
                }
                reads.remove(&a);
                last_write.insert(a, Stamped { access, clock: clocks[i].clone() });
            }
            // No cross-node edge: BatchSend duplicates per-message Sends,
            // DiffMerge is co-emitted with ObjectWrite, the rest are local.
            _ => {
                let _ = c;
            }
        }
    }
    RaceReport {
        races,
        nodes: n,
        events,
        unmatched,
        dropped: streams.iter().map(|s| s.dropped).sum(),
    }
}

fn push_race(
    races: &mut Vec<Race>,
    keys: &mut std::collections::HashSet<(u32, u32, u32, bool, bool)>,
    object: u32,
    first: Access,
    second: Access,
) {
    let key = (object, first.node, second.node, first.write, second.write);
    if keys.insert(key) {
        races.push(Race { object, first, second });
    }
}

/// Parses the [`sdso_obs::export::event_log`] JSON format.
///
/// # Errors
///
/// Returns a description of the first malformed construct.
pub fn parse_event_log(text: &str) -> Result<Vec<NodeStream>, String> {
    let mut p = Parser { b: text.as_bytes(), i: 0 };
    p.ws();
    p.expect(b'{')?;
    let mut streams = Vec::new();
    loop {
        p.ws();
        let key = p.string()?;
        p.ws();
        p.expect(b':')?;
        p.ws();
        match key.as_str() {
            "version" => {
                let v = p.number()?;
                if v != 1 {
                    return Err(format!("unsupported event-log version {v}"));
                }
            }
            "nodes" => {
                p.expect(b'[')?;
                p.ws();
                if !p.eat(b']') {
                    loop {
                        streams.push(parse_node(&mut p)?);
                        p.ws();
                        if !p.eat(b',') {
                            p.expect(b']')?;
                            break;
                        }
                        p.ws();
                    }
                }
            }
            other => return Err(format!("unexpected key `{other}`")),
        }
        p.ws();
        if !p.eat(b',') {
            p.expect(b'}')?;
            break;
        }
    }
    Ok(streams)
}

fn parse_node(p: &mut Parser<'_>) -> Result<NodeStream, String> {
    p.ws();
    p.expect(b'{')?;
    let mut node = 0u32;
    let mut dropped = 0u64;
    let mut events = Vec::new();
    loop {
        p.ws();
        let key = p.string()?;
        p.ws();
        p.expect(b':')?;
        p.ws();
        match key.as_str() {
            "node" => node = p.number()? as u32,
            "dropped" => dropped = p.number()?,
            "events" => {
                p.expect(b'[')?;
                p.ws();
                if !p.eat(b']') {
                    loop {
                        p.ws();
                        p.expect(b'[')?;
                        let mut vals = [0u64; 5];
                        for (k, v) in vals.iter_mut().enumerate() {
                            p.ws();
                            *v = p.number()?;
                            p.ws();
                            if k < 4 {
                                p.expect(b',')?;
                            }
                        }
                        p.expect(b']')?;
                        events.push((
                            vals[0],
                            vals[1] as u8,
                            vals[2] as u32,
                            vals[3] as u32,
                            vals[4] as u32,
                        ));
                        p.ws();
                        if !p.eat(b',') {
                            p.expect(b']')?;
                            break;
                        }
                    }
                }
            }
            other => return Err(format!("unexpected key `{other}` in node object")),
        }
        p.ws();
        if !p.eat(b',') {
            p.expect(b'}')?;
            break;
        }
    }
    Ok(NodeStream { node, dropped, events })
}

/// Minimal pull parser for the fixed event-log grammar: objects, arrays,
/// double-quoted keys, and unsigned integers. Not a general JSON parser
/// on purpose — the exporter never emits floats, escapes, or nulls.
struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.b.get(self.i).is_some_and(u8::is_ascii_whitespace) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {} (found `{}`)",
                c as char,
                self.i,
                self.b.get(self.i).map(|&x| x as char).unwrap_or('∅'),
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.i;
        while self.b.get(self.i).is_some_and(|&c| c != b'"') {
            self.i += 1;
        }
        let s = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.expect(b'"')?;
        Ok(s)
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.i;
        while self.b.get(self.i).is_some_and(u8::is_ascii_digit) {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("number out of range at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPAWN: u8 = EventKind::ThreadSpawn as u8;
    const JOIN: u8 = EventKind::ThreadJoin as u8;
    const SEND: u8 = EventKind::Send as u8;
    const RECV: u8 = EventKind::Recv as u8;
    const GRANT: u8 = EventKind::LockGrant as u8;
    const RELEASE: u8 = EventKind::LockRelease as u8;
    const READ: u8 = EventKind::ObjectRead as u8;
    const WRITE: u8 = EventKind::ObjectWrite as u8;
    const WORKER: u32 = sdso_obs::THREAD_ROLE_WORKER;

    fn stream(node: u32, events: &[(u64, u8, u32, u32, u32)]) -> NodeStream {
        NodeStream { node, dropped: 0, events: events.to_vec() }
    }

    #[test]
    fn unsynchronized_writes_race() {
        let r = analyze(&[stream(0, &[(10, WRITE, 7, 1, 8)]), stream(1, &[(11, WRITE, 7, 1, 8)])]);
        assert_eq!(r.races.len(), 1, "{r:?}");
        assert_eq!(r.races[0].object, 7);
        assert!(r.races[0].first.write && r.races[0].second.write);
    }

    #[test]
    fn message_edge_orders_the_writes() {
        let r = analyze(&[
            stream(0, &[(10, WRITE, 7, 1, 8), (11, SEND, 1, 1, 32)]),
            stream(1, &[(12, RECV, 0, 1, 32), (13, WRITE, 7, 2, 8)]),
        ]);
        assert!(r.races.is_empty(), "{:?}", r.races);
        assert_eq!(r.unmatched, 0);
    }

    #[test]
    fn lock_edge_orders_the_writes() {
        let r = analyze(&[
            stream(0, &[(10, GRANT, 7, 1, 0), (11, WRITE, 7, 1, 8), (12, RELEASE, 7, 0, 0)]),
            stream(1, &[(20, GRANT, 7, 1, 0), (21, WRITE, 7, 2, 8), (22, RELEASE, 7, 0, 0)]),
        ]);
        assert!(r.races.is_empty(), "{:?}", r.races);
    }

    #[test]
    fn read_write_race_is_reported() {
        let r = analyze(&[stream(0, &[(10, READ, 7, 1, 0)]), stream(1, &[(11, WRITE, 7, 2, 8)])]);
        assert_eq!(r.races.len(), 1, "{r:?}");
        assert!(!r.races[0].first.write && r.races[0].second.write);
    }

    #[test]
    fn spawn_and_join_edges_order_parent_and_child() {
        // Parent writes, spawns child; child writes; parent joins, writes
        // again. Fully ordered: no race.
        let r = analyze(&[
            stream(
                0,
                &[
                    (1, WRITE, 7, 1, 8),
                    (2, SPAWN, 1, WORKER, 0),
                    (9, JOIN, 1, WORKER, 0),
                    (10, WRITE, 7, 3, 8),
                ],
            ),
            stream(1, &[(5, WRITE, 7, 2, 8)]),
        ]);
        assert!(r.races.is_empty(), "{:?}", r.races);
    }

    #[test]
    fn truncated_trace_degrades_to_unmatched_not_deadlock() {
        // Recv whose Send was dropped from the ring: the replay must
        // terminate and count the missing edge.
        let r = analyze(&[
            stream(0, &[(12, RECV, 1, 1, 32), (13, WRITE, 7, 2, 8)]),
            stream(1, &[(20, WRITE, 7, 3, 8)]),
        ]);
        assert_eq!(r.unmatched, 1, "{r:?}");
        assert_eq!(r.races.len(), 1);
    }

    #[test]
    fn event_log_json_round_trips() {
        let json = r#"{"version":1,"nodes":[
            {"node":0,"dropped":2,"events":[[10,21,7,1,8],[11,8,1,1,32]]},
            {"node":1,"dropped":0,"events":[]}]}"#;
        let streams = parse_event_log(json).unwrap();
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].node, 0);
        assert_eq!(streams[0].dropped, 2);
        assert_eq!(streams[0].events, vec![(10, 21, 7, 1, 8), (11, 8, 1, 1, 32)]);
        assert!(streams[1].events.is_empty());
    }

    #[test]
    fn racy_fixture_is_flagged_and_clean_fixture_passes() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/races");
        let racy =
            parse_event_log(&std::fs::read_to_string(dir.join("racy.json")).unwrap()).unwrap();
        let r = analyze(&racy);
        assert!(!r.races.is_empty(), "seeded racy trace must be flagged: {r:?}");
        let clean =
            parse_event_log(&std::fs::read_to_string(dir.join("clean.json")).unwrap()).unwrap();
        let r = analyze(&clean);
        assert!(r.races.is_empty(), "synchronized trace must pass: {:?}", r.races);
        assert_eq!(r.unmatched, 0, "every sync event must find its edge: {r:?}");
    }

    #[test]
    fn bad_version_and_malformed_json_are_errors() {
        assert!(parse_event_log(r#"{"version":2,"nodes":[]}"#).is_err());
        assert!(parse_event_log(r#"{"version":1,"nodes":[{"node":0}"#).is_err());
    }
}
