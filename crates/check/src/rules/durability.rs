//! `durability`: every byte the durability crate persists must funnel
//! through the sync-on-commit sink.
//!
//! A WAL is only as crash-safe as its weakest write path. `CommitSink`
//! (in `crates/dur/src/commit.rs`) is the one place that knows the
//! append-then-fsync and write-tmp/rename/fsync-dir rituals; a raw
//! `File::write` anywhere else in the crate produces bytes the OS may
//! still be holding in its page cache when the process dies — a record
//! that "committed" and then vanished, exactly the failure the WAL
//! exists to rule out. The rule denies the raw write/create vocabulary
//! (`.write(`, `.write_all(`, `fs::write(`, `File::create(`,
//! `OpenOptions`) everywhere under `crates/dur/src/` except the commit
//! module itself.

use super::FileCtx;
use crate::diag::Diagnostic;

/// Rule identifier.
pub const RULE: &str = "durability";

/// Path prefix governed by this rule.
const SCOPE_PREFIX: &str = "crates/dur/src/";

/// The one module allowed to perform raw writes: the sink implementation
/// that pairs every write with its fsync.
const SINK_MODULE: &str = "crates/dur/src/commit.rs";

/// Raw write/create vocabulary that bypasses sync-on-commit.
const FORBIDDEN: [(&str, &str); 5] = [
    (".write_all(", "raw `write_all` bypasses sync-on-commit"),
    (".write(", "raw `write` bypasses sync-on-commit"),
    ("fs::write(", "`fs::write` commits nothing until the page cache flushes"),
    ("File::create(", "creating files outside the sink evades the fsync discipline"),
    ("OpenOptions", "opening files outside the sink evades the fsync discipline"),
];

/// Runs the rule over one prepared file.
pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !ctx.rel_path.starts_with(SCOPE_PREFIX) || ctx.rel_path == SINK_MODULE {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (pattern, why) in FORBIDDEN {
        for at in crate::lexer::find_bounded(ctx.clean, pattern) {
            out.push(ctx.diag(
                RULE,
                at,
                format!(
                    "{why}: durable bytes must go through `CommitSink` \
                     (crates/dur/src/commit.rs)"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{clean_source, strip_test_modules};

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let clean = strip_test_modules(&clean_source(src));
        let lines: Vec<&str> = src.lines().collect();
        check(&FileCtx { rel_path: path, clean: &clean, lines: &lines })
    }

    const RAW: &str = "fn persist(&mut self, rec: &[u8]) -> io::Result<()> {\n    \
         self.file.write_all(rec)\n}";

    #[test]
    fn raw_write_outside_the_sink_is_flagged() {
        let d = run("crates/dur/src/wal.rs", RAW);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE);
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("CommitSink"));
    }

    #[test]
    fn the_sink_module_and_other_crates_are_exempt() {
        assert!(run(SINK_MODULE, RAW).is_empty());
        assert!(run("crates/net/src/reactor.rs", RAW).is_empty());
    }

    #[test]
    fn sinkless_file_creation_is_flagged() {
        let src = "fn snapshot(path: &Path, bytes: &[u8]) {\n    \
             std::fs::write(path, bytes).unwrap();\n}";
        let d = run("crates/dur/src/snapshot.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("page cache"));
    }

    #[test]
    fn sink_mediated_writes_are_clean() {
        let src = "fn persist<S: CommitSink>(sink: &mut S, rec: &[u8]) -> io::Result<()> {\n    \
             sink.append(rec)\n}";
        assert!(run("crates/dur/src/wal.rs", src).is_empty());
    }
}
