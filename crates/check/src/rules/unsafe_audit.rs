//! `unsafe-audit`: every `unsafe` carries a written soundness argument.
//!
//! Two obligations, both deny-by-default across the whole workspace:
//!
//! * every `unsafe` keyword (block, fn, impl) must have a `// SAFETY:`
//!   comment on its own line or within the three lines above it;
//! * a module containing FFI (`extern "…"` blocks) must open with a
//!   `## Safety audit` doc-header containing a markdown table (`//! |`
//!   rows) enumerating each foreign entry point's contract.
//!
//! The reactor's `sys.rs` is the motivating case: raw epoll/eventfd
//! bindings whose soundness rests on argument conventions the compiler
//! cannot check. An unsafe block without its argument is a review hazard;
//! an FFI module without its table is an unauditable one.

use super::FileCtx;
use crate::diag::Diagnostic;

/// Rule identifier.
pub const RULE: &str = "unsafe-audit";

/// How many lines above an `unsafe` the `SAFETY:` comment may sit.
const SAFETY_WINDOW: usize = 3;

/// Runs the rule over one prepared file.
pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for at in crate::lexer::find_bounded(ctx.clean, "unsafe") {
        // `find_bounded` checks the leading boundary only; reject tails
        // like `unsafe_op` ourselves.
        let after = ctx.clean.as_bytes().get(at + "unsafe".len());
        if after.is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_') {
            continue;
        }
        let line = crate::lexer::line_of(ctx.clean, at);
        let lo = line.saturating_sub(SAFETY_WINDOW + 1);
        let justified =
            ctx.lines[lo..line.min(ctx.lines.len())].iter().any(|l| l.contains("SAFETY:"));
        if !justified {
            out.push(ctx.diag(
                RULE,
                at,
                format!(
                    "`unsafe` without a `// SAFETY:` justification within {SAFETY_WINDOW} \
                     lines above; state why the invariants hold"
                ),
            ));
        }
    }
    if let Some(&at) = crate::lexer::find_bounded(ctx.clean, "extern \"").first() {
        let has_header = ctx.lines.iter().any(|l| l.contains("## Safety audit"));
        let has_table = ctx.lines.iter().any(|l| l.trim_start().starts_with("//! |"));
        if !(has_header && has_table) {
            out.push(
                ctx.diag(
                    RULE,
                    at,
                    "FFI module without a `## Safety audit` doc table; add a `//! ## Safety \
                 audit` header with one `//! | entry point | contract |` row per foreign \
                 function"
                        .to_owned(),
                ),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{clean_source, strip_test_modules};

    fn run(src: &str) -> Vec<Diagnostic> {
        let clean = strip_test_modules(&clean_source(src));
        let lines: Vec<&str> = src.lines().collect();
        check(&FileCtx { rel_path: "crates/net/src/sys.rs", clean: &clean, lines: &lines })
    }

    #[test]
    fn unjustified_unsafe_is_flagged() {
        let d = run("fn f() { unsafe { core() } }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("SAFETY:"));
    }

    #[test]
    fn safety_comment_within_window_passes() {
        let src = "fn f() {\n    // SAFETY: fd is owned and open.\n    unsafe { core() }\n}";
        assert!(run(src).is_empty());
        let far = "fn f() {\n    // SAFETY: too far away.\n\n\n\n\n    unsafe { core() }\n}";
        assert_eq!(run(far).len(), 1);
    }

    #[test]
    fn unsafe_in_identifier_is_not_the_keyword() {
        assert!(run("fn f() { let unsafe_count = 1; not_unsafe(); }").is_empty());
    }

    #[test]
    fn ffi_without_audit_table_is_flagged() {
        let d = run("extern \"C\" { fn close(fd: i32) -> i32; }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("Safety audit"));
    }

    #[test]
    fn ffi_with_audit_table_passes() {
        let src = "//! ## Safety audit\n//! | entry point | contract |\n//! | `close` | fd \
                   is open |\nextern \"C\" { fn close(fd: i32) -> i32; }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unsafe_impl_needs_justification_too() {
        let d = run("unsafe impl Send for Poller {}");
        assert_eq!(d.len(), 1);
        let ok = "// SAFETY: all fields are fds, sendable by construction.\n\
                  unsafe impl Send for Poller {}";
        assert!(run(ok).is_empty());
    }
}
