//! Cross-file reachability passes for `no-panic` and
//! `no-alloc-in-hot-path`, built on [`crate::callgraph`].
//!
//! The file-scoped rules police constructs *written in* protocol-path
//! files; these passes police what protocol-path code *calls*:
//!
//! * **`no-panic` reachability** — a call from an in-scope file (see
//!   [`super::no_panic::in_scope`]) to an out-of-scope function that may
//!   panic (directly or transitively) is a finding at the call site, with
//!   the full chain to the panicking construct in the message. Together
//!   with the file-scoped pass this reports a superset of the old
//!   findings: in-scope panics directly, out-of-scope panics at the
//!   boundary call that can reach them.
//! * **`no-alloc-in-hot-path` cross-file** — a `sdso-check: hot-path`
//!   function calling a function that *directly* allocates is a finding at
//!   the call site. One level deep by design: transitive alloc taint over
//!   a name-based graph would flag half the workspace on cold error
//!   paths; the marker discipline is that hot functions keep their direct
//!   callees allocation-free or marked (and thus checked) themselves.

use crate::callgraph::{CallGraph, Reason};
use crate::diag::Diagnostic;
use crate::lexer::line_of;
use crate::rules::{no_alloc_hot_path, no_panic, Prepared};

/// Runs both cross-file passes.
pub fn check(files: &[Prepared], graph: &CallGraph) -> Vec<Diagnostic> {
    let refs: Vec<(&str, &str)> =
        files.iter().map(|f| (f.rel_path.as_str(), f.clean.as_str())).collect();
    let mut out = cross_panic(files, graph, &refs);
    out.extend(cross_alloc(files, graph));
    out
}

fn cross_panic(files: &[Prepared], graph: &CallGraph, refs: &[(&str, &str)]) -> Vec<Diagnostic> {
    // Direct facts: panicking constructs in OUT-of-scope files only — the
    // in-scope ones are already direct findings of the file-scoped pass.
    let mut direct: Vec<Option<Reason>> = vec![None; graph.defs.len()];
    for (file_idx, file) in files.iter().enumerate() {
        if no_panic::in_scope(&file.rel_path) || file.rel_path.starts_with("crates/check/") {
            continue;
        }
        for &(pat, what) in no_panic::PATTERNS {
            for at in crate::lexer::find_bounded(&file.clean, pat) {
                if let Some(d) = graph.def_at(file_idx, at) {
                    if direct[d].is_none() {
                        direct[d] = Some(Reason::Direct { what: what.to_owned(), offset: at });
                    }
                }
            }
        }
    }
    let reasons = graph.propagate(direct);
    let mut out = Vec::new();
    for (caller_idx, caller) in graph.defs.iter().enumerate() {
        let caller_file = &files[caller.file];
        if !no_panic::in_scope(&caller_file.rel_path) {
            continue;
        }
        for e in &graph.calls_from[caller_idx] {
            let callee = &graph.defs[e.callee];
            if no_panic::in_scope(&files[callee.file].rel_path) {
                continue; // the boundary is crossed at the first out-call
            }
            if reasons[e.callee].is_some() {
                let chain = graph.render_chain(&reasons, refs, e.callee);
                out.push(caller_file.diag(
                    no_panic::RULE,
                    e.offset,
                    format!(
                        "call from `{}` into code that may panic: {chain}; make the \
                         callee total or return a typed error across the boundary",
                        caller.name
                    ),
                ));
            }
        }
    }
    out
}

fn cross_alloc(files: &[Prepared], graph: &CallGraph) -> Vec<Diagnostic> {
    // Which definitions carry the hot-path marker. Attribution matches the
    // per-file rule exactly: a marker governs the first `fn` at or after
    // its own line, and only that one.
    let mut marked = vec![false; graph.defs.len()];
    for (file_idx, file) in files.iter().enumerate() {
        if file.rel_path.starts_with("crates/check/") {
            continue;
        }
        let mut line_start = 0usize;
        for line in file.src.lines() {
            let this_start = line_start;
            line_start += line.len() + 1;
            if !line.contains(no_alloc_hot_path::MARKER) {
                continue;
            }
            let Some(&fn_at) = crate::lexer::find_bounded(&file.clean[this_start..], "fn ").first()
            else {
                continue;
            };
            let fn_at = fn_at + this_start;
            if let Some(d_idx) =
                graph.defs.iter().position(|d| d.file == file_idx && d.sig_offset == fn_at)
            {
                marked[d_idx] = true;
            }
        }
    }
    // Which definitions directly allocate.
    let mut allocates: Vec<Option<(&str, usize)>> = vec![None; graph.defs.len()];
    for (d_idx, d) in graph.defs.iter().enumerate() {
        let file = &files[d.file];
        if file.rel_path.starts_with("crates/check/") {
            continue;
        }
        let body = &file.clean[d.body.0..d.body.1];
        for &(pat, _) in no_alloc_hot_path::PATTERNS {
            if let Some(&at) = crate::lexer::find_bounded(body, pat).first() {
                allocates[d_idx] = Some((pat, d.body.0 + at));
                break;
            }
        }
    }
    let mut out = Vec::new();
    for (caller_idx, caller) in graph.defs.iter().enumerate() {
        if !marked[caller_idx] {
            continue;
        }
        for e in &graph.calls_from[caller_idx] {
            // A marked callee is checked in its own right; flagging the
            // call too would double-report every hot->hot composition.
            if marked[e.callee] {
                continue;
            }
            if let Some((pat, alloc_at)) = allocates[e.callee] {
                let callee = &graph.defs[e.callee];
                let callee_file = &files[callee.file];
                out.push(files[caller.file].diag(
                    no_alloc_hot_path::RULE,
                    e.offset,
                    format!(
                        "hot-path `{}` calls `{}`, which allocates (`{pat}..` at {}:{}); \
                         pool the allocation or mark the callee hot-path",
                        caller.name,
                        callee.name,
                        callee_file.rel_path,
                        line_of(&callee_file.clean, alloc_at),
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{clean_source, strip_test_modules};

    fn run_rule(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let prepared: Vec<Prepared> = files
            .iter()
            .map(|(p, s)| Prepared {
                rel_path: (*p).to_owned(),
                src: (*s).to_owned(),
                clean: strip_test_modules(&clean_source(s)),
            })
            .collect();
        let refs: Vec<(&str, &str)> =
            prepared.iter().map(|f| (f.rel_path.as_str(), f.clean.as_str())).collect();
        let graph = CallGraph::build(&refs);
        check(&prepared, &graph)
    }

    #[test]
    fn panic_two_files_away_is_reported_at_the_boundary_call() {
        let d = run_rule(&[
            ("crates/protocols/src/entry.rs", "fn apply() { let v = decode_all(b); }"),
            (
                "crates/core/src/codec.rs",
                "pub fn decode_all(b: &[u8]) { inner(b) }\n\
              fn inner(b: &[u8]) { b.first().unwrap(); }",
            ),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "no-panic");
        assert_eq!(d[0].path, "crates/protocols/src/entry.rs");
        assert!(d[0].message.contains("`decode_all` -> `inner`"), "{}", d[0].message);
        assert!(d[0].message.contains("crates/core/src/codec.rs:2"), "{}", d[0].message);
    }

    #[test]
    fn non_panicking_callee_is_fine() {
        let d = run_rule(&[
            ("crates/protocols/src/entry.rs", "fn apply() { total(b); }"),
            ("crates/core/src/codec.rs", "pub fn total(b: &[u8]) -> usize { b.len() }"),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn out_of_scope_caller_is_not_reported() {
        let d = run_rule(&[
            ("crates/game/src/ai.rs", "fn think() { deep_panics(); }"),
            ("crates/core/src/util.rs", "pub fn deep_panics() { x.unwrap(); }"),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn hot_path_calling_direct_allocator_is_reported() {
        let d = run_rule(&[(
            "crates/net/src/frame.rs",
            "// sdso-check: hot-path\nfn flush(out: &mut BytesMut) { \
                 build_scratch(out); }\nfn build_scratch(out: &mut BytesMut) { \
                 let v = Vec::new(); }",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "no-alloc-in-hot-path");
        assert!(d[0].message.contains("`flush` calls `build_scratch`"), "{}", d[0].message);
    }

    #[test]
    fn hot_path_calling_marked_callee_is_not_double_reported() {
        let d = run_rule(&[(
            "crates/net/src/frame.rs",
            "// sdso-check: hot-path\nfn flush(out: &mut BytesMut) { refill(out); }\n\
             // sdso-check: hot-path\nfn refill(out: &mut BytesMut) { out.clear(); }",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }
}
