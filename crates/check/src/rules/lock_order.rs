//! `lock-order`: lock-acquisition discipline from a declared order table.
//!
//! For every file with more than one lock, the table below declares the
//! only permitted acquisition order (rank 0 first). The rule scans for
//! `.lock()`/`.read()`/`.write()` acquisitions, tracks which guards are
//! still live at each brace depth, and flags two things:
//!
//! * an **inversion** — acquiring a lower-ranked lock while a higher-ranked
//!   guard is live (the classic ABBA deadlock shape);
//! * an **undeclared lock** — an acquisition whose receiver is not in the
//!   table, meaning the table (and the reviewer's mental model) is stale.
//!
//! The scan is conservative: a guard is assumed held until its enclosing
//! block closes, even if it is a statement temporary. That over-approximates
//! lifetimes but never misses a real inversion.
//!
//! `entry.rs` holds no OS mutexes; its discipline is the *distributed*
//! lockset order (ascending object id, PAPER.md §EC) enforced at runtime by
//! a sort in `acquire`. The rule pins that witness: if the sort disappears,
//! the rule fires.

use super::FileCtx;
use crate::diag::Diagnostic;

/// Rule identifier.
pub const RULE: &str = "lock-order";

/// Declared acquisition order for one file. Each rank may carry aliases
/// (local bindings that denote the same lock).
struct Table {
    path: &'static str,
    order: &'static [&'static [&'static str]],
}

const TABLES: &[Table] = &[
    // tcp.rs: per-peer writer slots are taken before the reader registry
    // (acceptor, redial, and Drop all follow writers -> readers); the link
    // event queue is a leaf lock, always taken last and never nested.
    Table {
        path: "crates/net/src/tcp.rs",
        order: &[&["writers", "slot"], &["readers"], &["events", "peer_events"]],
    },
    // scheduler.rs: the single state mutex; anything else is undeclared.
    Table { path: "crates/sim/src/scheduler.rs", order: &[&["state"]] },
    // reactor.rs: the peer-event queue is the only lock the reactor side
    // shares with user threads, and it must stay that way — a second lock
    // would create hold-across-epoll_wait hazards the
    // `no-blocking-in-reactor` rule then has to reason about.
    Table { path: "crates/net/src/reactor.rs", order: &[&["peer_events"]] },
];

/// `(file, required needle, message-if-missing)` runtime-discipline
/// witnesses.
const WITNESSES: &[(&str, &str, &str)] = &[(
    "crates/protocols/src/entry.rs",
    ".sort_by_key(|l| l.object)",
    "EC lockset discipline: `acquire` must sort lock requests by ascending \
     object id before acquisition (deadlock freedom); the sort witness is gone",
)];

/// Runs the rule over one prepared file.
pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for &(path, needle, msg) in WITNESSES {
        if ctx.rel_path == path && !ctx.clean.contains(needle) {
            out.push(ctx.diag(RULE, 0, msg.to_owned()));
        }
    }
    let Some(table) = TABLES.iter().find(|t| t.path == ctx.rel_path) else {
        return out;
    };
    out.extend(scan(ctx, table));
    out
}

fn rank_of(table: &Table, name: &str) -> Option<usize> {
    table.order.iter().position(|aliases| aliases.contains(&name))
}

fn scan(ctx: &FileCtx<'_>, table: &Table) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let b = ctx.clean.as_bytes();
    // Live guards as (rank, name, brace_depth_at_acquisition).
    let mut live: Vec<(usize, String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                live.retain(|g| g.2 <= depth);
            }
            b'.' => {
                if let Some(len) = acquisition_at(&ctx.clean[i..]) {
                    if let Some(name) = receiver_name(b, i) {
                        match rank_of(table, &name) {
                            None => out.push(ctx.diag(
                                RULE,
                                i,
                                format!(
                                    "lock `{name}` is not in the declared order table for \
                                     {}; update the table in \
                                     crates/check/src/rules/lock_order.rs",
                                    ctx.rel_path
                                ),
                            )),
                            Some(rank) => {
                                if let Some((held_rank, held, _)) = live.iter().find(|g| g.0 > rank)
                                {
                                    out.push(ctx.diag(
                                        RULE,
                                        i,
                                        format!(
                                            "lock-order inversion: `{name}` (rank {rank}) \
                                             acquired while `{held}` (rank {held_rank}) is \
                                             held; declared order is {}",
                                            render_order(table)
                                        ),
                                    ));
                                }
                                live.push((rank, name, depth));
                            }
                        }
                    }
                    i += len;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// If `s` starts with an acquisition call, returns its length.
fn acquisition_at(s: &str) -> Option<usize> {
    for call in [".lock()", ".read()", ".write()"] {
        if s.starts_with(call) {
            return Some(call.len());
        }
    }
    None
}

/// Extracts the receiver field/binding name directly left of the `.` at
/// byte `dot`: skips one or more trailing `[..]`/`(..)` groups, then reads
/// the identifier (`self.writers[usize::from(p)].lock()` -> `writers`).
fn receiver_name(b: &[u8], dot: usize) -> Option<String> {
    let mut j = dot;
    loop {
        if j == 0 {
            return None;
        }
        let c = b[j - 1];
        if c == b']' || c == b')' {
            let open = if c == b']' { b'[' } else { b'(' };
            let mut depth = 0usize;
            while j > 0 {
                j -= 1;
                if b[j] == c {
                    depth += 1;
                } else if b[j] == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            continue;
        }
        break;
    }
    let end = j;
    while j > 0 && (b[j - 1].is_ascii_alphanumeric() || b[j - 1] == b'_') {
        j -= 1;
    }
    if j == end {
        return None;
    }
    Some(String::from_utf8_lossy(&b[j..end]).into_owned())
}

fn render_order(table: &Table) -> String {
    table.order.iter().map(|aliases| aliases.join("/")).collect::<Vec<_>>().join(" before ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{clean_source, strip_test_modules};

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let clean = strip_test_modules(&clean_source(src));
        let lines: Vec<&str> = src.lines().collect();
        check(&FileCtx { rel_path: path, clean: &clean, lines: &lines })
    }

    #[test]
    fn declared_order_passes() {
        let src = "fn f(&self) { let w = self.writers[0].lock(); self.readers.lock().push(h); }";
        assert!(run("crates/net/src/tcp.rs", src).is_empty());
    }

    #[test]
    fn inversion_is_flagged() {
        let src = "fn f(&self) { let r = self.readers.lock(); let w = self.writers[0].lock(); }";
        let d = run("crates/net/src/tcp.rs", src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("inversion"));
    }

    #[test]
    fn guard_expires_with_its_block() {
        let src =
            "fn f(&self) { { let r = self.readers.lock(); } let w = self.writers[0].lock(); }";
        assert!(run("crates/net/src/tcp.rs", src).is_empty());
    }

    #[test]
    fn undeclared_lock_is_flagged() {
        let src = "fn f(&self) { self.mystery.lock(); }";
        let d = run("crates/sim/src/scheduler.rs", src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("not in the declared order table"));
    }

    #[test]
    fn missing_sort_witness_fires_for_entry() {
        let d = run("crates/protocols/src/entry.rs", "fn acquire() {}");
        assert_eq!(d.len(), 1);
        let ok = "fn acquire() { sorted.sort_by_key(|l| l.object); }";
        assert!(run("crates/protocols/src/entry.rs", ok).is_empty());
    }
}
