//! `no-blocking-in-reactor`: the poll thread never blocks anywhere but
//! `epoll_wait`.
//!
//! One thread multiplexes every connection of an endpoint. Any other
//! blocking point on that thread — a sleeping backoff, a blocking channel
//! receive, a connect, a blocking socket write — stalls *all* peers at
//! once, and holding a lock across the `epoll_wait` call publishes that
//! stall to every thread that touches the lock. The rule takes the
//! reactor's entry point (`fn run` in `crates/net/src/reactor.rs`), walks
//! the call graph to everything reachable from it, and denies:
//!
//! * known blocking constructs (`thread::sleep`, blocking channel
//!   `recv`/`recv_timeout`, `TcpStream::connect`/`connect_timeout`,
//!   blocking reads/writes, `join()`, `set_nonblocking(false)`) in any
//!   reachable function, across files and crates;
//! * a lock guard held live across a `.wait(` call (the `epoll_wait`
//!   wrapper) in any reachable function.
//!
//! The dialer thread exists precisely so the poll thread never connects;
//! code it alone runs is not reachable from `run` and is exempt by
//! construction. A deliberate exception (the final blocking flush on
//! shutdown) carries an inline `sdso-check: allow(no-blocking-in-reactor)`
//! with its justification.

use std::collections::HashMap;

use crate::callgraph::CallGraph;
use crate::diag::Diagnostic;
use crate::rules::Prepared;

/// Rule identifier.
pub const RULE: &str = "no-blocking-in-reactor";

/// The file whose `fn run` definitions root the reachability walk.
const ROOT_FILE: &str = "crates/net/src/reactor.rs";
/// The root entry-point name.
const ROOT_FN: &str = "run";

/// Blocking constructs and why each stalls the poll thread.
const PATTERNS: &[(&str, &str)] = &[
    ("thread::sleep", "sleeps the poll thread; use a DeadlineQueue timer"),
    (".recv()", "blocking channel receive; use try_recv and the waker"),
    (".recv_timeout(", "blocking channel receive; use try_recv and the waker"),
    ("connect_timeout(", "blocking connect; hand the dial to the dialer thread"),
    ("TcpStream::connect(", "blocking connect; hand the dial to the dialer thread"),
    (".write_all(", "blocking write loop; queue bytes and wait for writability"),
    (".read_to_end(", "unbounded blocking read; read readiness-driven chunks"),
    (".read_exact(", "blocking read loop; decode incrementally from the buffer"),
    (".join()", "joins a thread from the poll loop; join from the endpoint's Drop"),
    ("set_nonblocking(false)", "switches a socket to blocking mode on the poll thread"),
];

/// Runs the rule: reachability from `Reactor::run` plus the
/// lock-across-wait scan.
pub fn check(files: &[Prepared], graph: &CallGraph) -> Vec<Diagnostic> {
    let Some(root_file) = files.iter().position(|f| f.rel_path == ROOT_FILE) else {
        return Vec::new();
    };
    let roots: Vec<usize> = graph
        .defs
        .iter()
        .enumerate()
        .filter(|(_, d)| d.file == root_file && d.name == ROOT_FN)
        .map(|(i, _)| i)
        .collect();
    if roots.is_empty() {
        return Vec::new();
    }
    // BFS with parents so diagnostics can print how `run` reaches the sin.
    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut queue: std::collections::VecDeque<usize> = roots.iter().copied().collect();
    let mut reachable: std::collections::HashSet<usize> = roots.iter().copied().collect();
    while let Some(d) = queue.pop_front() {
        for e in &graph.calls_from[d] {
            if reachable.insert(e.callee) {
                parent.insert(e.callee, d);
                queue.push_back(e.callee);
            }
        }
    }
    let mut out = Vec::new();
    for &d in &reachable {
        let def = &graph.defs[d];
        let file = &files[def.file];
        let body = &file.clean[def.body.0..def.body.1];
        let chain = chain_to_root(graph, &parent, &roots, d);
        for &(pat, why) in PATTERNS {
            for at in crate::lexer::find_bounded(body, pat) {
                out.push(file.diag(
                    RULE,
                    def.body.0 + at,
                    format!("`{pat}` on the poll thread ({chain}): {why}"),
                ));
            }
        }
        for at in locks_across_wait(body) {
            out.push(file.diag(
                RULE,
                def.body.0 + at,
                format!(
                    "lock guard held across `.wait(` on the poll thread ({chain}); \
                     release the guard before blocking in epoll_wait"
                ),
            ));
        }
    }
    out
}

/// `run -> a -> b` rendering of how the root reaches `def`.
fn chain_to_root(
    graph: &CallGraph,
    parent: &HashMap<usize, usize>,
    roots: &[usize],
    def: usize,
) -> String {
    let mut names = vec![graph.defs[def].name.clone()];
    let mut cur = def;
    while !roots.contains(&cur) {
        let Some(&p) = parent.get(&cur) else { break };
        names.push(graph.defs[p].name.clone());
        cur = p;
    }
    names.reverse();
    format!("`{}`", names.join("` -> `"))
}

/// Offsets (into `body`) of `.wait(` calls made while a `.lock()` guard
/// acquired in the same body is still live (conservatively: until its
/// enclosing block closes).
fn locks_across_wait(body: &str) -> Vec<usize> {
    let b = body.as_bytes();
    let mut out = Vec::new();
    let mut held: Vec<usize> = Vec::new(); // brace depth per live guard
    let mut depth = 0usize;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                held.retain(|&g| g <= depth);
            }
            b'.' => {
                if body[i..].starts_with(".lock()") {
                    held.push(depth);
                    i += ".lock()".len();
                    continue;
                }
                if body[i..].starts_with(".wait(") && !held.is_empty() {
                    out.push(i);
                    i += ".wait(".len();
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{clean_source, strip_test_modules};

    fn run_rule(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let prepared: Vec<Prepared> = files
            .iter()
            .map(|(p, s)| Prepared {
                rel_path: (*p).to_owned(),
                src: (*s).to_owned(),
                clean: strip_test_modules(&clean_source(s)),
            })
            .collect();
        let refs: Vec<(&str, &str)> =
            prepared.iter().map(|f| (f.rel_path.as_str(), f.clean.as_str())).collect();
        let graph = CallGraph::build(&refs);
        check(&prepared, &graph)
    }

    #[test]
    fn sleep_in_run_is_flagged() {
        let d = run_rule(&[(
            "crates/net/src/reactor.rs",
            "impl Reactor { fn run(mut self) { std::thread::sleep(d); } }",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("thread::sleep"));
    }

    #[test]
    fn blocking_reached_through_helper_in_other_file_is_flagged() {
        let d = run_rule(&[
            ("crates/net/src/reactor.rs", "impl Reactor { fn run(mut self) { pause_briefly(); } }"),
            ("crates/net/src/deadline.rs", "pub fn pause_briefly() { thread::sleep(MS); }"),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].path, "crates/net/src/deadline.rs");
        assert!(d[0].message.contains("`run` -> `pause_briefly`"), "{}", d[0].message);
    }

    #[test]
    fn unreachable_blocking_is_exempt() {
        let d = run_rule(&[(
            "crates/net/src/reactor.rs",
            "impl Reactor { fn run(mut self) {} }\n\
             fn dialer_loop() { thread::sleep(MS); rx.recv(); }",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn lock_across_wait_is_flagged_and_scoped_release_passes() {
        let bad = run_rule(&[(
            "crates/net/src/reactor.rs",
            "impl Reactor { fn run(mut self) { let g = self.shared.x.lock(); \
             self.poller.wait(&mut ev, t); } }",
        )]);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].message.contains("held across"));
        let good = run_rule(&[(
            "crates/net/src/reactor.rs",
            "impl Reactor { fn run(mut self) { { let g = self.shared.x.lock(); } \
             self.poller.wait(&mut ev, t); } }",
        )]);
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn try_recv_is_not_blocking() {
        let d = run_rule(&[(
            "crates/net/src/reactor.rs",
            "impl Reactor { fn run(mut self) { while let Ok(c) = self.cmd_rx.try_recv() {} } }",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }
}
