//! The lint rule catalogue.
//!
//! Every rule is a pure function from a prepared source file to a list of
//! diagnostics. Rules see *cleaned* text (comments, literal contents, and
//! `#[cfg(test)]` modules blanked — see [`crate::lexer`]) so substring and
//! brace-depth reasoning cannot be fooled by strings or docs, plus the
//! original lines for snippets and inline allow markers.

pub mod cross;
pub mod durability;
pub mod exhaustive_match;
pub mod fd_ownership;
pub mod lock_order;
pub mod no_alloc_hot_path;
pub mod no_blocking_reactor;
pub mod no_panic;
pub mod region_routing;
pub mod unsafe_audit;
pub mod wall_clock;
pub mod wire_compat;

use crate::diag::Diagnostic;
use crate::lexer::line_of;

/// One fully-read source file, owned.
///
/// The per-file rules borrow a [`FileCtx`] view of one of these; the
/// cross-file passes ([`cross`], [`no_blocking_reactor`]) take the whole
/// slice so the call graph can resolve names across files.
#[derive(Debug)]
pub struct Prepared {
    /// Root-relative path, forward slashes.
    pub rel_path: String,
    /// Original source text.
    pub src: String,
    /// Cleaned, test-stripped source (byte offsets match `src`).
    pub clean: String,
}

impl Prepared {
    /// Builds a diagnostic anchored at byte `offset` of the cleaned text.
    pub fn diag(&self, rule: &'static str, offset: usize, message: String) -> Diagnostic {
        let line = line_of(&self.clean, offset);
        Diagnostic {
            rule,
            path: self.rel_path.clone(),
            line,
            message,
            snippet: self
                .src
                .lines()
                .nth(line - 1)
                .map(|l| l.trim().to_owned())
                .unwrap_or_default(),
        }
    }
}

/// One prepared source file.
#[derive(Debug)]
pub struct FileCtx<'a> {
    /// Root-relative path, forward slashes.
    pub rel_path: &'a str,
    /// Cleaned, test-stripped source (byte offsets match the original).
    pub clean: &'a str,
    /// Original source split into lines (index = line - 1).
    pub lines: &'a [&'a str],
}

impl FileCtx<'_> {
    /// Builds a diagnostic anchored at byte `offset` of the cleaned text.
    pub fn diag(&self, rule: &'static str, offset: usize, message: String) -> Diagnostic {
        let line = line_of(self.clean, offset);
        Diagnostic {
            rule,
            path: self.rel_path.to_owned(),
            line,
            message,
            snippet: self.lines.get(line - 1).map(|l| l.trim().to_owned()).unwrap_or_default(),
        }
    }

    /// Original text of the line containing cleaned-text byte `offset`.
    pub fn line_text(&self, offset: usize) -> &str {
        self.lines.get(line_of(self.clean, offset) - 1).copied().unwrap_or("")
    }
}

/// Runs every rule over one file.
pub fn run_all(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(no_panic::check(ctx));
    out.extend(wall_clock::check(ctx));
    out.extend(lock_order::check(ctx));
    out.extend(exhaustive_match::check(ctx));
    out.extend(no_alloc_hot_path::check(ctx));
    out.extend(region_routing::check(ctx));
    out.extend(durability::check(ctx));
    out.extend(unsafe_audit::check(ctx));
    out.extend(fd_ownership::check(ctx));
    out.extend(wire_compat::check(ctx));
    out
}
