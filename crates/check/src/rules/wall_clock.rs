//! `wall-clock`: no host-time or OS-entropy sources in deterministic code.
//!
//! The simulator, the core runtime, and the protocol layer must be
//! bit-for-bit replayable: time comes from the `net::time` virtual clocks
//! (`SimInstant`/`SimSpan`) and randomness from seeded PRNGs. Real
//! transports (`tcp.rs`, `memory.rs`) legitimately read the host clock and
//! are out of scope; `fault.rs` is in scope because fault plans must replay
//! identically.

use super::FileCtx;
use crate::diag::Diagnostic;

/// Rule identifier.
pub const RULE: &str = "wall-clock";

/// Exact files in scope.
const SCOPE_FILES: &[&str] = &["crates/net/src/fault.rs", "crates/net/src/time.rs"];
/// Path prefixes in scope. `crates/obs` is in scope because recorder
/// timestamps must replay in sim runs; its one sanctioned host-clock
/// reader (`clock.rs`, used only on real transports) is carried in
/// `allowlists/wall-clock.allow`, keeping the rule deny-by-default.
const SCOPE_PREFIXES: &[&str] =
    &["crates/sim/src/", "crates/core/src/", "crates/protocols/src/", "crates/obs/src/"];

/// Forbidden constructs and what to use instead.
const PATTERNS: &[(&str, &str)] = &[
    ("std::time::Instant", "net::time::SimInstant"),
    ("std::time::SystemTime", "net::time::SimInstant"),
    ("Instant::now", "the scheduler's virtual clock"),
    ("SystemTime", "net::time::SimInstant"),
    ("UNIX_EPOCH", "net::time::SimInstant"),
    ("thread::sleep", "Endpoint::advance (virtual time)"),
    ("thread_rng", "a seeded PRNG (rand::rngs::SmallRng equivalent)"),
    ("OsRng", "a seeded PRNG"),
    ("from_entropy", "a fixed or plan-provided seed"),
    ("getrandom", "a seeded PRNG"),
    ("rand::random", "a seeded PRNG"),
];

/// True if `rel_path` is governed by this rule.
pub fn in_scope(rel_path: &str) -> bool {
    SCOPE_FILES.contains(&rel_path) || SCOPE_PREFIXES.iter().any(|p| rel_path.starts_with(p))
}

/// Runs the rule over one prepared file.
pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !in_scope(ctx.rel_path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for &(pat, instead) in PATTERNS {
        for at in crate::lexer::find_bounded(ctx.clean, pat) {
            out.push(ctx.diag(
                RULE,
                at,
                format!(
                    "non-deterministic source `{pat}` in replay-critical code; \
                     use {instead}"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{clean_source, strip_test_modules};

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let clean = strip_test_modules(&clean_source(src));
        let lines: Vec<&str> = src.lines().collect();
        check(&FileCtx { rel_path: path, clean: &clean, lines: &lines })
    }

    #[test]
    fn flags_host_clock_in_sim() {
        let d = run("crates/sim/src/scheduler.rs", "let t = std::time::Instant::now();");
        assert!(!d.is_empty());
    }

    #[test]
    fn sim_instant_is_not_confused_with_instant() {
        let src = "let t = SimInstant::from_micros(sent_at); let s = SimInstant::ZERO;";
        assert!(run("crates/sim/src/scheduler.rs", src).is_empty());
    }

    #[test]
    fn real_transports_are_out_of_scope() {
        let src = "let t = std::time::Instant::now();";
        assert!(run("crates/net/src/tcp.rs", src).is_empty());
        assert!(run("crates/net/src/memory.rs", src).is_empty());
    }

    #[test]
    fn fault_plans_must_be_deterministic() {
        let d = run("crates/net/src/fault.rs", "let mut rng = thread_rng();");
        assert!(!d.is_empty());
    }

    #[test]
    fn obs_crate_is_in_scope() {
        // The scoped allowlist (not this rule) is what exempts clock.rs,
        // so the raw rule must flag host time anywhere in crates/obs.
        let src = "let epoch = std::time::Instant::now();";
        assert!(!run("crates/obs/src/recorder.rs", src).is_empty());
        assert!(!run("crates/obs/src/clock.rs", src).is_empty());
    }
}
