//! `region-routing`: interest routers must actually consult the peer.
//!
//! The sharding layer's whole contract is that a live diff reaches a
//! peer only when that peer's interest set covers the object's region.
//! A `routes` implementation that never reads its peer argument routes
//! every diff to every peer — a leaked cross-region diff that silently
//! restores O(cluster) per-node traffic while every convergence oracle
//! still passes (routing is a pure deferral, so nothing diverges; the
//! regression is invisible except in the traffic gates). The rule scans
//! every `fn routes(..)` defined under `crates/shard/src/` and denies
//! bodies that ignore the peer: either the parameter is spelled unused
//! (`_peer`, `_`) or the body text never mentions it. The intentionally
//! conservative blanket router (`DefaultRouter` in `sdso-core`) lives
//! outside the sharding crate and is out of scope by construction.

use super::FileCtx;
use crate::diag::Diagnostic;

/// Rule identifier.
pub const RULE: &str = "region-routing";

/// Path prefix governed by this rule.
const SCOPE_PREFIX: &str = "crates/shard/src/";

/// The routing decision method every interest router implements.
const PATTERN: &str = "fn routes(";

/// Runs the rule over one prepared file.
pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !ctx.rel_path.starts_with(SCOPE_PREFIX) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let bytes = ctx.clean.as_bytes();
    for at in crate::lexer::find_bounded(ctx.clean, PATTERN) {
        let params_open = at + PATTERN.len() - 1;
        let Some(params_close) = match_paren(bytes, params_open) else { continue };
        let params = &ctx.clean[params_open + 1..params_close];
        let Some(peer) = peer_param(params) else {
            out.push(
                ctx.diag(
                    RULE,
                    at,
                    "`routes` ignores its peer (parameter is unused or missing): every \
                 diff ships to every peer — a leaked cross-region diff"
                        .to_owned(),
                ),
            );
            continue;
        };
        // Trait declarations (`fn routes(..) -> bool;`) have no body.
        let Some(body_open) = body_open(bytes, params_close) else { continue };
        let Some(body_close) = match_brace(bytes, body_open) else { continue };
        let body = &ctx.clean[body_open + 1..body_close];
        if !mentions_ident(body, peer) {
            out.push(ctx.diag(
                RULE,
                at,
                format!(
                    "`routes` never reads `{peer}`: every diff ships to every peer — \
                     a leaked cross-region diff; consult the peer's interest set"
                ),
            ));
        }
    }
    out
}

/// The name of the peer parameter: the first non-`self` parameter. `None`
/// when it is missing or deliberately unused (`_`-prefixed).
fn peer_param(params: &str) -> Option<&str> {
    for param in params.split(',') {
        let name = param.split(':').next().unwrap_or("").trim();
        if name.is_empty() || name.ends_with("self") {
            continue;
        }
        if name.starts_with('_') {
            return None;
        }
        return Some(name);
    }
    None
}

/// Finds the body's opening `{` after the parameter list, skipping a
/// return-type annotation; `None` at a `;` (bodyless declaration).
fn body_open(b: &[u8], params_close: usize) -> Option<usize> {
    let mut i = params_close + 1;
    while i < b.len() {
        match b[i] {
            b'{' => return Some(i),
            b';' => return None,
            _ => i += 1,
        }
    }
    None
}

/// Byte offset of the `)` matching the `(` at `open`.
fn match_paren(b: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Byte offset of the `}` matching the `{` at `open`.
fn match_brace(b: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// True when `body` uses `ident` as a standalone identifier.
fn mentions_ident(body: &str, ident: &str) -> bool {
    crate::lexer::find_bounded(body, ident).iter().any(|&at| {
        let after = body.as_bytes().get(at + ident.len());
        !after.is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{clean_source, strip_test_modules};

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let clean = strip_test_modules(&clean_source(src));
        let lines: Vec<&str> = src.lines().collect();
        check(&FileCtx { rel_path: path, clean: &clean, lines: &lines })
    }

    const LEAKY: &str = "impl DiffRouter for R {\n    \
         fn routes(&self, _peer: NodeId, object: ObjectId) -> bool {\n        \
         self.lattice.contains(object)\n    }\n}";

    #[test]
    fn unused_peer_param_is_flagged() {
        let d = run("crates/shard/src/router.rs", LEAKY);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn body_that_never_reads_peer_is_flagged() {
        let src = "fn routes(&self, peer: NodeId, object: ObjectId) -> bool {\n    \
             self.lattice.contains(object)\n}";
        let d = run("crates/shard/src/router.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`peer`"));
    }

    #[test]
    fn consulting_the_peer_is_clean() {
        let src = "fn routes(&self, peer: NodeId, object: ObjectId) -> bool {\n    \
             self.interest_of(peer).covers(self.lattice.region_of_object(object))\n}";
        assert!(run("crates/shard/src/router.rs", src).is_empty());
    }

    #[test]
    fn trait_declarations_and_other_crates_are_exempt() {
        let decl = "pub trait DiffRouter { fn routes(&self, peer: NodeId, o: ObjectId) -> bool; }";
        assert!(run("crates/shard/src/router.rs", decl).is_empty());
        assert!(run("crates/core/src/router.rs", LEAKY).is_empty());
    }
}
