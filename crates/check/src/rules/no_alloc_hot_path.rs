//! `no-alloc-in-hot-path`: no per-call heap allocation in functions marked
//! as data-path hot paths.
//!
//! The put→diff→buffer→encode→send pipeline is designed to be
//! allocation-free in steady state: encode scratch comes from the buffer
//! pool, frames append into reusable [`BytesMut`]s, and batched writes
//! reuse one scratch buffer per flush. A function opts into enforcement by
//! carrying the marker `sdso-check: hot-path` in a comment on or above its
//! signature; the rule then denies allocating constructs inside that
//! function's body. Everything unmarked is out of scope — this rule is
//! opt-in where the others are deny-by-default, because "hot" is a design
//! decision the code must declare.

use super::FileCtx;
use crate::diag::Diagnostic;

/// Rule identifier.
pub const RULE: &str = "no-alloc-in-hot-path";

/// The opt-in marker, written in a comment on or above a function.
pub const MARKER: &str = "sdso-check: hot-path";

/// Allocating constructs and what the hot path should use instead.
/// Shared with the cross-file pass in [`super::cross`].
pub const PATTERNS: &[(&str, &str)] = &[
    ("Vec::new(", "pooled or caller-provided scratch"),
    ("Vec::with_capacity(", "pooled or caller-provided scratch"),
    ("vec![", "pooled or caller-provided scratch"),
    (".to_vec(", "a borrow or pooled scratch"),
    (".clone()", "a move or a borrow"),
    (".to_owned(", "a borrow"),
    ("String::new(", "a static or pooled buffer"),
    ("format!", "a preformatted constant"),
    ("Box::new(", "an inline value"),
    ("BytesMut::with_capacity(", "BufPool::get"),
];

/// Runs the rule over one prepared file.
///
/// Markers live in comments, which the lexer blanks out of `ctx.clean` —
/// so they are found in the original `ctx.lines`, and the function body
/// they govern is then brace-matched in the cleaned text (where braces
/// inside strings cannot mislead the matcher).
pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    // The lint infrastructure itself spells the marker as data (this file,
    // its fixtures, allowlist plumbing) and is not protocol code.
    if ctx.rel_path.starts_with("crates/check/") {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut line_start = 0usize; // byte offset of the current line
    for line in ctx.lines {
        let this_start = line_start;
        line_start += line.len() + 1;
        if !line.contains(MARKER) {
            continue;
        }
        let Some((body_start, body_end)) = marked_fn_body(ctx.clean, this_start) else {
            continue;
        };
        let body = &ctx.clean[body_start..body_end];
        for &(pat, instead) in PATTERNS {
            for at in crate::lexer::find_bounded(body, pat) {
                out.push(ctx.diag(
                    RULE,
                    body_start + at,
                    format!(
                        "allocation `{pat}..` inside a `{MARKER}` function; \
                         use {instead}"
                    ),
                ));
            }
        }
    }
    out
}

/// Finds the body of the function a marker at byte `from` applies to:
/// the brace-matched block following the next `fn` keyword at or after
/// the marker's line. Returns `(body_start, body_end)` offsets into the
/// cleaned text (exclusive of the braces themselves).
fn marked_fn_body(clean: &str, from: usize) -> Option<(usize, usize)> {
    let fn_at = crate::lexer::find_bounded(&clean[from..], "fn ").first().copied()? + from;
    let open = clean[fn_at..].find('{')? + fn_at;
    let bytes = clean.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open + 1, i));
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{clean_source, strip_test_modules};

    fn run(src: &str) -> Vec<Diagnostic> {
        let clean = strip_test_modules(&clean_source(src));
        let lines: Vec<&str> = src.lines().collect();
        check(&FileCtx { rel_path: "crates/net/src/frame.rs", clean: &clean, lines: &lines })
    }

    #[test]
    fn unmarked_functions_may_allocate() {
        let src = "fn cold() -> Vec<u8> { let v = Vec::new(); v }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn marked_function_denies_allocation() {
        let src = "/// Fast. sdso-check: hot-path\n\
                   fn hot(out: &mut Vec<u8>) { let v = data.to_vec(); out.extend(v); }";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains(".to_vec("));
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn marker_governs_only_its_own_function() {
        let src = "/// sdso-check: hot-path\n\
                   fn hot(out: &mut Vec<u8>) { out.extend_from_slice(b\"x\"); }\n\
                   fn cold() { let v = vec![0u8; 8]; drop(v); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn clone_and_vec_macro_are_denied() {
        let src = "// sdso-check: hot-path\n\
                   fn hot(x: &Payload) { let y = x.clone(); let b = vec![0u8; 4]; }";
        let d = run(src);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn braces_in_strings_do_not_break_matching() {
        let src = "/// sdso-check: hot-path\n\
                   fn hot() { let s = \"}}{{\"; }\n\
                   fn cold() { let v = Vec::new(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn marker_in_test_module_is_harmless() {
        // Bodies inside #[cfg(test)] are blanked, so no fn is found and
        // nothing is flagged.
        let src = "#[cfg(test)]\nmod tests {\n  // sdso-check: hot-path\n  \
                   fn t() { let v = Vec::new(); }\n}\n";
        assert!(run(src).is_empty());
    }
}
