//! `wire-compat`: codec-version gates choose an encoding, never reject.
//!
//! The wire codec is negotiated, not mandated: every process speaks the
//! absolute v1 `Data` encoding forever, and `Data2` only flows after a
//! `CodecOffer` handshake proves the peer decodes it. That contract is
//! what lets a rolling upgrade mix old and new binaries in one cluster —
//! and it dies the moment any decode or negotiation path turns a version
//! *comparison* into an *error*: `if version < CODEC_V2 { return Err }`
//! silently drops every not-yet-upgraded peer off the wire, and a
//! `match version { CODEC_V2 => .., _ => Err(..) }` does the same to any
//! future v3 sender. The rule therefore denies two shapes anywhere in
//! the workspace:
//!
//! 1. a comparison against a `CODEC_V*` constant whose governed branch
//!    (the `if` block, its `else`, or the guarded match arm) produces an
//!    error (`Err(..)`, `panic!`, `unreachable!`, `todo!`);
//! 2. a `match` on a version value that patterns on a `CODEC_V*`
//!    constant and errors in any arm.
//!
//! Comparisons that merely *select* an encoding — the real runtime's
//! `peer_version.is_some_and(|v| v >= CODEC_V2)` send-side gate — stay
//! clean: choosing v1 for an old peer is compatibility, rejecting it is
//! the bug.

use super::FileCtx;
use crate::diag::Diagnostic;
use crate::lexer::find_bounded;

/// Rule identifier.
pub const RULE: &str = "wire-compat";

/// Prefix shared by the codec-version constants (`CODEC_V1`, `CODEC_V2`).
const VERSION_CONST: &str = "CODEC_V";

/// Constructs that turn a version gate into a peer-dropping rejection.
const ERROR_PRODUCERS: [&str; 4] = ["Err(", "panic!", "unreachable!", "todo!"];

/// Runs the rule over one prepared file.
pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let clean = ctx.clean;
    let bytes = clean.as_bytes();
    let mut out = Vec::new();

    // Shape 1: `.. <op> CODEC_Vx` / `CODEC_Vx <op> ..` gating an error.
    for at in find_bounded(clean, VERSION_CONST) {
        let end = ident_end(bytes, at);
        if !comparison_bound(bytes, at, end) {
            continue;
        }
        for (open, close) in governed_branches(bytes, end) {
            if let Some(producer) = error_producer(&clean[open..close]) {
                out.push(ctx.diag(
                    RULE,
                    at,
                    format!(
                        "codec-version comparison gates `{producer}`: version checks must \
                         select an encoding, never reject a peer — cap with the negotiated \
                         minimum instead (old binaries always speak v1)"
                    ),
                ));
                break;
            }
        }
    }

    // Shape 2: `match <..version..> { .. CODEC_Vx => .. }` with an
    // erroring arm (typically the `_ =>` wildcard rejecting v1 or a
    // future v3).
    for at in find_bounded(clean, "match ") {
        let Some(open) = scrutinee_block_open(bytes, at + "match ".len()) else { continue };
        if !clean[at..open].contains("version") {
            continue;
        }
        let Some(close) = match_brace(bytes, open) else { continue };
        let body = &clean[open + 1..close];
        if find_bounded(body, VERSION_CONST).is_empty() {
            continue;
        }
        if let Some(producer) = error_producer(body) {
            out.push(ctx.diag(
                RULE,
                at,
                format!(
                    "version dispatch has an arm producing `{producer}`: a decoder must \
                     accept every negotiated codec version — route unknown versions to the \
                     v1 path, don't reject them"
                ),
            ));
        }
    }
    out
}

/// Byte offset one past the identifier starting at `at`.
fn ident_end(b: &[u8], at: usize) -> usize {
    let mut i = at;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    i
}

/// True when the `CODEC_V*` token at `at..end` participates in a
/// comparison (`==`, `!=`, `<`, `>`, `<=`, `>=`) rather than a plain
/// mention, a `const` definition, or a match pattern (`CODEC_V2 =>`).
fn comparison_bound(b: &[u8], at: usize, end: usize) -> bool {
    // Look behind: `v >= CODEC_V2`, `version != CODEC_V2`, ...
    let mut i = at;
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    if i >= 1 {
        let prev = b[i - 1];
        let prev2 = if i >= 2 { b[i - 2] } else { 0 };
        // `=>` ends a pattern, `=` alone is an assignment/definition.
        let eq_cmp =
            prev == b'=' && (prev2 == b'=' || prev2 == b'!' || prev2 == b'<' || prev2 == b'>');
        if eq_cmp || prev == b'<' || (prev == b'>' && prev2 != b'=') {
            return true;
        }
    }
    // Look ahead: `CODEC_V2 <= v`, `CODEC_V2 == v`, ... (but not `=>`).
    let mut j = end;
    while j < b.len() && b[j].is_ascii_whitespace() {
        j += 1;
    }
    if j < b.len() {
        let next = b[j];
        let next2 = if j + 1 < b.len() { b[j + 1] } else { 0 };
        if ((next == b'=' || next == b'!') && next2 == b'=')
            || next == b'<'
            || (next == b'>' && next2 != b'=')
        {
            return true;
        }
    }
    false
}

/// The branch bodies governed by the comparison ending at `from`: the
/// `if` block plus its `else` (either side may hold the rejection), or
/// the guarded match arm after `=>`. Empty when the comparison feeds a
/// plain binding (`let ok = v >= CODEC_V2;`) — flagging resumes wherever
/// that binding is later compared, which this scan cannot follow.
fn governed_branches(b: &[u8], from: usize) -> Vec<(usize, usize)> {
    let mut depth = 0i32;
    let mut i = from;
    while i < b.len() {
        match b[i] {
            b'(' => depth += 1,
            b')' => depth -= 1,
            // A stray separator before any block: the comparison is an
            // argument or a binding initialiser, not an `if` condition.
            b';' => return Vec::new(),
            b',' if depth <= 0 => return Vec::new(),
            b'=' if b.get(i + 1) == Some(&b'>') => {
                // Match guard: the governed body is the arm after `=>`.
                return arm_body(b, i + 2).into_iter().collect();
            }
            b'{' => {
                let Some(close) = match_brace(b, i) else { return Vec::new() };
                let mut branches = vec![(i + 1, close)];
                if let Some(else_branch) = else_branch(b, close) {
                    branches.push(else_branch);
                }
                return branches;
            }
            _ => {}
        }
        i += 1;
    }
    Vec::new()
}

/// The `else` (or `else if`) block following the `}` at `close`, if any.
fn else_branch(b: &[u8], close: usize) -> Option<(usize, usize)> {
    let mut i = close + 1;
    while i < b.len() && b[i].is_ascii_whitespace() {
        i += 1;
    }
    if !b[i..].starts_with(b"else") {
        return None;
    }
    i += "else".len();
    // Skip an `else if ..` condition up to its block.
    while i < b.len() && b[i] != b'{' && b[i] != b';' {
        i += 1;
    }
    if i >= b.len() || b[i] != b'{' {
        return None;
    }
    match_brace(b, i).map(|c| (i + 1, c))
}

/// A match-arm body starting at `from` (just past `=>`): up to the
/// matching end of its block, or the `,` closing a blockless arm.
fn arm_body(b: &[u8], from: usize) -> Option<(usize, usize)> {
    let mut i = from;
    while i < b.len() && b[i].is_ascii_whitespace() {
        i += 1;
    }
    if i < b.len() && b[i] == b'{' {
        return match_brace(b, i).map(|c| (i + 1, c));
    }
    let mut depth = 0i32;
    let mut j = i;
    while j < b.len() {
        match b[j] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b',' if depth <= 0 => return Some((i, j)),
            b'}' if depth <= 0 => return Some((i, j)),
            _ => {}
        }
        j += 1;
    }
    Some((i, b.len()))
}

/// The `{` opening a match body, scanning a scrutinee from `from`.
fn scrutinee_block_open(b: &[u8], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, &c) in b.iter().enumerate().skip(from) {
        match c {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'{' if depth == 0 => return Some(i),
            b';' => return None,
            _ => {}
        }
    }
    None
}

/// Byte offset of the `}` matching the `{` at `open`.
fn match_brace(b: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// The first error-producing construct in `body`, if any.
fn error_producer(body: &str) -> Option<&'static str> {
    ERROR_PRODUCERS.iter().copied().find(|p| !find_bounded(body, p).is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{clean_source, strip_test_modules};

    fn run(src: &str) -> Vec<Diagnostic> {
        let clean = strip_test_modules(&clean_source(src));
        let lines: Vec<&str> = src.lines().collect();
        check(&FileCtx { rel_path: "crates/core/src/runtime.rs", clean: &clean, lines: &lines })
    }

    #[test]
    fn rejecting_old_versions_is_flagged() {
        let src = "fn on_offer(&mut self, version: u8) -> Result<(), E> {\n    \
             if version < CODEC_V2 {\n        \
             return Err(E::Unsupported(version));\n    }\n    Ok(())\n}";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn rejection_hiding_in_the_else_arm_is_flagged() {
        let src = "fn on_offer(v: u8) -> Result<(), E> {\n    \
             if v >= CODEC_V2 { accept(v) } else { Err(E::TooOld) }\n}";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn wildcard_rejecting_version_dispatch_is_flagged() {
        let src = "fn decode(version: u8, blob: &[u8]) -> Result<Vec<u8>, E> {\n    \
             match version {\n        \
             CODEC_V2 => decode_v2(blob),\n        \
             _ => Err(E::Unsupported),\n    }\n}";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("every negotiated codec version"), "{d:?}");
    }

    #[test]
    fn guarded_match_arm_rejection_is_flagged() {
        let src = "fn deliver(msg: Msg) -> Result<(), E> {\n    \
             match msg {\n        \
             Msg::Offer { version: v } if v != CODEC_V2 => Err(E::BadVersion),\n        \
             other => handle(other),\n    }\n}";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn selecting_an_encoding_stays_clean() {
        // The real runtime's send gate: an old peer gets v1, never an
        // error. The `None` branch falling through is compatibility.
        let src = "fn encode(&mut self, peer: u16) -> Msg {\n    \
             if self.links[peer as usize].peer_version.is_some_and(|v| v >= CODEC_V2) {\n        \
             return self.encode_v2(peer);\n    }\n    \
             self.encode_v1(peer)\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn non_rejecting_version_dispatch_stays_clean() {
        let src = "fn pick(version: u8) -> Encoder {\n    \
             match version {\n        \
             CODEC_V2 => Encoder::Compressed,\n        \
             _ => Encoder::Absolute,\n    }\n}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn definitions_and_plain_mentions_stay_clean() {
        let src = "pub const CODEC_V1: u8 = 1;\npub const CODEC_V2: u8 = 2;\n\
             fn offer() -> Msg { Msg::Offer { version: CODEC_V2 } }";
        assert!(run(src).is_empty());
    }
}
