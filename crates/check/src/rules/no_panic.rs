//! `no-panic`: no `unwrap()`/`expect()`/`panic!` (or their cousins) in
//! protocol-path non-test code.
//!
//! S-DSO's runtime, protocols, and transports must surface failures through
//! the typed `error.rs` paths — a panic in a replica is an availability
//! fault the paper's model does not allow for. Tests and scoped-out crates
//! (the simulator harness, the game) may panic freely.

use super::FileCtx;
use crate::diag::Diagnostic;

/// Rule identifier.
pub const RULE: &str = "no-panic";

/// Exact files in scope.
const SCOPE_FILES: &[&str] = &["crates/core/src/runtime.rs"];
/// Path prefixes in scope.
const SCOPE_PREFIXES: &[&str] = &["crates/protocols/src/", "crates/net/src/", "crates/shard/src/"];

/// Panicking constructs and how to refer to them in the diagnostic.
/// Shared with the cross-file reachability pass in [`super::cross`].
pub const PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "`.unwrap()`"),
    (".expect(", "`.expect(..)`"),
    ("panic!", "`panic!`"),
    ("unreachable!", "`unreachable!`"),
    ("todo!", "`todo!`"),
    ("unimplemented!", "`unimplemented!`"),
];

/// True if `rel_path` is governed by this rule.
pub fn in_scope(rel_path: &str) -> bool {
    SCOPE_FILES.contains(&rel_path) || SCOPE_PREFIXES.iter().any(|p| rel_path.starts_with(p))
}

/// Runs the rule over one prepared file.
pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !in_scope(ctx.rel_path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for &(pat, what) in PATTERNS {
        for at in crate::lexer::find_bounded(ctx.clean, pat) {
            out.push(ctx.diag(
                RULE,
                at,
                format!(
                    "{what} in non-test protocol code; propagate a typed error \
                     (see error.rs) instead of panicking"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{clean_source, strip_test_modules};

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let clean = strip_test_modules(&clean_source(src));
        let lines: Vec<&str> = src.lines().collect();
        check(&FileCtx { rel_path: path, clean: &clean, lines: &lines })
    }

    #[test]
    fn flags_unwrap_in_scope() {
        let d = run("crates/protocols/src/entry.rs", "fn f() { x.unwrap(); }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn ignores_out_of_scope_and_tests() {
        assert!(run("crates/game/src/ai.rs", "fn f() { x.unwrap(); }").is_empty());
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }";
        assert!(run("crates/protocols/src/entry.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(id); z.unwrap_or_default(); }";
        assert!(run("crates/net/src/tcp.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_count() {
        let src = "fn f() { let s = \".unwrap()\"; } // panic!(\"no\")";
        assert!(run("crates/core/src/runtime.rs", src).is_empty());
    }
}
