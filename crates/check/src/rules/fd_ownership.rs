//! `fd-ownership`: raw file descriptors stay inside `sys.rs`.
//!
//! The reactor's safety story rests on every descriptor having exactly one
//! owner whose `Drop` closes it: `OwnedFd` for the epoll instance, `File`
//! for the eventfd, `TcpStream`/`TcpListener` for sockets. A `RawFd`
//! returned, stored, or converted anywhere else in `sdso-net` is a leak or
//! a double-close waiting to happen (and is exactly how fd-recycling races
//! start: a stale raw fd closed after the number was reused now closes an
//! unrelated socket). `sys.rs` — the FFI boundary — is the single file
//! allowed to touch raw descriptors; its `Poller` API takes
//! `&impl AsRawFd` so callers never need to.

use super::FileCtx;
use crate::diag::Diagnostic;

/// Rule identifier.
pub const RULE: &str = "fd-ownership";

/// The only file allowed to handle raw descriptors.
const EXEMPT: &str = "crates/net/src/sys.rs";

/// Path prefix governed by this rule.
const SCOPE_PREFIX: &str = "crates/net/src/";

/// Raw-descriptor constructs and why each is denied.
const PATTERNS: &[(&str, &str)] = &[
    ("RawFd", "raw descriptors have no owner; pass `&impl AsRawFd` into sys.rs instead"),
    ("from_raw_fd", "ownership conjured from an integer; construct owned types in sys.rs"),
    ("into_raw_fd", "ownership discarded into an integer; keep the owning type alive"),
    ("as_raw_fd", "borrowed raw fd escapes its owner's lifetime tracking"),
    ("AsRawFd", "fd-trait plumbing belongs behind the sys.rs boundary"),
];

/// Runs the rule over one prepared file.
pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if !ctx.rel_path.starts_with(SCOPE_PREFIX) || ctx.rel_path == EXEMPT {
        return Vec::new();
    }
    let mut out = Vec::new();
    for &(pat, why) in PATTERNS {
        for at in crate::lexer::find_bounded(ctx.clean, pat) {
            // Reject identifier tails (`RawFdTable`, `as_raw_fd_count`).
            let after = ctx.clean.as_bytes().get(at + pat.len());
            if after.is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_') {
                continue;
            }
            out.push(ctx.diag(RULE, at, format!("`{pat}` outside sys.rs: {why}")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{clean_source, strip_test_modules};

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let clean = strip_test_modules(&clean_source(src));
        let lines: Vec<&str> = src.lines().collect();
        check(&FileCtx { rel_path: path, clean: &clean, lines: &lines })
    }

    #[test]
    fn raw_fd_outside_sys_is_flagged() {
        let src = "pub fn leak(l: &TcpListener) -> RawFd { l.as_raw_fd() }";
        let d = run("crates/net/src/reactor.rs", src);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn sys_rs_is_exempt() {
        let src = "pub fn add(&self, fd: RawFd) { x.as_raw_fd(); }";
        assert!(run("crates/net/src/sys.rs", src).is_empty());
    }

    #[test]
    fn other_crates_are_out_of_scope() {
        let src = "pub fn f() -> RawFd { 3 }";
        assert!(run("crates/core/src/runtime.rs", src).is_empty());
    }

    #[test]
    fn tests_inside_net_files_are_stripped_first() {
        let src = "#[cfg(test)]\nmod tests { fn t() { s.as_raw_fd(); } }";
        assert!(run("crates/net/src/reactor.rs", src).is_empty());
    }
}
