//! `exhaustive-match`: matches over wire-message enums must name every
//! variant (or bind the rest) — a catch-all `_` arm silently drops any
//! message kind added later.
//!
//! The protected enums are the protocol wire vocabularies: a new variant
//! must force every dispatch site through a compile — or at least a
//! deliberate binder arm — rather than vanishing into `_ => {}`.

use super::FileCtx;
use crate::diag::Diagnostic;

/// Rule identifier.
pub const RULE: &str = "exhaustive-match";

/// Wire enums protected by the rule.
const ENUMS: &[&str] = &["DsoMessage", "EcMessage", "LrcMessage", "MsgClass"];

/// One parsed match arm: pattern text (guard excluded) and its offset.
#[derive(Debug)]
struct Arm {
    pattern: String,
    offset: usize,
}

/// Runs the rule over one prepared file.
pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for at in crate::lexer::find_bounded(ctx.clean, "match") {
        // Keyword check: `match` must not be an identifier prefix
        // (`matches!`, `match_len`, ...).
        let after = at + "match".len();
        if ctx.clean[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_' || c == '!')
        {
            continue;
        }
        let Some(arms) = parse_match(ctx.clean, after) else {
            continue;
        };
        let guarded = arms.iter().any(|a| {
            ENUMS
                .iter()
                .any(|e| !crate::lexer::find_bounded(&a.pattern, &format!("{e}::")).is_empty())
        });
        if !guarded {
            continue;
        }
        let enum_names: Vec<&str> = ENUMS
            .iter()
            .copied()
            .filter(|e| {
                arms.iter()
                    .any(|a| !crate::lexer::find_bounded(&a.pattern, &format!("{e}::")).is_empty())
            })
            .collect();
        for arm in &arms {
            if arm.pattern.trim() == "_" {
                out.push(ctx.diag(
                    RULE,
                    arm.offset,
                    format!(
                        "catch-all `_` arm in a match over wire enum {}; name the \
                         remaining variants (or bind them, e.g. `other =>`) so new \
                         message kinds cannot be silently dropped",
                        enum_names.join("/")
                    ),
                ));
            }
        }
    }
    out
}

/// Parses the arms of the match whose scrutinee starts at `from` (just
/// after the `match` keyword). Returns `None` if no body is found.
fn parse_match(clean: &str, from: usize) -> Option<Vec<Arm>> {
    let b = clean.as_bytes();
    // Scrutinee: scan to the body `{` at zero paren/bracket depth. Rust
    // forbids bare struct literals in match scrutinees, so the first
    // top-level `{` opens the body.
    let mut i = from;
    let (mut paren, mut bracket) = (0i32, 0i32);
    loop {
        match b.get(i)? {
            b'(' => paren += 1,
            b')' => paren -= 1,
            b'[' => bracket += 1,
            b']' => bracket -= 1,
            b'{' if paren == 0 && bracket == 0 => break,
            b';' if paren == 0 && bracket == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    let mut arms = Vec::new();
    i += 1; // into the body
    loop {
        // Skip whitespace and `|` leaders.
        while i < b.len() && (b[i].is_ascii_whitespace() || b[i] == b'|') {
            i += 1;
        }
        if i >= b.len() || b[i] == b'}' {
            return Some(arms);
        }
        // Pattern (+ optional guard) up to `=>` at zero depth.
        let pat_start = i;
        let (mut p, mut k, mut c) = (0i32, 0i32, 0i32);
        let mut guard_at: Option<usize> = None;
        let arrow = loop {
            if i + 1 >= b.len() {
                return Some(arms);
            }
            if p == 0 && k == 0 && c == 0 {
                if b[i] == b'=' && b[i + 1] == b'>' {
                    break i;
                }
                if guard_at.is_none()
                    && clean[i..].starts_with("if")
                    && !matches!(b.get(i + 2), Some(x) if x.is_ascii_alphanumeric() || *x == b'_')
                    && (i == 0 || !b[i - 1].is_ascii_alphanumeric() && b[i - 1] != b'_')
                {
                    guard_at = Some(i);
                }
            }
            match b[i] {
                b'(' => p += 1,
                b')' => p -= 1,
                b'[' => k += 1,
                b']' => k -= 1,
                b'{' => c += 1,
                b'}' => c -= 1,
                _ => {}
            }
            i += 1;
        };
        let pat_end = guard_at.unwrap_or(arrow);
        arms.push(Arm { pattern: clean[pat_start..pat_end].to_owned(), offset: pat_start });
        // Arm body: a block, or an expression up to `,` at zero depth (or
        // the match's closing brace).
        i = arrow + 2;
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < b.len() && b[i] == b'{' {
            let mut depth = 0i32;
            while i < b.len() {
                match b[i] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            // Optional trailing comma.
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            if i < b.len() && b[i] == b',' {
                i += 1;
            }
        } else {
            let (mut p, mut k, mut c) = (0i32, 0i32, 0i32);
            while i < b.len() {
                match b[i] {
                    b'(' => p += 1,
                    b')' => p -= 1,
                    b'[' => k += 1,
                    b']' => k -= 1,
                    b'{' => c += 1,
                    b'}' if c > 0 => c -= 1,
                    b'}' if p == 0 && k == 0 => return Some(arms), // match closes
                    b',' if p == 0 && k == 0 && c == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{clean_source, strip_test_modules};

    fn run(src: &str) -> Vec<Diagnostic> {
        let clean = strip_test_modules(&clean_source(src));
        let lines: Vec<&str> = src.lines().collect();
        check(&FileCtx { rel_path: "crates/core/src/runtime.rs", clean: &clean, lines: &lines })
    }

    #[test]
    fn wildcard_over_wire_enum_is_flagged() {
        let src = "fn f(m: DsoMessage) { match m { DsoMessage::Ack => h(), _ => {} } }";
        let d = run(src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("DsoMessage"));
    }

    #[test]
    fn binder_arm_is_accepted() {
        let src = "fn f(m: DsoMessage) { match m { DsoMessage::Ack => h(), other => e(other) } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn fully_enumerated_match_is_accepted() {
        let src = "match m { DsoMessage::Ack => a(), DsoMessage::Sync { time } => b(time) }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn matches_over_other_types_are_ignored() {
        let src = "match tag { 1 => Some(MsgClass::Control), _ => None }";
        assert!(run(src).is_empty(), "enum in the body, not the pattern");
    }

    #[test]
    fn guard_referencing_enum_does_not_make_it_an_enum_match() {
        let src = "match arq { Some(a) if !matches!(m, DsoMessage::Ack) => x(a), _ => y() }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn nested_wildcard_in_arm_body_is_not_confused() {
        let src = "match m { DsoMessage::Ack => match t { 1 => a(), _ => b() }, \
                   DsoMessage::Sync { time } => c(time) }";
        assert!(run(src).is_empty());
    }
}
