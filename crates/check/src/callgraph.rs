//! A lightweight, name-based call graph over the cleaned workspace source.
//!
//! The workspace builds fully offline (no `syn`), so this is a lexical
//! approximation built on [`crate::lexer`]'s cleaned text: function
//! definitions are found by scanning for `fn name` and brace-matching the
//! body; call sites are identifiers immediately followed by an argument
//! list. Resolution is deliberately conservative — a call edge is only
//! created when the target is unambiguous:
//!
//! * `self.helper(..)` / `Self::helper(..)` resolve against definitions in
//!   the *same file* only (inherent methods overwhelmingly live beside
//!   their callers in this workspace);
//! * free and path calls (`helper(..)`, `module::helper(..)`) resolve to a
//!   same-file definition first, else to a workspace definition with that
//!   name **if exactly one exists**; otherwise no edge.
//!
//! Missing edges make the dependent rules (`no-panic` reachability,
//! `no-alloc-in-hot-path` cross-file, `no-blocking-in-reactor`) under-
//! approximate, never false-positive on a nonexistent call. The few names
//! that collide with ubiquitous std methods (`new`, `len`, `clone`, …) are
//! ambiguous by construction and drop out on their own.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::lexer::line_of;

/// One function definition, located in a prepared file.
#[derive(Debug)]
pub struct Def {
    /// Index into the prepared-file list the graph was built from.
    pub file: usize,
    /// The bare function name (no path, no generics).
    pub name: String,
    /// Byte offset of the `fn` keyword in the cleaned text.
    pub sig_offset: usize,
    /// Body span in cleaned-text bytes, exclusive of the braces.
    pub body: (usize, usize),
}

/// One resolved call edge out of a definition's body.
#[derive(Debug, Clone, Copy)]
pub struct CallEdge {
    /// Callee definition index.
    pub callee: usize,
    /// Byte offset of the call site in the caller's cleaned text.
    pub offset: usize,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// Every function definition found, in file order.
    pub defs: Vec<Def>,
    /// Resolved outgoing edges per definition.
    pub calls_from: Vec<Vec<CallEdge>>,
}

/// Why a definition is tainted (used by [`CallGraph::propagate`]).
#[derive(Debug, Clone)]
pub enum Reason {
    /// The definition itself contains the construct.
    Direct {
        /// Which pattern was found (for the diagnostic message).
        what: String,
        /// Byte offset of the construct in the definition's file.
        offset: usize,
    },
    /// The definition calls a tainted definition.
    Via {
        /// The tainted callee's definition index.
        callee: usize,
    },
}

impl CallGraph {
    /// Builds the graph from `(rel_path, cleaned_text)` pairs.
    pub fn build(files: &[(&str, &str)]) -> CallGraph {
        let mut defs = Vec::new();
        for (file_idx, (_, clean)) in files.iter().enumerate() {
            parse_defs(file_idx, clean, &mut defs);
        }
        // Name index for global resolution: name -> def indices.
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, d) in defs.iter().enumerate() {
            by_name.entry(&d.name).or_default().push(i);
        }
        let mut calls_from: Vec<Vec<CallEdge>> = vec![Vec::new(); defs.len()];
        for (caller_idx, caller) in defs.iter().enumerate() {
            let clean = files[caller.file].1;
            for site in call_sites(clean, caller.body) {
                // Attribute the site to the *innermost* def containing it,
                // so a nested fn's calls are not charged to its parent.
                if innermost_def(&defs, caller.file, site.offset) != Some(caller_idx) {
                    continue;
                }
                let callee = resolve(&defs, &by_name, caller.file, &site);
                if let Some(callee) = callee {
                    if callee != caller_idx {
                        calls_from[caller_idx].push(CallEdge { callee, offset: site.offset });
                    }
                }
            }
        }
        CallGraph { defs, calls_from }
    }

    /// The definition whose body contains cleaned-text byte `offset` of
    /// file `file` (innermost on nesting), if any.
    pub fn def_at(&self, file: usize, offset: usize) -> Option<usize> {
        innermost_def(&self.defs, file, offset)
    }

    /// Definitions reachable from `roots` by following call edges
    /// (including the roots themselves).
    pub fn reachable_from(&self, roots: &[usize]) -> HashSet<usize> {
        let mut seen: HashSet<usize> = roots.iter().copied().collect();
        let mut queue: VecDeque<usize> = roots.iter().copied().collect();
        while let Some(d) = queue.pop_front() {
            for e in &self.calls_from[d] {
                if seen.insert(e.callee) {
                    queue.push_back(e.callee);
                }
            }
        }
        seen
    }

    /// Propagates per-definition direct facts backwards over call edges:
    /// a definition is tainted if it has a direct fact or calls a tainted
    /// definition. Returns one optional [`Reason`] per definition; `Via`
    /// links form chains that [`CallGraph::render_chain`] can print.
    pub fn propagate(&self, direct: Vec<Option<Reason>>) -> Vec<Option<Reason>> {
        let mut reasons = direct;
        // Reverse adjacency for the worklist.
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); self.defs.len()];
        for (caller, edges) in self.calls_from.iter().enumerate() {
            for e in edges {
                callers[e.callee].push(caller);
            }
        }
        let mut queue: VecDeque<usize> =
            reasons.iter().enumerate().filter(|(_, r)| r.is_some()).map(|(i, _)| i).collect();
        while let Some(tainted) = queue.pop_front() {
            for &caller in &callers[tainted] {
                if reasons[caller].is_none() {
                    reasons[caller] = Some(Reason::Via { callee: tainted });
                    queue.push_back(caller);
                }
            }
        }
        reasons
    }

    /// Renders the taint chain starting at `def` as
    /// `` `a` -> `b`: `panic!` at crates/x/src/y.rs:12 ``.
    ///
    /// `reasons` must be the output of [`CallGraph::propagate`] and `files`
    /// the same slice the graph was built from.
    pub fn render_chain(
        &self,
        reasons: &[Option<Reason>],
        files: &[(&str, &str)],
        def: usize,
    ) -> String {
        let mut names = Vec::new();
        let mut cur = def;
        loop {
            names.push(format!("`{}`", self.defs[cur].name));
            match &reasons[cur] {
                Some(Reason::Via { callee }) => cur = *callee,
                Some(Reason::Direct { what, offset }) => {
                    let (path, clean) = files[self.defs[cur].file];
                    return format!(
                        "{}: {what} at {path}:{}",
                        names.join(" -> "),
                        line_of(clean, *offset)
                    );
                }
                None => return names.join(" -> "),
            }
        }
    }
}

/// The definition whose body contains `offset` in `file`, innermost first.
fn innermost_def(defs: &[Def], file: usize, offset: usize) -> Option<usize> {
    defs.iter()
        .enumerate()
        .filter(|(_, d)| d.file == file && d.body.0 <= offset && offset < d.body.1)
        .min_by_key(|(_, d)| d.body.1 - d.body.0)
        .map(|(i, _)| i)
}

/// Scans cleaned text for `fn name … { body }` definitions.
fn parse_defs(file_idx: usize, clean: &str, out: &mut Vec<Def>) {
    let b = clean.as_bytes();
    for at in crate::lexer::find_bounded(clean, "fn ") {
        // Reject `extern "C" fn` pointer types and the tail of idents —
        // find_bounded already checks the leading boundary.
        let mut j = at + 3;
        while j < b.len() && b[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        if j == name_start {
            continue; // `fn(` type position, or something odd
        }
        let name = &clean[name_start..j];
        // Find the body's opening brace at paren depth 0; a `;` first means
        // a bodiless declaration (trait method, extern fn) — skip it.
        let mut paren = 0usize;
        let mut open = None;
        while j < b.len() {
            match b[j] {
                b'(' | b'[' => paren += 1,
                b')' | b']' => paren = paren.saturating_sub(1),
                b'{' if paren == 0 => {
                    open = Some(j);
                    break;
                }
                b';' if paren == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else { continue };
        let Some(close) = match_brace(b, open) else { continue };
        out.push(Def {
            file: file_idx,
            name: name.to_owned(),
            sig_offset: at,
            body: (open + 1, close),
        });
    }
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(b: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// One syntactic call site inside a body.
struct Site {
    /// Byte offset of the called identifier.
    offset: usize,
    /// The called name.
    name: String,
    /// `self.name(..)` / `Self::name(..)` — same-file resolution only.
    method_or_self: bool,
    /// `qualifier::name(..)` (qualifier other than `Self`).
    qualified: bool,
}

/// Keywords that look like calls when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "as", "in", "move", "ref", "mut",
    "else", "unsafe", "impl", "where", "pub", "let", "use", "break", "continue", "dyn", "crate",
];

/// Extracts candidate call sites from `clean[body]`: identifiers followed
/// (modulo whitespace / turbofish) by `(`.
fn call_sites(clean: &str, body: (usize, usize)) -> Vec<Site> {
    let b = clean.as_bytes();
    let mut sites = Vec::new();
    let mut i = body.0;
    while i < body.1 {
        let c = b[i];
        if !(c.is_ascii_alphabetic() || c == b'_') {
            i += 1;
            continue;
        }
        let start = i;
        while i < body.1 && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        let name = &clean[start..i];
        // Skip whitespace, then an optional `::<…>` turbofish.
        let mut j = i;
        while j < body.1 && b[j].is_ascii_whitespace() {
            j += 1;
        }
        if clean[j..].starts_with("::<") {
            let mut depth = 0usize;
            while j < body.1 {
                match b[j] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if b.get(j) != Some(&b'(') || KEYWORDS.contains(&name) {
            continue;
        }
        if b.get(j.wrapping_sub(1)) == Some(&b'!') || b.get(i) == Some(&b'!') {
            continue; // macro invocation
        }
        // A definition's own name looks like a call (`fn inner(`): skip
        // identifiers introduced by the `fn` keyword.
        let prefix = clean[..start].trim_end();
        if prefix.ends_with("fn")
            && prefix[..prefix.len() - 2]
                .bytes()
                .next_back()
                .is_none_or(|c| !(c.is_ascii_alphanumeric() || c == b'_'))
        {
            continue;
        }
        // Classify by what precedes the identifier.
        let before = start.checked_sub(1).map(|k| b[k]);
        let (method_or_self, qualified) = match before {
            Some(b'.') => {
                // Only `self.name(` resolves; other receivers are too
                // ambiguous for a name-based graph.
                if !clean[..start].ends_with("self.") {
                    continue;
                }
                (true, false)
            }
            Some(b':') => {
                let path_head = clean[..start.saturating_sub(2)]
                    .rfind(|ch: char| !(ch.is_ascii_alphanumeric() || ch == '_'))
                    .map_or(&clean[..start.saturating_sub(2)], |k| {
                        &clean[k + 1..start.saturating_sub(2)]
                    });
                (path_head == "Self", path_head != "Self")
            }
            _ => (false, false),
        };
        sites.push(Site { offset: start, name: name.to_owned(), method_or_self, qualified });
    }
    sites
}

/// Resolves a call site to a definition index, or `None` when ambiguous.
fn resolve(
    defs: &[Def],
    by_name: &HashMap<&str, Vec<usize>>,
    caller_file: usize,
    site: &Site,
) -> Option<usize> {
    let candidates = by_name.get(site.name.as_str())?;
    let same_file: Vec<usize> =
        candidates.iter().copied().filter(|&i| defs[i].file == caller_file).collect();
    if same_file.len() == 1 {
        return Some(same_file[0]);
    }
    if !same_file.is_empty() {
        return None; // several same-file defs of one name: ambiguous
    }
    if site.method_or_self {
        return None; // self-calls never resolve across files
    }
    if candidates.len() == 1 {
        return Some(candidates[0]);
    }
    let _ = site.qualified; // qualifier-aware disambiguation: future work
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{clean_source, strip_test_modules};

    fn graph(files: &[(&str, &str)]) -> (CallGraph, Vec<(String, String)>) {
        let prepared: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| ((*p).to_owned(), strip_test_modules(&clean_source(s))))
            .collect();
        let refs: Vec<(&str, &str)> =
            prepared.iter().map(|(p, s)| (p.as_str(), s.as_str())).collect();
        (CallGraph::build(&refs), prepared)
    }

    #[test]
    fn finds_defs_and_same_file_edges() {
        let (g, _) = graph(&[("a.rs", "fn outer() { helper(1); }\nfn helper(x: u32) {}")]);
        assert_eq!(g.defs.len(), 2);
        let outer = g.defs.iter().position(|d| d.name == "outer").unwrap();
        let helper = g.defs.iter().position(|d| d.name == "helper").unwrap();
        assert_eq!(g.calls_from[outer].len(), 1);
        assert_eq!(g.calls_from[outer][0].callee, helper);
    }

    #[test]
    fn unique_global_resolves_across_files() {
        let (g, _) = graph(&[
            ("a.rs", "fn caller() { crate::b::unique_helper(); }"),
            ("b.rs", "pub fn unique_helper() {}"),
        ]);
        let caller = g.defs.iter().position(|d| d.name == "caller").unwrap();
        assert_eq!(g.calls_from[caller].len(), 1);
    }

    #[test]
    fn ambiguous_names_get_no_edge() {
        let (g, _) = graph(&[
            ("a.rs", "fn caller() { new(); }"),
            ("b.rs", "pub fn new() {}"),
            ("c.rs", "pub fn new() {}"),
        ]);
        let caller = g.defs.iter().position(|d| d.name == "caller").unwrap();
        assert!(g.calls_from[caller].is_empty());
    }

    #[test]
    fn self_method_resolves_same_file_only() {
        let (g, _) = graph(&[
            ("a.rs", "impl T { fn go(&self) { self.step(); } fn step(&self) {} }"),
            ("b.rs", "impl U { fn run(&self) { self.leap(); } }"),
            ("c.rs", "impl V { fn leap(&self) {} }"),
        ]);
        let go = g.defs.iter().position(|d| d.name == "go").unwrap();
        assert_eq!(g.calls_from[go].len(), 1);
        let run = g.defs.iter().position(|d| d.name == "run").unwrap();
        assert!(g.calls_from[run].is_empty(), "self-calls never cross files");
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let (g, _) = graph(&[(
            "a.rs",
            "fn f() { if (x) { vec![1]; assert!(true); } while (y) {} return (3); }",
        )]);
        let f = g.defs.iter().position(|d| d.name == "f").unwrap();
        assert!(g.calls_from[f].is_empty());
    }

    #[test]
    fn nested_fn_calls_are_attributed_to_the_inner_def() {
        let (g, _) =
            graph(&[("a.rs", "fn outer() { fn inner() { target(); } inner(); }\nfn target() {}")]);
        let outer = g.defs.iter().position(|d| d.name == "outer").unwrap();
        let inner = g.defs.iter().position(|d| d.name == "inner").unwrap();
        let target = g.defs.iter().position(|d| d.name == "target").unwrap();
        assert_eq!(g.calls_from[inner].iter().map(|e| e.callee).collect::<Vec<_>>(), vec![target]);
        assert_eq!(g.calls_from[outer].iter().map(|e| e.callee).collect::<Vec<_>>(), vec![inner]);
    }

    #[test]
    fn taint_propagates_with_renderable_chain() {
        let files = [
            ("crates/protocols/src/x.rs", "fn top() { mid(); }\nfn mid() { deep_panics(); }"),
            ("crates/core/src/y.rs", "pub fn deep_panics() { oops() }"),
        ];
        let (g, prepared) = graph(&files);
        let refs: Vec<(&str, &str)> =
            prepared.iter().map(|(p, s)| (p.as_str(), s.as_str())).collect();
        let deep = g.defs.iter().position(|d| d.name == "deep_panics").unwrap();
        let mut direct = vec![None; g.defs.len()];
        direct[deep] =
            Some(Reason::Direct { what: "`panic!`".into(), offset: g.defs[deep].body.0 });
        let reasons = g.propagate(direct);
        let top = g.defs.iter().position(|d| d.name == "top").unwrap();
        assert!(reasons[top].is_some(), "taint must reach the transitive caller");
        let chain = g.render_chain(&reasons, &refs, top);
        assert!(chain.contains("`top` -> `mid` -> `deep_panics`"), "{chain}");
        assert!(chain.contains("crates/core/src/y.rs:1"), "{chain}");
    }

    #[test]
    fn turbofish_calls_are_sites() {
        let (g, _) = graph(&[("a.rs", "fn f() { parse::<u32>(s); }\nfn parse(s: &str) {}")]);
        let f = g.defs.iter().position(|d| d.name == "f").unwrap();
        assert_eq!(g.calls_from[f].len(), 1);
    }

    #[test]
    fn reachability_walks_edges() {
        let (g, _) = graph(&[(
            "a.rs",
            "fn run() { step(); }\nfn step() { leaf(); }\nfn leaf() {}\nfn unrelated() {}",
        )]);
        let run = g.defs.iter().position(|d| d.name == "run").unwrap();
        let set = g.reachable_from(&[run]);
        assert_eq!(set.len(), 3);
        let unrelated = g.defs.iter().position(|d| d.name == "unrelated").unwrap();
        assert!(!set.contains(&unrelated));
    }
}
