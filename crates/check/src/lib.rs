//! `sdso-check`: the S-DSO workspace's own static analysis and model
//! checking layer.
//!
//! Three engines (see `ARCHITECTURE.md` §6 and §11):
//!
//! * **lint** — a deny-by-default static pass over workspace source
//!   enforcing invariants the compiler cannot see: no panics on protocol
//!   paths, no wall-clock/OS-entropy in deterministic code, declared
//!   lock-acquisition order, exhaustive matches over wire enums, audited
//!   `unsafe`/FFI, fd ownership, and no blocking calls on the reactor
//!   event path. Scoped rules run twice: per-file, then again over a
//!   name-resolved workspace call graph (`callgraph`) so a violation
//!   reached *through* a helper in another crate is reported at the
//!   point where scoped code calls out.
//! * **explore** — a bounded systematic interleaving checker: protocol
//!   scenarios run under the virtual-time scheduler's delivery-choice
//!   oracle while a DFS enumerates message-delivery orders and asserts
//!   protocol invariants after every schedule.
//! * **race** — a vector-clock happens-before checker (`race`) replayed
//!   over `sdso-obs` flight-recorder event logs: send/recv, lock, and
//!   thread spawn/join events build the partial order, and any pair of
//!   conflicting object accesses not ordered by it is reported as a
//!   race, with both access sites.
//!
//! The workspace builds fully offline, so the lint is built on a small
//! purpose-made cleaner/scanner (`lexer`) rather than `syn`.

#![warn(missing_docs)]

pub mod allowlist;
pub mod callgraph;
pub mod diag;
pub mod lexer;
pub mod lint;
pub mod race;
pub mod rules;
pub mod scenarios;

pub use diag::Diagnostic;
pub use lint::{run as run_lint, LintReport};
