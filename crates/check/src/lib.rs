//! `sdso-check`: the S-DSO workspace's own static analysis and model
//! checking layer.
//!
//! Two engines (see `ARCHITECTURE.md` §6):
//!
//! * **lint** — a deny-by-default static pass over workspace source
//!   enforcing invariants the compiler cannot see: no panics on protocol
//!   paths, no wall-clock/OS-entropy in deterministic code, declared
//!   lock-acquisition order, and exhaustive matches over wire enums.
//! * **explore** — a bounded systematic interleaving checker: protocol
//!   scenarios run under the virtual-time scheduler's delivery-choice
//!   oracle while a DFS enumerates message-delivery orders and asserts
//!   protocol invariants after every schedule.
//!
//! The workspace builds fully offline, so the lint is built on a small
//! purpose-made cleaner/scanner (`lexer`) rather than `syn`.

#![warn(missing_docs)]

pub mod allowlist;
pub mod diag;
pub mod lexer;
pub mod lint;
pub mod rules;
pub mod scenarios;

pub use diag::Diagnostic;
pub use lint::{run as run_lint, LintReport};
