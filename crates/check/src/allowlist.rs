//! Per-rule allowlists, with rot detection.
//!
//! Each rule `R` reads `allowlists/R.allow` (relative to the check crate,
//! overridable with `--allow-dir`). An entry is one line:
//!
//! ```text
//! # comment
//! crates/net/src/tcp.rs                  # whole file
//! crates/net/src/tcp.rs: spawn_reader(   # only lines containing the needle
//! ```
//!
//! A diagnostic is suppressed when its path ends with the entry's path and,
//! if a needle is given, the offending source line contains the needle.
//! Additionally, the inline marker `sdso-check: allow(R)` in a comment on
//! the offending line suppresses rule `R` for that line only.
//!
//! Every file entry counts its hits during a run. An entry that suppressed
//! nothing is **rot** — the code it excused has been fixed or moved, and a
//! stale entry is a standing invitation to reintroduce the bug silently —
//! so the driver turns unused entries into [`STALE_RULE`] diagnostics.

use std::cell::Cell;
use std::collections::HashMap;
use std::path::Path;

use crate::diag::Diagnostic;

/// Rule identifier for unused-allowlist-entry findings.
pub const STALE_RULE: &str = "stale-allow";

/// One suppression entry.
#[derive(Debug, Clone)]
struct Entry {
    path: String,
    needle: Option<String>,
    /// The allowlist file this entry came from (as given on disk).
    source: String,
    /// 1-based line within that file.
    line: usize,
    /// The entry text verbatim, for reports.
    raw: String,
    /// Diagnostics suppressed by this entry during the current run.
    hits: Cell<u32>,
}

/// One entry's usage after a run, for `--list-allows`.
#[derive(Debug)]
pub struct AllowUse {
    /// Rule the entry belongs to.
    pub rule: String,
    /// `file:line` of the entry.
    pub location: String,
    /// The entry text verbatim.
    pub entry: String,
    /// Diagnostics it suppressed.
    pub hits: u32,
}

/// All loaded allowlists, keyed by rule name.
#[derive(Debug, Default)]
pub struct Allowlists {
    by_rule: HashMap<String, Vec<Entry>>,
}

impl Allowlists {
    /// Loads `<dir>/<rule>.allow` for every file present in `dir`.
    /// A missing or unreadable directory yields an empty set.
    pub fn load(dir: &Path) -> Self {
        let mut by_rule = HashMap::new();
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Allowlists { by_rule };
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(rule) =
                path.file_name().and_then(|n| n.to_str()).and_then(|n| n.strip_suffix(".allow"))
            else {
                continue;
            };
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            by_rule.insert(rule.to_owned(), parse(&text, &path.display().to_string()));
        }
        Allowlists { by_rule }
    }

    /// True if the `(rule, path, line_text)` triple is suppressed. File
    /// entries that match have their hit counter bumped.
    pub fn allows(&self, rule: &str, path: &str, line_text: &str) -> bool {
        if inline_marker(line_text, rule) {
            return true;
        }
        let Some(entries) = self.by_rule.get(rule) else {
            return false;
        };
        let mut hit = false;
        for e in entries {
            if path.ends_with(&e.path)
                && e.needle.as_ref().is_none_or(|n| line_text.contains(n.as_str()))
            {
                e.hits.set(e.hits.get() + 1);
                hit = true;
            }
        }
        hit
    }

    /// Every entry with its hit count, sorted by rule then source line.
    pub fn usage(&self) -> Vec<AllowUse> {
        let mut out: Vec<AllowUse> = Vec::new();
        let mut rules: Vec<&String> = self.by_rule.keys().collect();
        rules.sort();
        for rule in rules {
            for e in &self.by_rule[rule] {
                out.push(AllowUse {
                    rule: rule.clone(),
                    location: format!("{}:{}", e.source, e.line),
                    entry: e.raw.clone(),
                    hits: e.hits.get(),
                });
            }
        }
        out
    }

    /// One [`STALE_RULE`] diagnostic per entry that suppressed nothing.
    /// Call after the lint pass has filtered every diagnostic.
    pub fn stale_diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let mut rules: Vec<&String> = self.by_rule.keys().collect();
        rules.sort();
        for rule in rules {
            for e in &self.by_rule[rule] {
                if e.hits.get() == 0 {
                    out.push(Diagnostic {
                        rule: STALE_RULE,
                        path: e.source.clone(),
                        line: e.line,
                        message: format!(
                            "allowlist entry for `{rule}` no longer suppresses anything; \
                             the excused code was fixed or moved — delete the entry"
                        ),
                        snippet: e.raw.clone(),
                    });
                }
            }
        }
        out
    }
}

fn parse(text: &str, source: &str) -> Vec<Entry> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .map(|(line, l)| {
            // `path: needle` — split on the first `: ` (plain `:` would
            // collide with `::` in needles and drive letters never occur).
            let (path, needle) = match l.split_once(": ") {
                Some((p, n)) => (p.trim().to_owned(), Some(n.trim().to_owned())),
                None => (l.to_owned(), None),
            };
            Entry {
                path,
                needle,
                source: source.to_owned(),
                line,
                raw: l.to_owned(),
                hits: Cell::new(0),
            }
        })
        .collect()
}

fn inline_marker(line_text: &str, rule: &str) -> bool {
    line_text
        .find("sdso-check: allow(")
        .map(|at| {
            let rest = &line_text[at + "sdso-check: allow(".len()..];
            rest.split(')')
                .next()
                .is_some_and(|inner| inner.split(',').map(str::trim).any(|r| r == rule))
        })
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lists(rule: &str, body: &str) -> Allowlists {
        let mut by_rule = HashMap::new();
        by_rule.insert(rule.to_owned(), parse(body, "test.allow"));
        Allowlists { by_rule }
    }

    #[test]
    fn whole_file_entry_suppresses() {
        let a = lists("no-panic", "crates/net/src/tcp.rs\n# comment\n");
        assert!(a.allows("no-panic", "crates/net/src/tcp.rs", "x.unwrap()"));
        assert!(!a.allows("no-panic", "crates/net/src/memory.rs", "x.unwrap()"));
        assert!(!a.allows("wall-clock", "crates/net/src/tcp.rs", "x"));
    }

    #[test]
    fn needle_entry_matches_line_content() {
        let a = lists("no-panic", "crates/net/src/tcp.rs: spawn thread\n");
        assert!(a.allows("no-panic", "crates/net/src/tcp.rs", "x.expect(\"spawn thread\")"));
        assert!(!a.allows("no-panic", "crates/net/src/tcp.rs", "x.unwrap()"));
    }

    #[test]
    fn inline_marker_suppresses_one_rule() {
        let a = Allowlists::default();
        let line = "let t = Instant::now(); // sdso-check: allow(wall-clock)";
        assert!(a.allows("wall-clock", "any.rs", line));
        assert!(!a.allows("no-panic", "any.rs", line));
    }

    #[test]
    fn unused_entries_become_stale_diagnostics() {
        let a =
            lists("no-panic", "# header\ncrates/net/src/tcp.rs: spawn\ncrates/net/src/gone.rs\n");
        a.allows("no-panic", "crates/net/src/tcp.rs", "x.expect(\"spawn\")");
        let stale = a.stale_diagnostics();
        assert_eq!(stale.len(), 1, "{stale:?}");
        assert_eq!(stale[0].rule, STALE_RULE);
        assert_eq!(stale[0].line, 3);
        assert!(stale[0].snippet.contains("gone.rs"));
    }

    #[test]
    fn usage_reports_hit_counts_per_entry() {
        let a = lists("no-panic", "a.rs\nb.rs\n");
        a.allows("no-panic", "crates/x/a.rs", "x.unwrap()");
        a.allows("no-panic", "crates/y/a.rs", "y.unwrap()");
        let usage = a.usage();
        assert_eq!(usage.len(), 2);
        assert_eq!(usage[0].hits, 2);
        assert_eq!(usage[1].hits, 0);
        assert_eq!(usage[0].location, "test.allow:1");
    }

    #[test]
    fn inline_marker_does_not_count_as_an_entry_hit() {
        let a = lists("wall-clock", "never.rs\n");
        assert!(a.allows("wall-clock", "x.rs", "t(); // sdso-check: allow(wall-clock)"));
        assert_eq!(a.stale_diagnostics().len(), 1);
    }
}
