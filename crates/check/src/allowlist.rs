//! Per-rule allowlists.
//!
//! Each rule `R` reads `allowlists/R.allow` (relative to the check crate,
//! overridable with `--allow-dir`). An entry is one line:
//!
//! ```text
//! # comment
//! crates/net/src/tcp.rs                  # whole file
//! crates/net/src/tcp.rs: spawn_reader(   # only lines containing the needle
//! ```
//!
//! A diagnostic is suppressed when its path ends with the entry's path and,
//! if a needle is given, the offending source line contains the needle.
//! Additionally, the inline marker `sdso-check: allow(R)` in a comment on
//! the offending line suppresses rule `R` for that line only.

use std::collections::HashMap;
use std::path::Path;

/// One suppression entry.
#[derive(Debug, Clone)]
struct Entry {
    path: String,
    needle: Option<String>,
}

/// All loaded allowlists, keyed by rule name.
#[derive(Debug, Default)]
pub struct Allowlists {
    by_rule: HashMap<String, Vec<Entry>>,
}

impl Allowlists {
    /// Loads `<dir>/<rule>.allow` for every file present in `dir`.
    /// A missing or unreadable directory yields an empty set.
    pub fn load(dir: &Path) -> Self {
        let mut by_rule = HashMap::new();
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Allowlists { by_rule };
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(rule) =
                path.file_name().and_then(|n| n.to_str()).and_then(|n| n.strip_suffix(".allow"))
            else {
                continue;
            };
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            by_rule.insert(rule.to_owned(), parse(&text));
        }
        Allowlists { by_rule }
    }

    /// True if the `(rule, path, line_text)` triple is suppressed.
    pub fn allows(&self, rule: &str, path: &str, line_text: &str) -> bool {
        if inline_marker(line_text, rule) {
            return true;
        }
        let Some(entries) = self.by_rule.get(rule) else {
            return false;
        };
        entries.iter().any(|e| {
            path.ends_with(&e.path)
                && e.needle.as_ref().is_none_or(|n| line_text.contains(n.as_str()))
        })
    }
}

fn parse(text: &str) -> Vec<Entry> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            // `path: needle` — split on the first `: ` (plain `:` would
            // collide with `::` in needles and drive letters never occur).
            match l.split_once(": ") {
                Some((p, n)) => {
                    Entry { path: p.trim().to_owned(), needle: Some(n.trim().to_owned()) }
                }
                None => Entry { path: l.to_owned(), needle: None },
            }
        })
        .collect()
}

fn inline_marker(line_text: &str, rule: &str) -> bool {
    line_text
        .find("sdso-check: allow(")
        .map(|at| {
            let rest = &line_text[at + "sdso-check: allow(".len()..];
            rest.split(')')
                .next()
                .is_some_and(|inner| inner.split(',').map(str::trim).any(|r| r == rule))
        })
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lists(rule: &str, body: &str) -> Allowlists {
        let mut by_rule = HashMap::new();
        by_rule.insert(rule.to_owned(), parse(body));
        Allowlists { by_rule }
    }

    #[test]
    fn whole_file_entry_suppresses() {
        let a = lists("no-panic", "crates/net/src/tcp.rs\n# comment\n");
        assert!(a.allows("no-panic", "crates/net/src/tcp.rs", "x.unwrap()"));
        assert!(!a.allows("no-panic", "crates/net/src/memory.rs", "x.unwrap()"));
        assert!(!a.allows("wall-clock", "crates/net/src/tcp.rs", "x"));
    }

    #[test]
    fn needle_entry_matches_line_content() {
        let a = lists("no-panic", "crates/net/src/tcp.rs: spawn thread\n");
        assert!(a.allows("no-panic", "crates/net/src/tcp.rs", "x.expect(\"spawn thread\")"));
        assert!(!a.allows("no-panic", "crates/net/src/tcp.rs", "x.unwrap()"));
    }

    #[test]
    fn inline_marker_suppresses_one_rule() {
        let a = Allowlists::default();
        let line = "let t = Instant::now(); // sdso-check: allow(wall-clock)";
        assert!(a.allows("wall-clock", "any.rs", line));
        assert!(!a.allows("no-panic", "any.rs", line));
    }
}
