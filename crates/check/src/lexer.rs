//! Source preparation for the lint rules.
//!
//! The workspace is built fully offline with an empty registry cache, so a
//! `syn`-based pass is not an option. Instead the rules operate on a
//! *cleaned* copy of each file: comments and the contents of string/char
//! literals are blanked out (newlines kept), and `#[cfg(test)]` modules are
//! erased. On the cleaned text, substring and brace-depth reasoning is
//! sound: every brace, paren, and identifier that remains is real code.

/// Returns `src` with comments and literal contents replaced by spaces.
///
/// Line structure is preserved exactly: byte offsets of newlines are
/// unchanged, so a line number computed on the cleaned text maps directly
/// back to the original file.
pub fn clean_source(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // Line comment (also covers doc comments).
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
            continue;
        }
        // Block comment, possibly nested.
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"...", r#"..."#, br"...", with any # count.
        if (c == b'r' || c == b'b') && !prev_is_ident(b, i) {
            if let Some((hashes, body_start)) = raw_string_open(b, i) {
                // Blank the prefix and opening quote.
                out.extend(std::iter::repeat_n(b' ', body_start - i));
                i = body_start;
                let close: Vec<u8> =
                    std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
                while i < b.len() {
                    if b[i..].starts_with(&close) {
                        out.extend(std::iter::repeat_n(b' ', close.len()));
                        i += close.len();
                        break;
                    }
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
                continue;
            }
        }
        // Plain (byte) string.
        if c == b'"' {
            out.push(b'"');
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b[i] == b'"' {
                    out.push(b'"');
                    i += 1;
                    break;
                } else {
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if let Some(end) = char_literal_end(b, i) {
                out.push(b'\'');
                out.extend(std::iter::repeat_n(b' ', end - (i + 1)));
                out.push(b'\'');
                i = end + 1;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    // The input was valid UTF-8 and multi-byte characters are either copied
    // verbatim or replaced byte-for-byte with spaces only inside literals
    // and comments, where whole characters are consumed.
    String::from_utf8(out).unwrap_or_default()
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// If `b[i..]` opens a raw string (`r`/`br`/`rb` + hashes + quote), returns
/// `(hash_count, index of first body byte)`.
fn raw_string_open(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    // Up to two prefix letters from {r, b}, containing at least one 'r'.
    let mut saw_r = false;
    for _ in 0..2 {
        match b.get(j) {
            Some(b'r') => {
                saw_r = true;
                j += 1;
            }
            Some(b'b') => j += 1,
            _ => break,
        }
    }
    if !saw_r {
        return None;
    }
    let mut hashes = 0;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) == Some(&b'"') {
        Some((hashes, j + 1))
    } else {
        None
    }
}

/// If `b[i] == '\''` begins a char literal, returns the index of its
/// closing quote; returns `None` for lifetimes.
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    let next = *b.get(i + 1)?;
    if next == b'\\' {
        // Escape: scan to the terminating quote.
        let mut j = i + 2;
        while j < b.len() {
            if b[j] == b'\\' {
                j += 2;
            } else if b[j] == b'\'' {
                return Some(j);
            } else {
                j += 1;
            }
        }
        return None;
    }
    // 'x' (one char, possibly multi-byte, then a closing quote) is a char
    // literal; anything else — 'a in generics, 'static — is a lifetime.
    let char_len = match next {
        x if x < 0x80 => 1,
        x if x >= 0xF0 => 4,
        x if x >= 0xE0 => 3,
        _ => 2,
    };
    if b.get(i + 1 + char_len) == Some(&b'\'') {
        Some(i + 1 + char_len)
    } else {
        None
    }
}

/// Blanks every `#[cfg(test)] mod … { … }` block in the cleaned text.
///
/// The lint rules govern non-test code only; tests are free to `unwrap`.
pub fn strip_test_modules(clean: &str) -> String {
    let b = clean.as_bytes();
    let mut out = clean.as_bytes().to_vec();
    let needle = b"#[cfg(test)]";
    let mut i = 0;
    while i + needle.len() <= b.len() {
        if &b[i..i + needle.len()] != needle.as_slice() {
            i += 1;
            continue;
        }
        // Skip whitespace and further attributes, expecting `mod`.
        let mut j = i + needle.len();
        loop {
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if b.get(j) == Some(&b'#') && b.get(j + 1) == Some(&b'[') {
                let mut depth = 0usize;
                while j < b.len() {
                    match b[j] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                continue;
            }
            break;
        }
        if !b[j..].starts_with(b"mod") {
            i += needle.len();
            continue;
        }
        // Find the module's opening brace and blank through its close.
        while j < b.len() && b[j] != b'{' && b[j] != b';' {
            j += 1;
        }
        if b.get(j) == Some(&b';') {
            i = j; // `mod name;` — nothing inline to strip
            continue;
        }
        let mut depth = 0usize;
        let mut k = j;
        while k < b.len() {
            match b[k] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        for x in out.iter_mut().take(k).skip(i) {
            if *x != b'\n' {
                *x = b' ';
            }
        }
        i = k;
    }
    String::from_utf8(out).unwrap_or_default()
}

/// 1-based line number of byte `offset` in `text`.
pub fn line_of(text: &str, offset: usize) -> usize {
    1 + text.as_bytes()[..offset.min(text.len())].iter().filter(|&&c| c == b'\n').count()
}

/// Finds occurrences of `pat` in `clean` that start at an identifier
/// boundary. The preceding-byte check only applies when the pattern itself
/// begins with an identifier character — a pattern like `.unwrap()` is
/// *expected* to follow an identifier (`x.unwrap()`).
pub fn find_bounded(clean: &str, pat: &str) -> Vec<usize> {
    let leading_ident =
        pat.as_bytes().first().is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_');
    let mut hits = Vec::new();
    let mut start = 0;
    while let Some(p) = clean[start..].find(pat) {
        let at = start + p;
        if !(leading_ident && prev_is_ident(clean.as_bytes(), at)) {
            hits.push(at);
        }
        start = at + 1;
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"panic!()\"; // panic!()\nlet y = 1; /* unwrap() */";
        let c = clean_source(src);
        assert!(!c.contains("panic"));
        assert!(!c.contains("unwrap"));
        assert_eq!(c.len(), src.len());
        assert!(c.contains("let y = 1;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = r##"let s = r#"unwrap() } { "#; let t = 2;"##;
        let c = clean_source(src);
        assert!(!c.contains("unwrap"));
        assert!(!c.contains('}'), "braces inside raw strings must vanish");
        assert!(c.contains("let t = 2;"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) { let c = '\\''; let d = '}'; }";
        let c = clean_source(src);
        assert!(c.contains("<'a>"));
        assert!(c.contains("&'a str"));
        // The literal close-brace is blanked; the code braces survive.
        assert_eq!(c.matches('}').count(), 1);
    }

    #[test]
    fn cfg_test_mod_is_stripped() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn tail() {}";
        let c = strip_test_modules(&clean_source(src));
        assert!(!c.contains("unwrap"));
        assert!(c.contains("fn live"));
        assert!(c.contains("fn tail"));
        assert_eq!(c.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn bounded_find_skips_identifier_tails() {
        let c = "SimInstant::now(); Instant::now();";
        let hits = find_bounded(c, "Instant::now");
        assert_eq!(hits.len(), 1);
        assert_eq!(line_of(c, hits[0]), 1);
    }
}
