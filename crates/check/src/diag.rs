//! Diagnostics and the machine-readable JSON report.

use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (`no-panic`, `wall-clock`, `lock-order`,
    /// `exhaustive-match`).
    pub rule: &'static str,
    /// Root-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)?;
        if !self.snippet.is_empty() {
            write!(f, "\n    | {}", self.snippet)?;
        }
        Ok(())
    }
}

/// Renders diagnostics as a JSON report (hand-rolled: the workspace builds
/// offline with no serde).
pub fn to_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"version\": 1,\n");
    s.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    s.push_str(&format!("  \"violations\": {},\n", diags.len()));
    s.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    {");
        s.push_str(&format!("\"rule\": \"{}\", ", escape(d.rule)));
        s.push_str(&format!("\"path\": \"{}\", ", escape(&d.path)));
        s.push_str(&format!("\"line\": {}, ", d.line));
        s.push_str(&format!("\"message\": \"{}\", ", escape(&d.message)));
        s.push_str(&format!("\"snippet\": \"{}\"", escape(&d.snippet)));
        s.push('}');
    }
    if !diags.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_is_well_formed() {
        let diags = vec![Diagnostic {
            rule: "no-panic",
            path: "crates/core/src/runtime.rs".into(),
            line: 42,
            message: "`.unwrap()` in non-test code".into(),
            snippet: "let x = y.unwrap(); // \"quoted\"".into(),
        }];
        let json = to_json(&diags, 7);
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\"files_scanned\": 7"));
        assert!(json.contains("\\\"quoted\\\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn display_includes_location_and_rule() {
        let d = Diagnostic {
            rule: "wall-clock",
            path: "crates/sim/src/x.rs".into(),
            line: 3,
            message: "m".into(),
            snippet: String::new(),
        };
        assert_eq!(d.to_string(), "crates/sim/src/x.rs:3: [wall-clock] m");
    }
}
