//! `sdso-check` CLI: the workspace's lint pass and schedule explorer.
//!
//! ```text
//! sdso-check lint    [--root DIR] [--allow-dir DIR] [--json PATH|-]
//!                    [--list-allows]
//! sdso-check explore [--protocol NAME|all] [--depth N] [--max-runs N]
//!                    [--min-distinct N]
//! sdso-check replay  --protocol NAME [--schedule N,N,...]
//! sdso-check race    TRACE.json [TRACE.json ...]
//! ```
//!
//! Exit codes: 0 clean, 1 findings or violated invariants, 2 usage error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use sdso_check::scenarios::{self, Protocol};
use sdso_sim::{Explorer, ReplayOracle, Schedule};

const USAGE: &str = "\
usage:
  sdso-check lint    [--root DIR] [--allow-dir DIR] [--json PATH|-] [--list-allows]
  sdso-check explore [--protocol NAME|all] [--depth N] [--max-runs N] [--min-distinct N]
  sdso-check replay  --protocol NAME [--schedule N,N,...]
  sdso-check race    TRACE.json [TRACE.json ...]

protocols: bsync msync msync2 ec churn churn-ec crash-churn (explore default: all)
explore defaults: --depth 12 --max-runs 600 --min-distinct 0
race: TRACE.json is an event log exported by sdso-obs (ObsSet::event_log)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let verdict = match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("explore") => explore(&args[1..]),
        Some("replay") => replay(&args[1..]),
        Some("race") => race(&args[1..]),
        Some("--help" | "-h") | None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match verdict {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("sdso-check: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Pulls the value of `--flag VALUE` out of `args`, if present.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    let Some(at) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    args.get(at + 1).cloned().map(Some).ok_or_else(|| format!("{flag} needs a value"))
}

/// Rejects any `--flag` not in `known`.
fn reject_unknown(args: &[String], known: &[&str]) -> Result<(), String> {
    for (i, a) in args.iter().enumerate() {
        if a.starts_with("--") && !known.contains(&a.as_str()) {
            return Err(format!("unknown flag `{a}`\n{USAGE}"));
        }
        if a.starts_with("--") && args.get(i + 1).is_none() {
            return Err(format!("{a} needs a value"));
        }
    }
    Ok(())
}

fn parse_num(args: &[String], flag: &str, default: usize) -> Result<usize, String> {
    match flag_value(args, flag)? {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("{flag} expects a number, got `{v}`")),
    }
}

fn lint(args: &[String]) -> Result<bool, String> {
    // `--list-allows` is valueless; strip it before flag parsing.
    let list_allows = args.iter().any(|a| a == "--list-allows");
    let args: Vec<String> = args.iter().filter(|a| *a != "--list-allows").cloned().collect();
    let args = args.as_slice();
    reject_unknown(args, &["--root", "--allow-dir", "--json"])?;
    let root = PathBuf::from(flag_value(args, "--root")?.unwrap_or_else(|| ".".into()));
    let allow_dir = flag_value(args, "--allow-dir")?.map(PathBuf::from);
    let report = sdso_check::run_lint(&root, allow_dir.as_deref())?;
    for d in &report.diagnostics {
        println!("{d}");
    }
    if list_allows {
        println!("allowlist entries ({}):", report.allow_usage.len());
        for u in &report.allow_usage {
            println!("  [{}] {} hit(s)  {}  ({})", u.rule, u.hits, u.entry, u.location);
        }
    }
    if let Some(path) = flag_value(args, "--json")? {
        let json = sdso_check::diag::to_json(&report.diagnostics, report.files_scanned);
        if path == "-" {
            println!("{json}");
        } else {
            std::fs::write(&path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    println!(
        "sdso-check lint: {} violation(s) in {} file(s) scanned",
        report.diagnostics.len(),
        report.files_scanned
    );
    Ok(report.diagnostics.is_empty())
}

fn explore(args: &[String]) -> Result<bool, String> {
    reject_unknown(args, &["--protocol", "--depth", "--max-runs", "--min-distinct"])?;
    let protocols = match flag_value(args, "--protocol")?.as_deref() {
        None | Some("all") => Protocol::ALL.to_vec(),
        Some(name) => {
            vec![Protocol::from_name(name).ok_or_else(|| format!("unknown protocol `{name}`"))?]
        }
    };
    let depth = parse_num(args, "--depth", 12)?;
    let max_runs = parse_num(args, "--max-runs", 600)?;
    let min_distinct = parse_num(args, "--min-distinct", 0)?;
    let explorer = Explorer::new(depth, max_runs);
    let mut ok = true;
    for protocol in protocols {
        let report = explorer.explore(scenarios::scenario(protocol));
        let status = match &report.violation {
            Some(_) => "VIOLATION",
            None if report.distinct < min_distinct => "TOO FEW",
            None => "ok",
        };
        println!(
            "explore {:7} depth={depth} runs={} distinct={} max_choice_points={}{} .. {status}",
            protocol.name(),
            report.runs,
            report.distinct,
            report.max_choice_points,
            if report.truncated { " (truncated)" } else { "" },
        );
        if let Some(v) = &report.violation {
            ok = false;
            println!("  invariant violated: {}", v.message);
            println!(
                "  minimized schedule: [{}]  (replay with: sdso-check replay --protocol {} \
                 --schedule {})",
                render(&v.schedule),
                protocol.name(),
                if v.schedule.is_empty() { "0".to_owned() } else { render(&v.schedule) },
            );
        } else if report.distinct < min_distinct {
            ok = false;
            println!(
                "  coverage too small: {} distinct schedules < required {min_distinct}; \
                 raise --depth/--max-runs or extend the scenario",
                report.distinct
            );
        }
    }
    Ok(ok)
}

fn replay(args: &[String]) -> Result<bool, String> {
    reject_unknown(args, &["--protocol", "--schedule"])?;
    let name = flag_value(args, "--protocol")?.ok_or("replay needs --protocol")?;
    let protocol =
        Protocol::from_name(&name).ok_or_else(|| format!("unknown protocol `{name}`"))?;
    let schedule: Schedule = match flag_value(args, "--schedule")? {
        None => Vec::new(),
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse().map_err(|_| format!("bad schedule entry `{s}`")))
            .collect::<Result<_, _>>()?,
    };
    let oracle = Arc::new(ReplayOracle::new(schedule.clone()));
    match scenarios::run_once(protocol, oracle) {
        Ok(()) => {
            println!("replay {} [{}]: invariants hold", protocol.name(), render(&schedule));
            Ok(true)
        }
        Err(message) => {
            println!("replay {} [{}]: {message}", protocol.name(), render(&schedule));
            Ok(false)
        }
    }
}

fn race(args: &[String]) -> Result<bool, String> {
    if args.is_empty() || args.iter().any(|a| a.starts_with("--")) {
        return Err(format!("race takes trace file paths only\n{USAGE}"));
    }
    let mut clean = true;
    for path in args {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let streams = sdso_check::race::parse_event_log(&text)
            .map_err(|e| format!("{path}: malformed event log: {e}"))?;
        let report = sdso_check::race::analyze(&streams);
        for r in &report.races {
            println!("{path}: {r}");
        }
        println!(
            "race {path}: {} race(s), {} node(s), {} event(s), {} unmatched sync, {} dropped",
            report.races.len(),
            report.nodes,
            report.events,
            report.unmatched,
            report.dropped
        );
        clean &= report.races.is_empty();
    }
    Ok(clean)
}

fn render(schedule: &[usize]) -> String {
    schedule.iter().map(ToString::to_string).collect::<Vec<_>>().join(",")
}
