//! Explorer scenarios: small 3-node protocol workloads whose invariants
//! are asserted after every explored delivery schedule.
//!
//! Each scenario builds a [`SimCluster`] with the explorer's
//! [`ReplayOracle`] installed, runs a short protocol workload, and checks:
//!
//! * **convergence** — all replicas byte-identical at the end of the run;
//! * **final values** — each single-writer object holds its writer's last
//!   write (an update applied out of slotted-buffer order, or dropped,
//!   would leave a stale byte); for EC, the shared counter equals the
//!   total number of lock-protected increments (mutual exclusion plus
//!   writer-push visibility: a lost update shows up as a smaller count);
//! * **logical-clock monotonicity** — every node's per-exchange times are
//!   strictly increasing;
//! * **progress** — no schedule may deadlock a node (a `Deadlock` error
//!   from the scheduler is itself a violation).
//!
//! The churn scenarios add dynamic membership on top: their **first**
//! choice point is synthetic — it selects the view-change trigger tick —
//! so the explorer enumerates join/leave timings crossed with delivery
//! orders. Their extra invariants: every final-view member converges, the
//! leaver's tombstone write survives the epoch turn, the joiner's writes
//! reach everyone, and under EC no lock grant or counter increment is
//! lost across the view change (a stuck view-change barrier surfaces as a
//! scheduler deadlock, which is a violation like any other).

use std::collections::BTreeSet;
use std::sync::Arc;

use sdso_core::{
    DsoConfig, DsoError, EveryTick, LogicalTime, MembershipPlan, Never, ObjectId, ObjectStore,
    SdsoRuntime, SendMode, ViewChange,
};
use sdso_dur::{DurRecord, DurStore};
use sdso_net::{Endpoint, NetError, NodeId};
use sdso_protocols::{EntryConsistency, LockRequest, Lookahead};
use sdso_sim::{Candidate, DeliveryOracle, NetworkModel, ReplayOracle, SimCluster, SimEndpoint};

/// Every scenario runs this many nodes — enough for three-way delivery
/// races and a distance-2 pair for MSYNC2, small enough to keep a single
/// schedule under a millisecond.
pub const NODES: usize = 3;

/// Lock/increment/unlock rounds per node in the EC scenario.
pub const EC_ITERS: u8 = 4;

/// Capacity slots in the churn scenarios: three initial members plus one
/// planned joiner.
pub const CHURN_CAPACITY: usize = 4;

/// Game ticks (or EC rounds) a churn scenario runs for.
pub const CHURN_TICKS: u64 = 6;

/// Trigger ticks the synthetic first choice point selects between.
pub const CHURN_TRIGGERS: [u64; 3] = [2, 3, 4];

/// The member that leaves at the trigger tick.
const CHURN_LEAVER: NodeId = 1;

/// The member that joins at the trigger tick.
const CHURN_JOINER: NodeId = 3;

/// The leaver's final write — distinguishable from any tick number.
const CHURN_TOMBSTONE: u8 = 0xEE;

/// Ticks the crash-churn scenario runs for — long enough for a join, a
/// crash, a WAL-backed rejoin, and a tail of live play.
pub const CRASH_TICKS: u64 = 8;

/// Crash ticks the synthetic first choice point selects between (offset
/// past the churn join at tick 2, with room for the restart).
pub const CRASH_TRIGGERS: [u64; 2] = [3, 4];

/// Ticks between a crash and its restart — the window during which the
/// dead host is partitioned from the group (survivor traffic towards it
/// queues as crash-era residue the restart must digest, not deliver).
const CRASH_RESTART_GAP: u64 = 2;

/// The member that crashes and recovers from its WAL.
const CRASHER: NodeId = 1;

/// The protocol workload a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Barrier-synchronous: every pair rendezvouses every tick.
    Bsync,
    /// MSYNC stand-in: every pair rendezvouses every 2 ticks.
    Msync,
    /// MSYNC2 stand-in: ring neighbours every 2 ticks, the distance-2
    /// pair every 4 — distinct per-pair s-functions.
    Msync2,
    /// Entry consistency: a shared counter incremented under write locks.
    Ec,
    /// Dynamic membership over the lookahead family: one member leaves and
    /// one joins at an oracle-chosen trigger tick.
    Churn,
    /// Dynamic membership under EC: lock-protected counters incremented
    /// across a view change.
    ChurnEc,
    /// Crash faults on top of churn: a member joins mid-run, another
    /// fail-stops at an oracle-chosen tick (its host partitioned from the
    /// group while down) and rejoins from its WAL with pre-crash state.
    CrashChurn,
}

impl Protocol {
    /// All scenarios, in CLI order.
    pub const ALL: [Protocol; 7] = [
        Protocol::Bsync,
        Protocol::Msync,
        Protocol::Msync2,
        Protocol::Ec,
        Protocol::Churn,
        Protocol::ChurnEc,
        Protocol::CrashChurn,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Bsync => "bsync",
            Protocol::Msync => "msync",
            Protocol::Msync2 => "msync2",
            Protocol::Ec => "ec",
            Protocol::Churn => "churn",
            Protocol::ChurnEc => "churn-ec",
            Protocol::CrashChurn => "crash-churn",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(s: &str) -> Option<Protocol> {
        Protocol::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Ticks the lookahead scenarios run for (the last tick is chosen so
    /// every pair's s-function is due, forcing full convergence).
    fn ticks(self) -> u8 {
        match self {
            Protocol::Bsync => 3,
            Protocol::Msync => 8,
            Protocol::Msync2 => 12,
            Protocol::Ec | Protocol::Churn | Protocol::ChurnEc | Protocol::CrashChurn => 0,
        }
    }
}

/// What one node reports back: per-step exchange times and a final
/// snapshot of every replica.
#[derive(Debug, PartialEq, Eq)]
struct NodeSnap {
    times: Vec<LogicalTime>,
    objects: Vec<(u32, Vec<u8>)>,
}

/// Adapts a protocol to the `Explorer`'s scenario signature.
pub fn scenario(protocol: Protocol) -> impl FnMut(Arc<ReplayOracle>) -> Result<(), String> {
    move |oracle| run_once(protocol, oracle)
}

/// Runs one schedule of `protocol` under `oracle` and checks invariants.
///
/// # Errors
///
/// Returns a description of the first violated invariant (including any
/// node failing outright, e.g. a schedule-induced deadlock).
pub fn run_once(protocol: Protocol, oracle: Arc<ReplayOracle>) -> Result<(), String> {
    if matches!(protocol, Protocol::Churn | Protocol::ChurnEc) {
        return run_churn_once(protocol, oracle);
    }
    if protocol == Protocol::CrashChurn {
        return run_crash_churn_once(oracle);
    }
    let cluster = SimCluster::new(NODES, NetworkModel::instant())
        .with_oracle(oracle as Arc<dyn DeliveryOracle>);
    let outcome = match protocol {
        Protocol::Ec => cluster.run(ec_node),
        _ => cluster.run(move |ep| lookahead_node(ep, protocol)),
    }
    .map_err(|e| format!("cluster failed to run: {e}"))?;
    let mut snaps = Vec::with_capacity(NODES);
    for (id, node) in outcome.nodes.into_iter().enumerate() {
        snaps.push(node.result.map_err(|e| format!("node {id}: {e}"))?);
    }
    check_invariants(protocol, &snaps)
}

/// Runs one schedule of a churn scenario. The first choice point is
/// synthetic: it picks the view-change trigger tick out of
/// [`CHURN_TRIGGERS`], so the explorer branches over join/leave timings
/// exactly like it branches over delivery races.
///
/// # Errors
///
/// Returns a description of the first violated invariant; a node stuck in
/// the view-change barrier shows up as a scheduler deadlock here.
fn run_churn_once(protocol: Protocol, oracle: Arc<ReplayOracle>) -> Result<(), String> {
    let candidates: Vec<Candidate> = CHURN_TRIGGERS
        .iter()
        .enumerate()
        .map(|(i, &t)| Candidate { from: i as NodeId, seq: t, deliver_at: 0 })
        .collect();
    let trigger = CHURN_TRIGGERS[oracle.choose(0, &candidates)];
    let cluster = SimCluster::new(CHURN_CAPACITY, NetworkModel::instant())
        .with_oracle(oracle as Arc<dyn DeliveryOracle>);
    let outcome = match protocol {
        Protocol::ChurnEc => cluster.run(move |ep| churn_ec_node(ep, trigger)),
        _ => cluster.run(move |ep| churn_lookahead_node(ep, trigger)),
    }
    .map_err(|e| format!("cluster failed to run: {e}"))?;
    let mut snaps = Vec::with_capacity(CHURN_CAPACITY);
    for (id, node) in outcome.nodes.into_iter().enumerate() {
        snaps.push(node.result.map_err(|e| format!("churn trigger {trigger}, node {id}: {e}"))?);
    }
    check_churn_invariants(protocol, trigger, &snaps)
}

/// One leave plus one join at the same barrier, `trigger` ticks in.
fn churn_plan(trigger: u64) -> MembershipPlan {
    MembershipPlan::new(CHURN_CAPACITY, [0, 1, 2])
        .with_change(trigger, ViewChange::new([CHURN_JOINER], [CHURN_LEAVER]))
}

/// Runs one schedule of the crash-churn scenario: node 3 joins at tick 2
/// (churn), node 1 fail-stops at the oracle-chosen crash tick and rejoins
/// [`CRASH_RESTART_GAP`] ticks later from its WAL. While down, the dead
/// host is effectively partitioned from the group: survivor traffic
/// towards it queues on its enduring endpoint as crash-era residue, which
/// the restarted incarnation must drop (stale epochs, stale acks) rather
/// than deliver — the composition the residue drain exists for.
///
/// # Errors
///
/// Returns a description of the first violated invariant; a restart stuck
/// awaiting its snapshot shows up as a scheduler deadlock here.
fn run_crash_churn_once(oracle: Arc<ReplayOracle>) -> Result<(), String> {
    let candidates: Vec<Candidate> = CRASH_TRIGGERS
        .iter()
        .enumerate()
        .map(|(i, &t)| Candidate { from: i as NodeId, seq: t, deliver_at: 0 })
        .collect();
    let crash = CRASH_TRIGGERS[oracle.choose(0, &candidates)];
    let cluster = SimCluster::new(CHURN_CAPACITY, NetworkModel::instant())
        .with_oracle(oracle as Arc<dyn DeliveryOracle>);
    let outcome = cluster
        .run(move |ep| crash_churn_node(ep, crash))
        .map_err(|e| format!("cluster failed to run: {e}"))?;
    let mut snaps = Vec::with_capacity(CHURN_CAPACITY);
    for (id, node) in outcome.nodes.into_iter().enumerate() {
        snaps.push(node.result.map_err(|e| format!("crash at tick {crash}, node {id}: {e}"))?);
    }
    check_crash_churn_invariants(crash, &snaps)
}

/// The crash-churn membership plan: a planned join at tick 2, then the
/// crasher's leave at `crash` and its rejoin at `crash + gap`.
fn crash_churn_plan(crash: u64) -> MembershipPlan {
    MembershipPlan::new(CHURN_CAPACITY, [0, 1, 2])
        .with_change(2, ViewChange::join([CHURN_JOINER]))
        .with_change(crash, ViewChange::leave([CRASHER]))
        .with_change(crash + CRASH_RESTART_GAP, ViewChange::join([CRASHER]))
}

/// Crash-churn node: every live member writes the tick into its own
/// object each tick; the crasher additionally WAL-logs its state so the
/// post-crash incarnation proves it rejoined with pre-crash identity.
fn crash_churn_node(ep: SimEndpoint, crash: u64) -> Result<NodeSnap, NetError> {
    let me = ep.node_id();
    let plan = crash_churn_plan(crash);
    let restart = crash + CRASH_RESTART_GAP;
    let build = |ep: SimEndpoint| -> Result<SdsoRuntime<SimEndpoint>, NetError> {
        let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
        for id in 0..CHURN_CAPACITY as u32 {
            rt.share(ObjectId(id), vec![0u8; 4]).map_err(NetError::from)?;
        }
        Ok(rt)
    };
    let mut rt = build(ep)?;
    let mut store = DurStore::in_memory();
    let start = churn_enter(&mut rt, &plan, me)?;
    let mut la = Lookahead::new(rt, EveryTick).map_err(NetError::from)?;
    let mut times = Vec::new();
    let mut tick = start;
    loop {
        while tick <= CRASH_TICKS {
            la.runtime_mut()
                .write(ObjectId(u32::from(me)), 0, &[tick as u8])
                .map_err(NetError::from)?;
            let change = plan.change_at(tick);
            let report = if change.is_some() {
                la.step_barrier().map_err(NetError::from)?
            } else {
                la.step().map_err(NetError::from)?
            };
            times.push(report.time);
            if me == CRASHER {
                let (time, lamport) =
                    (la.runtime().logical_now().as_ticks(), la.runtime().lamport());
                let epoch = la.runtime().membership().epoch().0;
                store
                    .append(&DurRecord::Ident { node: me, epoch })
                    .and_then(|()| store.append(&DurRecord::Tick { time, lamport }))
                    .and_then(|()| {
                        store.append(&DurRecord::App { tag: 0, bytes: vec![tick as u8] })
                    })
                    .map_err(|e| {
                        NetError::from(DsoError::ProtocolViolation(format!("WAL append: {e}")))
                    })?;
                if tick == crash {
                    break;
                }
            }
            if let Some(change) = change {
                la.apply_view_change(change).map_err(NetError::from)?;
                if la.runtime().membership().donor_for(change) == Some(me) {
                    for &joiner in &change.joined {
                        la.runtime_mut().send_snapshot(joiner).map_err(NetError::from)?;
                    }
                }
            }
            tick += 1;
        }
        if me != CRASHER || tick > CRASH_TICKS {
            break;
        }
        // Fail-stop: volatile state vanishes; the WAL bytes and the host's
        // endpoint survive. While down, the group sees a leave.
        let endpoint = la.into_runtime().into_endpoint();
        let (wal, snap) = store.into_bytes();
        let (recovered_store, image) = DurStore::from_bytes(wal, snap)
            .map_err(|e| NetError::from(DsoError::ProtocolViolation(format!("recovery: {e}"))))?;
        store = recovered_store;
        let violation = |what: String| NetError::from(DsoError::ProtocolViolation(what));
        if image.ident().map(|(node, _)| node) != Some(me) {
            return Err(violation("recovered identity does not match the crasher".into()));
        }
        let state = image
            .app_state(0)
            .ok_or_else(|| violation("recovered WAL holds no app state".into()))?;
        if state != [crash as u8] {
            return Err(violation(format!(
                "recovered state {state:?} is not the crash-tick write {crash}"
            )));
        }
        let (time, lamport) = image.frontier();
        let mut rt = build(endpoint)?;
        rt.restore_frontier(LogicalTime::from_ticks(time), lamport);
        let change = plan.change_at(restart).expect("restart tick carries the rejoin");
        let view = plan.view_at(restart);
        let donor = view.donor_for(change).expect("a survivor donates the snapshot");
        rt.set_membership(view);
        rt.drain_crash_residue().map_err(NetError::from)?;
        rt.await_snapshot(donor).map_err(NetError::from)?;
        la = Lookahead::new(rt, EveryTick).map_err(NetError::from)?;
        tick = restart + 1;
    }
    let mut rt = la.into_runtime();
    rt.exchange(true, SendMode::Broadcast, &mut Never).map_err(NetError::from)?;
    rt.settle().map_err(NetError::from)?;
    snapshot(&rt, times)
}

fn check_crash_churn_invariants(crash: u64, snaps: &[NodeSnap]) -> Result<(), String> {
    for (id, snap) in snaps.iter().enumerate() {
        // Monotone across the crash too: the restored frontier forbids the
        // restarted incarnation from reusing pre-crash timestamps.
        for w in snap.times.windows(2) {
            if w[1] <= w[0] {
                return Err(format!(
                    "logical clock not strictly monotone on node {id} across a crash at \
                     {crash}: {} then {}",
                    w[0], w[1]
                ));
            }
        }
    }
    // Every node is a final-view member here — the crasher came back.
    for (id, snap) in snaps.iter().enumerate().skip(1) {
        if snap.objects != snaps[0].objects {
            return Err(format!(
                "replica divergence after crash at tick {crash}: node 0 holds {:?}, \
                 node {id} holds {:?}",
                snaps[0].objects, snap.objects
            ));
        }
    }
    // Every object ends at its writer's last live tick: survivors and the
    // joiner write through the final tick, and the recovered crasher's
    // resumed writes overwrite its pre-crash value.
    for (obj, bytes) in &snaps[0].objects {
        let expected = CRASH_TICKS as u8;
        if bytes[0] != expected {
            return Err(format!(
                "object {obj} holds {} after crash at tick {crash}, expected {expected}: \
                 a write was lost across the crash/recovery cycle",
                bytes[0]
            ));
        }
    }
    Ok(())
}

/// Brings a churn node into the group: initial members install the
/// initial view, the joiner installs its join-epoch view and blocks for
/// the donor's snapshot. Returns the node's first tick.
fn churn_enter<E: Endpoint>(
    rt: &mut SdsoRuntime<E>,
    plan: &MembershipPlan,
    me: NodeId,
) -> Result<u64, NetError> {
    if plan.is_initial(me) {
        rt.set_membership(plan.view_at(0));
        return Ok(1);
    }
    let join = plan.join_tick_of(me).expect("non-initial churn node joins");
    let change = plan.change_at(join).expect("join tick carries its change");
    let view = plan.view_at(join);
    let donor = view.donor_for(change).expect("a continuing member remains");
    rt.set_membership(view);
    rt.await_snapshot(donor).map_err(NetError::from)?;
    Ok(join + 1)
}

/// BSYNC-style churn: every member writes the tick into its own object
/// each tick; the leaver's last write is a tombstone. At the trigger the
/// old view runs the barrier exchange, the leaver settles out, continuers
/// apply the change and the donor pushes the joiner its snapshot.
fn churn_lookahead_node(ep: SimEndpoint, trigger: u64) -> Result<NodeSnap, NetError> {
    let me = ep.node_id();
    let plan = churn_plan(trigger);
    let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
    for id in 0..CHURN_CAPACITY as u32 {
        rt.share(ObjectId(id), vec![0u8; 4]).map_err(NetError::from)?;
    }
    let start = churn_enter(&mut rt, &plan, me)?;
    let mut la = Lookahead::new(rt, EveryTick).map_err(NetError::from)?;
    let leave = plan.leave_tick_of(me);
    let mut times = Vec::new();
    for tick in start..=CHURN_TICKS {
        let value = if leave == Some(tick) { CHURN_TOMBSTONE } else { tick as u8 };
        la.runtime_mut().write(ObjectId(u32::from(me)), 0, &[value]).map_err(NetError::from)?;
        let Some(change) = plan.change_at(tick) else {
            times.push(la.step().map_err(NetError::from)?.time);
            continue;
        };
        times.push(la.step_barrier().map_err(NetError::from)?.time);
        if leave == Some(tick) {
            let mut rt = la.into_runtime();
            rt.settle().map_err(NetError::from)?;
            return snapshot(&rt, times);
        }
        la.apply_view_change(change).map_err(NetError::from)?;
        if la.runtime().membership().donor_for(change) == Some(me) {
            for &joiner in &change.joined {
                la.runtime_mut().send_snapshot(joiner).map_err(NetError::from)?;
            }
        }
    }
    let mut rt = la.into_runtime();
    rt.exchange(true, SendMode::Broadcast, &mut Never).map_err(NetError::from)?;
    rt.settle().map_err(NetError::from)?;
    snapshot(&rt, times)
}

/// EC churn: two lock-protected counters, every member increments both
/// each round. The managers straddle the view change (the leaver manages
/// one counter in the old view), so lock state genuinely migrates.
fn churn_ec_node(ep: SimEndpoint, trigger: u64) -> Result<NodeSnap, NetError> {
    let me = ep.node_id();
    let plan = churn_plan(trigger);
    let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
    let lockset = [ObjectId(0), ObjectId(1)];
    for &obj in &lockset {
        rt.share(obj, vec![0u8; 1]).map_err(NetError::from)?;
    }
    let start = churn_enter(&mut rt, &plan, me)?;
    let mut ec = EntryConsistency::new(rt);
    let leave = plan.leave_tick_of(me);
    for round in start..=CHURN_TICKS {
        ec.service_pending().map_err(NetError::from)?;
        let requests: Vec<LockRequest> = lockset.iter().map(|&o| LockRequest::write(o)).collect();
        ec.acquire(&requests).map_err(NetError::from)?;
        for &counter in &lockset {
            let current = ec.read(counter).map_err(NetError::from)?[0];
            ec.write(counter, 0, &[current + 1]).map_err(NetError::from)?;
        }
        ec.release_all(&lockset.into_iter().collect::<BTreeSet<_>>()).map_err(NetError::from)?;
        let Some(change) = plan.change_at(round) else { continue };
        ec.view_sync().map_err(NetError::from)?;
        if leave == Some(round) {
            ec.runtime_mut().settle().map_err(NetError::from)?;
            return snapshot(ec.runtime(), Vec::new());
        }
        ec.apply_view_change(change).map_err(NetError::from)?;
        if ec.runtime().membership().donor_for(change) == Some(me) {
            for &joiner in &change.joined {
                ec.runtime_mut().send_snapshot(joiner).map_err(NetError::from)?;
            }
        }
    }
    ec.finish().map_err(NetError::from)?;
    ec.final_sync().map_err(NetError::from)?;
    ec.runtime_mut().settle().map_err(NetError::from)?;
    snapshot(ec.runtime(), Vec::new())
}

fn check_churn_invariants(
    protocol: Protocol,
    trigger: u64,
    snaps: &[NodeSnap],
) -> Result<(), String> {
    for (id, snap) in snaps.iter().enumerate() {
        for w in snap.times.windows(2) {
            if w[1] <= w[0] {
                return Err(format!(
                    "logical clock not strictly monotone on node {id}: {} then {}",
                    w[0], w[1]
                ));
            }
        }
    }
    // Every final-view member (all but the leaver) converges.
    let survivors: Vec<usize> =
        (0..CHURN_CAPACITY).filter(|&id| id != usize::from(CHURN_LEAVER)).collect();
    for &id in &survivors[1..] {
        if snaps[id].objects != snaps[survivors[0]].objects {
            return Err(format!(
                "replica divergence after churn at tick {trigger}: node {} holds {:?}, \
                 node {id} holds {:?}",
                survivors[0], snaps[survivors[0]].objects, snaps[id].objects
            ));
        }
    }
    let converged = &snaps[survivors[0]].objects;
    match protocol {
        Protocol::ChurnEc => {
            // Per counter: nodes 0 and 2 increment every round, the leaver
            // up to the trigger, the joiner after it — 3 * CHURN_TICKS in
            // total regardless of the trigger tick.
            let expected = (3 * CHURN_TICKS) as u8;
            for (obj, bytes) in converged {
                if bytes[0] != expected {
                    return Err(format!(
                        "EC counter {obj} is {} after churn at tick {trigger}, expected \
                         {expected}: a lock grant or increment was lost across the view change",
                        bytes[0]
                    ));
                }
            }
        }
        Protocol::Churn => {
            for (obj, bytes) in converged {
                let expected = if *obj == u32::from(CHURN_LEAVER) {
                    CHURN_TOMBSTONE // the leaver's final write survives
                } else {
                    CHURN_TICKS as u8 // last write of a full participant
                };
                if bytes[0] != expected {
                    return Err(format!(
                        "object {obj} holds {} after churn at tick {trigger}, expected \
                         {expected}: an update was dropped across the epoch turn",
                        bytes[0]
                    ));
                }
            }
        }
        _ => unreachable!("static protocols use check_invariants"),
    }
    Ok(())
}

/// BSYNC / MSYNC / MSYNC2: every node owns one object and writes the tick
/// number into it before each exchange.
fn lookahead_node(ep: SimEndpoint, protocol: Protocol) -> Result<NodeSnap, NetError> {
    let me = ep.node_id();
    let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
    for id in 0..NODES as u32 {
        rt.share(ObjectId(id), vec![0u8; 4]).map_err(NetError::from)?;
    }
    let sfunc = move |peer: NodeId, now: LogicalTime, _store: &ObjectStore| {
        let gap = match protocol {
            Protocol::Bsync => 1,
            Protocol::Msync => 2,
            Protocol::Msync2 => {
                if me.abs_diff(peer) == 1 {
                    2
                } else {
                    4
                }
            }
            Protocol::Ec | Protocol::Churn | Protocol::ChurnEc | Protocol::CrashChurn => {
                unreachable!("EC, churn and crash have dedicated node runners")
            }
        };
        Some(now.plus(gap))
    };
    let mut la = Lookahead::new(rt, sfunc).map_err(NetError::from)?;
    let mut times = Vec::new();
    for tick in 1..=protocol.ticks() {
        la.runtime_mut().write(ObjectId(u32::from(me)), 0, &[tick]).map_err(NetError::from)?;
        times.push(la.step().map_err(NetError::from)?.time);
    }
    snapshot(&la.into_runtime(), times)
}

/// EC: three shared counters whose managers are spread across all three
/// nodes (`manager_of` maps object id to node id). Each round every node
/// locks a staggered two-counter lockset — overlapping with its peers',
/// so grants genuinely race at every manager — and increments both.
fn ec_node(ep: SimEndpoint) -> Result<NodeSnap, NetError> {
    let me = ep.node_id();
    let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
    for id in 0..NODES as u32 {
        rt.share(ObjectId(id), vec![0u8; 1]).map_err(NetError::from)?;
    }
    let mut ec = EntryConsistency::new(rt);
    for round in 0..u32::from(EC_ITERS) {
        let first = (u32::from(me) + round) % NODES as u32;
        let lockset = [ObjectId(first), ObjectId((first + 1) % NODES as u32)];
        let requests: Vec<LockRequest> = lockset.iter().map(|&o| LockRequest::write(o)).collect();
        ec.acquire(&requests).map_err(NetError::from)?;
        for &counter in &lockset {
            let current = ec.read(counter).map_err(NetError::from)?[0];
            ec.write(counter, 0, &[current + 1]).map_err(NetError::from)?;
        }
        ec.release_all(&lockset.into_iter().collect::<BTreeSet<_>>()).map_err(NetError::from)?;
        ec.service_pending().map_err(NetError::from)?;
    }
    ec.finish().map_err(NetError::from)?;
    ec.final_sync().map_err(NetError::from)?;
    snapshot(ec.runtime(), Vec::new())
}

fn snapshot<E: Endpoint>(
    rt: &SdsoRuntime<E>,
    times: Vec<LogicalTime>,
) -> Result<NodeSnap, NetError> {
    let mut objects = Vec::new();
    for id in rt.object_ids() {
        objects.push((id.0, rt.read(id).map_err(NetError::from)?.to_vec()));
    }
    Ok(NodeSnap { times, objects })
}

fn check_invariants(protocol: Protocol, snaps: &[NodeSnap]) -> Result<(), String> {
    for (id, snap) in snaps.iter().enumerate() {
        for w in snap.times.windows(2) {
            if w[1] <= w[0] {
                return Err(format!(
                    "logical clock not strictly monotone on node {id}: {} then {}",
                    w[0], w[1]
                ));
            }
        }
    }
    for (id, snap) in snaps.iter().enumerate().skip(1) {
        if snap.objects != snaps[0].objects {
            return Err(format!(
                "replica divergence: node 0 holds {:?}, node {id} holds {:?}",
                snaps[0].objects, snap.objects
            ));
        }
    }
    match protocol {
        Protocol::Ec => {
            // Each round, every counter appears in exactly two of the three
            // staggered locksets, so it gains exactly two increments.
            let expected = 2 * EC_ITERS;
            for (obj, bytes) in &snaps[0].objects {
                if bytes[0] != expected {
                    return Err(format!(
                        "EC counter {obj} is {}, expected {expected} (2 increments x \
                         {EC_ITERS} rounds): an update was lost or applied twice",
                        bytes[0]
                    ));
                }
            }
        }
        _ => {
            let last_write = protocol.ticks();
            for (obj, bytes) in &snaps[0].objects {
                if bytes[0] != last_write {
                    return Err(format!(
                        "object {obj} holds {} but its writer's last write was {last_write}: \
                         an update was dropped or applied out of order",
                        bytes[0]
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdso_sim::Explorer;

    #[test]
    fn default_schedule_passes_for_every_protocol() {
        for p in Protocol::ALL {
            run_once(p, Arc::new(ReplayOracle::new(Vec::new())))
                .unwrap_or_else(|e| panic!("{} under default schedule: {e}", p.name()));
        }
    }

    #[test]
    fn perturbed_schedules_still_satisfy_invariants() {
        for preset in [vec![1], vec![1, 1], vec![0, 1, 0, 1, 1]] {
            for p in Protocol::ALL {
                run_once(p, Arc::new(ReplayOracle::new(preset.clone())))
                    .unwrap_or_else(|e| panic!("{} under {preset:?}: {e}", p.name()));
            }
        }
    }

    #[test]
    fn every_churn_trigger_satisfies_invariants() {
        // Presets [0], [1], [2] resolve the synthetic first choice point to
        // each trigger tick in turn.
        for (i, &trigger) in CHURN_TRIGGERS.iter().enumerate() {
            for p in [Protocol::Churn, Protocol::ChurnEc] {
                run_once(p, Arc::new(ReplayOracle::new(vec![i])))
                    .unwrap_or_else(|e| panic!("{} trigger {trigger}: {e}", p.name()));
            }
        }
    }

    #[test]
    fn every_crash_trigger_satisfies_invariants() {
        for (i, &crash) in CRASH_TRIGGERS.iter().enumerate() {
            run_once(Protocol::CrashChurn, Arc::new(ReplayOracle::new(vec![i])))
                .unwrap_or_else(|e| panic!("crash-churn at tick {crash}: {e}"));
        }
    }

    #[test]
    fn crash_churn_explorer_branches_over_crash_ticks_and_deliveries() {
        let report = Explorer::new(3, 24).explore(scenario(Protocol::CrashChurn));
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(
            report.distinct >= CRASH_TRIGGERS.len(),
            "the synthetic choice point alone yields one run per crash tick, got {}",
            report.distinct
        );
    }

    #[test]
    fn churn_explorer_branches_over_triggers_and_deliveries() {
        let report = Explorer::new(3, 24).explore(scenario(Protocol::Churn));
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(
            report.distinct >= CHURN_TRIGGERS.len(),
            "the synthetic choice point alone yields one run per trigger, got {}",
            report.distinct
        );
    }

    #[test]
    fn protocol_names_round_trip() {
        for p in Protocol::ALL {
            assert_eq!(Protocol::from_name(p.name()), Some(p));
        }
        assert_eq!(Protocol::from_name("nope"), None);
    }
}
