//! Explorer scenarios: small 3-node protocol workloads whose invariants
//! are asserted after every explored delivery schedule.
//!
//! Each scenario builds a [`SimCluster`] with the explorer's
//! [`ReplayOracle`] installed, runs a short protocol workload, and checks:
//!
//! * **convergence** — all replicas byte-identical at the end of the run;
//! * **final values** — each single-writer object holds its writer's last
//!   write (an update applied out of slotted-buffer order, or dropped,
//!   would leave a stale byte); for EC, the shared counter equals the
//!   total number of lock-protected increments (mutual exclusion plus
//!   writer-push visibility: a lost update shows up as a smaller count);
//! * **logical-clock monotonicity** — every node's per-exchange times are
//!   strictly increasing;
//! * **progress** — no schedule may deadlock a node (a `Deadlock` error
//!   from the scheduler is itself a violation).

use std::collections::BTreeSet;
use std::sync::Arc;

use sdso_core::{DsoConfig, LogicalTime, ObjectId, ObjectStore, SdsoRuntime};
use sdso_net::{Endpoint, NetError, NodeId};
use sdso_protocols::{EntryConsistency, LockRequest, Lookahead};
use sdso_sim::{DeliveryOracle, NetworkModel, ReplayOracle, SimCluster, SimEndpoint};

/// Every scenario runs this many nodes — enough for three-way delivery
/// races and a distance-2 pair for MSYNC2, small enough to keep a single
/// schedule under a millisecond.
pub const NODES: usize = 3;

/// Lock/increment/unlock rounds per node in the EC scenario.
pub const EC_ITERS: u8 = 4;

/// The protocol workload a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Barrier-synchronous: every pair rendezvouses every tick.
    Bsync,
    /// MSYNC stand-in: every pair rendezvouses every 2 ticks.
    Msync,
    /// MSYNC2 stand-in: ring neighbours every 2 ticks, the distance-2
    /// pair every 4 — distinct per-pair s-functions.
    Msync2,
    /// Entry consistency: a shared counter incremented under write locks.
    Ec,
}

impl Protocol {
    /// All scenarios, in CLI order.
    pub const ALL: [Protocol; 4] =
        [Protocol::Bsync, Protocol::Msync, Protocol::Msync2, Protocol::Ec];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Bsync => "bsync",
            Protocol::Msync => "msync",
            Protocol::Msync2 => "msync2",
            Protocol::Ec => "ec",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(s: &str) -> Option<Protocol> {
        Protocol::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Ticks the lookahead scenarios run for (the last tick is chosen so
    /// every pair's s-function is due, forcing full convergence).
    fn ticks(self) -> u8 {
        match self {
            Protocol::Bsync => 3,
            Protocol::Msync => 8,
            Protocol::Msync2 => 12,
            Protocol::Ec => 0,
        }
    }
}

/// What one node reports back: per-step exchange times and a final
/// snapshot of every replica.
#[derive(Debug, PartialEq, Eq)]
struct NodeSnap {
    times: Vec<LogicalTime>,
    objects: Vec<(u32, Vec<u8>)>,
}

/// Adapts a protocol to the `Explorer`'s scenario signature.
pub fn scenario(protocol: Protocol) -> impl FnMut(Arc<ReplayOracle>) -> Result<(), String> {
    move |oracle| run_once(protocol, oracle)
}

/// Runs one schedule of `protocol` under `oracle` and checks invariants.
///
/// # Errors
///
/// Returns a description of the first violated invariant (including any
/// node failing outright, e.g. a schedule-induced deadlock).
pub fn run_once(protocol: Protocol, oracle: Arc<ReplayOracle>) -> Result<(), String> {
    let cluster = SimCluster::new(NODES, NetworkModel::instant())
        .with_oracle(oracle as Arc<dyn DeliveryOracle>);
    let outcome = match protocol {
        Protocol::Ec => cluster.run(ec_node),
        _ => cluster.run(move |ep| lookahead_node(ep, protocol)),
    }
    .map_err(|e| format!("cluster failed to run: {e}"))?;
    let mut snaps = Vec::with_capacity(NODES);
    for (id, node) in outcome.nodes.into_iter().enumerate() {
        snaps.push(node.result.map_err(|e| format!("node {id}: {e}"))?);
    }
    check_invariants(protocol, &snaps)
}

/// BSYNC / MSYNC / MSYNC2: every node owns one object and writes the tick
/// number into it before each exchange.
fn lookahead_node(ep: SimEndpoint, protocol: Protocol) -> Result<NodeSnap, NetError> {
    let me = ep.node_id();
    let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
    for id in 0..NODES as u32 {
        rt.share(ObjectId(id), vec![0u8; 4]).map_err(NetError::from)?;
    }
    let sfunc = move |peer: NodeId, now: LogicalTime, _store: &ObjectStore| {
        let gap = match protocol {
            Protocol::Bsync => 1,
            Protocol::Msync => 2,
            Protocol::Msync2 => {
                if me.abs_diff(peer) == 1 {
                    2
                } else {
                    4
                }
            }
            Protocol::Ec => unreachable!("EC uses ec_node"),
        };
        Some(now.plus(gap))
    };
    let mut la = Lookahead::new(rt, sfunc).map_err(NetError::from)?;
    let mut times = Vec::new();
    for tick in 1..=protocol.ticks() {
        la.runtime_mut().write(ObjectId(u32::from(me)), 0, &[tick]).map_err(NetError::from)?;
        times.push(la.step().map_err(NetError::from)?.time);
    }
    snapshot(&la.into_runtime(), times)
}

/// EC: three shared counters whose managers are spread across all three
/// nodes (`manager_of` maps object id to node id). Each round every node
/// locks a staggered two-counter lockset — overlapping with its peers',
/// so grants genuinely race at every manager — and increments both.
fn ec_node(ep: SimEndpoint) -> Result<NodeSnap, NetError> {
    let me = ep.node_id();
    let mut rt = SdsoRuntime::new(ep, DsoConfig::compact());
    for id in 0..NODES as u32 {
        rt.share(ObjectId(id), vec![0u8; 1]).map_err(NetError::from)?;
    }
    let mut ec = EntryConsistency::new(rt);
    for round in 0..u32::from(EC_ITERS) {
        let first = (u32::from(me) + round) % NODES as u32;
        let lockset = [ObjectId(first), ObjectId((first + 1) % NODES as u32)];
        let requests: Vec<LockRequest> = lockset.iter().map(|&o| LockRequest::write(o)).collect();
        ec.acquire(&requests).map_err(NetError::from)?;
        for &counter in &lockset {
            let current = ec.read(counter).map_err(NetError::from)?[0];
            ec.write(counter, 0, &[current + 1]).map_err(NetError::from)?;
        }
        ec.release_all(&lockset.into_iter().collect::<BTreeSet<_>>()).map_err(NetError::from)?;
        ec.service_pending().map_err(NetError::from)?;
    }
    ec.finish().map_err(NetError::from)?;
    ec.final_sync().map_err(NetError::from)?;
    snapshot(ec.runtime(), Vec::new())
}

fn snapshot<E: Endpoint>(
    rt: &SdsoRuntime<E>,
    times: Vec<LogicalTime>,
) -> Result<NodeSnap, NetError> {
    let mut objects = Vec::new();
    for id in rt.object_ids() {
        objects.push((id.0, rt.read(id).map_err(NetError::from)?.to_vec()));
    }
    Ok(NodeSnap { times, objects })
}

fn check_invariants(protocol: Protocol, snaps: &[NodeSnap]) -> Result<(), String> {
    for (id, snap) in snaps.iter().enumerate() {
        for w in snap.times.windows(2) {
            if w[1] <= w[0] {
                return Err(format!(
                    "logical clock not strictly monotone on node {id}: {} then {}",
                    w[0], w[1]
                ));
            }
        }
    }
    for (id, snap) in snaps.iter().enumerate().skip(1) {
        if snap.objects != snaps[0].objects {
            return Err(format!(
                "replica divergence: node 0 holds {:?}, node {id} holds {:?}",
                snaps[0].objects, snap.objects
            ));
        }
    }
    match protocol {
        Protocol::Ec => {
            // Each round, every counter appears in exactly two of the three
            // staggered locksets, so it gains exactly two increments.
            let expected = 2 * EC_ITERS;
            for (obj, bytes) in &snaps[0].objects {
                if bytes[0] != expected {
                    return Err(format!(
                        "EC counter {obj} is {}, expected {expected} (2 increments x \
                         {EC_ITERS} rounds): an update was lost or applied twice",
                        bytes[0]
                    ));
                }
            }
        }
        _ => {
            let last_write = protocol.ticks();
            for (obj, bytes) in &snaps[0].objects {
                if bytes[0] != last_write {
                    return Err(format!(
                        "object {obj} holds {} but its writer's last write was {last_write}: \
                         an update was dropped or applied out of order",
                        bytes[0]
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule_passes_for_every_protocol() {
        for p in Protocol::ALL {
            run_once(p, Arc::new(ReplayOracle::new(Vec::new())))
                .unwrap_or_else(|e| panic!("{} under default schedule: {e}", p.name()));
        }
    }

    #[test]
    fn perturbed_schedules_still_satisfy_invariants() {
        for preset in [vec![1], vec![1, 1], vec![0, 1, 0, 1, 1]] {
            for p in Protocol::ALL {
                run_once(p, Arc::new(ReplayOracle::new(preset.clone())))
                    .unwrap_or_else(|e| panic!("{} under {preset:?}: {e}", p.name()));
            }
        }
    }

    #[test]
    fn protocol_names_round_trip() {
        for p in Protocol::ALL {
            assert_eq!(Protocol::from_name(p.name()), Some(p));
        }
        assert_eq!(Protocol::from_name("nope"), None);
    }
}
