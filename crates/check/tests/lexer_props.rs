//! Edge-case and property tests for the lint lexer.
//!
//! The lexer underpins every lint rule *and* the call graph: if cleaning
//! miscounts a byte, every downstream line number and brace match is
//! wrong. The targeted tests pin the constructs that historically break
//! hand-rolled scanners (nested block comments, raw strings with hash
//! fences, test-module stripping); the properties pin the structural
//! invariants every rule relies on — byte length preserved, newlines
//! preserved, cleaning idempotent, `find_bounded` hits real and bounded.

use proptest::prelude::*;
use sdso_check::lexer::{clean_source, find_bounded, line_of, strip_test_modules};

#[test]
fn nested_block_comments_blank_to_their_true_end() {
    let src = "/* outer /* inner \"}\" panic!() */ still comment */ x.unwrap();";
    let c = clean_source(src);
    assert!(!c.contains("panic"), "{c:?}");
    assert!(!c.contains("comment"), "{c:?}");
    assert!(c.contains(".unwrap()"), "code after the comment must survive: {c:?}");
    assert_eq!(c.len(), src.len());
}

#[test]
fn raw_string_hash_fences_only_close_on_the_matching_count() {
    // The embedded `"#` must NOT close an `r##"…"##` string.
    let src = r###"let s = r##"inner "# fake close panic!()"##; live();"###;
    let c = clean_source(src);
    assert!(!c.contains("panic"), "{c:?}");
    assert!(!c.contains("fake"), "{c:?}");
    assert!(c.contains("live();"), "{c:?}");
}

#[test]
fn raw_byte_strings_and_raw_identifiers_are_distinguished() {
    let src = r##"let b = br#"unwrap() }"#; let r#fn = 1;"##;
    let c = clean_source(src);
    assert!(!c.contains("unwrap"), "{c:?}");
    assert!(c.contains("let r#fn = 1;"), "raw identifiers are code, not strings: {c:?}");
}

#[test]
fn ident_prefixed_r_quote_is_not_a_raw_string() {
    // `xr` then a plain string: the `r` belongs to the identifier.
    let src = "let xr = 1; let s = \"ok\";";
    let c = clean_source(src);
    assert!(c.contains("let xr = 1;"), "{c:?}");
}

#[test]
fn cfg_test_module_with_intervening_attributes_is_stripped() {
    let src = "fn live() {}\n#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    fn t() { \
               x.unwrap(); }\n}\nfn tail() {}";
    let c = strip_test_modules(&clean_source(src));
    assert!(!c.contains("unwrap"), "{c:?}");
    assert!(c.contains("fn live"));
    assert!(c.contains("fn tail"));
    assert_eq!(c.matches('\n').count(), src.matches('\n').count());
}

#[test]
fn outline_test_module_declaration_does_not_hang_or_strip() {
    let src = "#[cfg(test)]\nmod tests;\nfn live() {}";
    let c = strip_test_modules(&clean_source(src));
    assert!(c.contains("fn live"), "{c:?}");
}

#[test]
fn cfg_test_inside_a_string_is_not_a_module() {
    let src = "fn f() { let s = \"#[cfg(test)] mod x {\"; }\nfn g() { x.unwrap(); }";
    let c = strip_test_modules(&clean_source(src));
    // The attribute text lives in a literal, which cleaning blanks before
    // stripping runs — `g` must survive with its unwrap visible.
    assert!(c.contains(".unwrap()"), "{c:?}");
}

#[test]
fn line_of_is_stable_at_boundaries() {
    let text = "a\nb\nc";
    assert_eq!(line_of(text, 0), 1);
    assert_eq!(line_of(text, 2), 2);
    assert_eq!(line_of(text, text.len()), 3);
    assert_eq!(line_of(text, text.len() + 10), 3, "past-the-end clamps");
}

/// Literal/comment body alphabet: no quote, hash, slash, backslash, or
/// newline, so one filler serves strings, comments, and raw strings alike
/// without accidentally closing (or nesting) the surrounding construct.
const FILLER: &[u8] = b"abcz {}*_";

/// Lexically hostile alphabet for the raw length property: every
/// delimiter and prefix byte the scanner special-cases, plus multibyte
/// characters, combined with no regard for well-formedness.
const ROUGH: &[&str] =
    &["\"", "'", "/", "r", "b", "#", "*", "\\", "\n", " ", "a", "{", "}", "é", "∀"];

/// One plausible source token; concatenations exercise every scanner arm.
fn build_token((kind, picks): (usize, Vec<usize>)) -> String {
    let body: String = picks.iter().map(|&i| FILLER[i % FILLER.len()] as char).collect();
    match kind {
        0 => "x".to_owned(),
        1 => "unwrap".to_owned(),
        // Bare `r` so an adjacent string token forms `r"…"` / `br"…"`.
        2 => "r".to_owned(),
        3 => "b".to_owned(),
        4 => "{ ".to_owned(),
        5 => "} ".to_owned(),
        6 => "(x)".to_owned(),
        7 => ";\n".to_owned(),
        8 => ".unwrap()".to_owned(),
        9 => "'a ".to_owned(),
        10 => "'}'".to_owned(),
        11 => format!("\"{body}\""),
        12 => format!("// {body}\n"),
        13 => format!("/* {body} */"),
        14 => format!(" r#\"{body}\"# "),
        _ => "fn f() ".to_owned(),
    }
}

fn source() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        (0usize..16, proptest::collection::vec(0usize..FILLER.len(), 0..8)).prop_map(build_token),
        0..40,
    )
    .prop_map(|v| v.concat())
}

proptest! {
    #[test]
    fn cleaning_preserves_byte_length_on_hostile_input(
        picks in proptest::collection::vec(0usize..ROUGH.len(), 0..80)
    ) {
        let src: String = picks.iter().map(|&i| ROUGH[i]).collect();
        prop_assert_eq!(clean_source(&src).len(), src.len());
    }

    #[test]
    fn cleaning_preserves_newline_positions(src in source()) {
        let c = clean_source(&src);
        prop_assert_eq!(c.len(), src.len());
        for (i, (a, b)) in src.bytes().zip(c.bytes()).enumerate() {
            prop_assert_eq!(a == b'\n', b == b'\n', "newline mismatch at byte {}", i);
        }
    }

    #[test]
    fn cleaning_is_idempotent(src in source()) {
        let once = clean_source(&src);
        prop_assert_eq!(clean_source(&once), once.clone());
    }

    #[test]
    fn stripping_preserves_length_and_newlines(src in source()) {
        let c = clean_source(&src);
        let s = strip_test_modules(&c);
        prop_assert_eq!(s.len(), c.len());
        prop_assert_eq!(s.matches('\n').count(), c.matches('\n').count());
    }

    #[test]
    fn find_bounded_hits_are_real_and_boundary_checked(src in source()) {
        let c = strip_test_modules(&clean_source(&src));
        for pat in [".unwrap()", "unwrap", "fn "] {
            for at in find_bounded(&c, pat) {
                prop_assert!(c[at..].starts_with(pat), "hit at {} is not `{}`", at, pat);
                let leading_ident = pat
                    .bytes()
                    .next()
                    .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_');
                if leading_ident && at > 0 {
                    let prev = c.as_bytes()[at - 1];
                    prop_assert!(
                        !(prev.is_ascii_alphanumeric() || prev == b'_'),
                        "hit at {} sits inside an identifier", at
                    );
                }
            }
        }
    }
}
