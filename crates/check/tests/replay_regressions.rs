//! Schedule-replay regressions and explorer smoke coverage.
//!
//! The pinned schedules below are `Explorer`-minimized choice vectors
//! (trailing default-0 choices trimmed) captured from development runs of
//! `sdso-check explore`. Each steers every early delivery race off the
//! default path — exactly the shape a minimized counterexample takes —
//! so the protocols' invariants stay pinned against the most adversarial
//! orders the explorer found, and `Explorer::replay` itself is exercised
//! end to end.

use std::sync::Arc;

use proptest::prelude::*;
use sdso_check::scenarios::{self, Protocol};
use sdso_sim::{Explorer, ReplayOracle};

/// One pinned schedule per protocol.
const PINNED: &[(Protocol, &[usize])] = &[
    (Protocol::Bsync, &[1, 1, 0, 1, 0, 1, 1, 1]),
    (Protocol::Msync, &[1, 0, 1, 1, 1, 0, 1]),
    (Protocol::Msync2, &[1, 1, 1, 0, 1, 1]),
    (Protocol::Ec, &[1, 1, 0, 1, 1, 1, 0, 1]),
];

#[test]
fn pinned_schedules_replay_with_invariants_intact() {
    for &(protocol, schedule) in PINNED {
        let oracle = Arc::new(ReplayOracle::new(schedule.to_vec()));
        scenarios::run_once(protocol, Arc::clone(&oracle))
            .unwrap_or_else(|e| panic!("{} under {schedule:?}: {e}", protocol.name()));
        // The schedule must actually steer deliveries: a trace shorter
        // than the preset means the scenario shrank and the pin is stale.
        let trace = oracle.trace();
        assert!(
            trace.len() >= schedule.len(),
            "{}: only {} choice points for pinned schedule of {}",
            protocol.name(),
            trace.len(),
            schedule.len()
        );
    }
}

#[test]
fn explorer_replay_api_round_trips() {
    let (protocol, schedule) = (Protocol::Bsync, vec![1, 1]);
    Explorer::replay(&schedule, |oracle| scenarios::run_once(protocol, oracle))
        .expect("pinned bsync schedule satisfies invariants");
}

#[test]
fn explorer_smoke_covers_every_protocol() {
    // A fast bounded sweep (full coverage gates run in CI via the
    // `sdso-check explore` binary): every protocol must yield a healthy
    // set of distinct interleavings with no invariant violation.
    let explorer = Explorer::new(6, 24);
    for protocol in Protocol::ALL {
        let report = explorer.explore(scenarios::scenario(protocol));
        assert!(report.violation.is_none(), "{}: {:?}", protocol.name(), report.violation);
        assert!(
            report.distinct >= 8,
            "{}: only {} distinct schedules at depth 6",
            protocol.name(),
            report.distinct
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn random_schedules_never_violate_invariants(
        schedule in proptest::collection::vec(0usize..3, 0..10),
        which in 0usize..4,
    ) {
        let protocol = Protocol::ALL[which];
        let oracle = Arc::new(ReplayOracle::new(schedule.clone()));
        if let Err(e) = scenarios::run_once(protocol, oracle) {
            prop_assert!(false, "{} under {:?}: {}", protocol.name(), schedule, e);
        }
    }
}
