//! A small binary codec used by every message type in the workspace.
//!
//! The codec is deliberately simple — little-endian fixed-width integers,
//! length-prefixed byte strings — and every decode is bounds-checked so that
//! a corrupt or truncated frame produces a [`NetError::Codec`] instead of a
//! panic.
//!
//! # Example
//!
//! ```
//! use bytes::{Bytes, BytesMut};
//! use sdso_net::wire::{Wire, WireReader, WireWriter};
//!
//! #[derive(Debug, PartialEq)]
//! struct Ping { seq: u32, note: Vec<u8> }
//!
//! impl Wire for Ping {
//!     fn encode(&self, w: &mut WireWriter) {
//!         w.put_u32(self.seq);
//!         w.put_bytes(&self.note);
//!     }
//!     fn decode(r: &mut WireReader<'_>) -> Result<Self, sdso_net::NetError> {
//!         Ok(Ping { seq: r.get_u32()?, note: r.get_bytes()?.to_vec() })
//!     }
//! }
//!
//! # fn main() -> Result<(), sdso_net::NetError> {
//! let ping = Ping { seq: 7, note: b"hi".to_vec() };
//! let encoded = sdso_net::wire::encode(&ping);
//! let decoded: Ping = sdso_net::wire::decode(&encoded)?;
//! assert_eq!(ping, decoded);
//! # Ok(())
//! # }
//! ```

use bytes::{Bytes, BytesMut};

use crate::NetError;

/// Types that can be written to and read from the wire.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to the writer.
    fn encode(&self, w: &mut WireWriter);

    /// Decodes a value from the reader.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Codec`] if the input is truncated or contains an
    /// invalid discriminant.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError>;
}

/// Encodes a value into a fresh byte buffer.
pub fn encode<T: Wire>(value: &T) -> Bytes {
    let mut w = WireWriter::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Encodes a value into scratch drawn from `pool`, so steady-state encode
/// paths reuse recycled allocations instead of allocating per message.
///
/// The returned [`Bytes`] is ordinary frozen storage; hand it back with
/// [`crate::pool::BufPool::reclaim`] once its last clone is done to keep the
/// cycle closed. sdso-check: hot-path
pub fn encode_pooled<T: Wire>(value: &T, pool: &crate::pool::BufPool) -> Bytes {
    let mut w = WireWriter::from_scratch(pool.get());
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes a value from a byte slice, requiring the slice to be fully
/// consumed.
///
/// # Errors
///
/// Returns [`NetError::Codec`] on truncation, invalid discriminants, or
/// trailing garbage.
pub fn decode<T: Wire>(bytes: &[u8]) -> Result<T, NetError> {
    let mut r = WireReader::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

/// An append-only encoder.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        WireWriter { buf: BytesMut::new() }
    }

    /// Creates a writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        WireWriter { buf: BytesMut::with_capacity(cap) }
    }

    /// Creates a writer over reusable scratch (cleared first), typically
    /// drawn from a [`crate::pool::BufPool`]: the scratch's existing
    /// allocation is written into instead of allocating fresh storage.
    pub fn from_scratch(mut scratch: BytesMut) -> Self {
        scratch.clear();
        WireWriter { buf: scratch }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.extend_from_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian IEEE-754 `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends an LEB128 varint: seven value bits per byte, low group
    /// first, high bit set on every byte but the last. Values below 128
    /// cost one byte; `u64::MAX` costs ten.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.put_u8(byte);
                return;
            }
            self.put_u8(byte | 0x80);
        }
    }

    /// Appends raw bytes with no length prefix. The caller's framing must
    /// make the length recoverable (see [`WireReader::get_raw`]).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u32`-length-prefixed byte string.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` exceeds `u32::MAX`.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        let len = u32::try_from(bytes.len()).expect("byte string too long for wire format");
        self.put_u32(len);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u32`-length-prefixed sequence via a per-item closure.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is longer than `u32::MAX` items.
    pub fn put_seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        let len = u32::try_from(items.len()).expect("sequence too long for wire format");
        self.put_u32(len);
        for item in items {
            f(self, item);
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finalises the encoding.
    pub fn into_bytes(self) -> Bytes {
        self.buf.freeze()
    }
}

/// A bounds-checked decoder over a byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

macro_rules! get_int {
    ($name:ident, $ty:ty) => {
        /// Reads a little-endian integer.
        ///
        /// # Errors
        /// Returns [`NetError::Codec`] if the input is exhausted.
        pub fn $name(&mut self) -> Result<$ty, NetError> {
            const N: usize = std::mem::size_of::<$ty>();
            let slice = self.take(N)?;
            let mut arr = [0u8; N];
            arr.copy_from_slice(slice);
            Ok(<$ty>::from_le_bytes(arr))
        }
    };
}

impl<'a> WireReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        let end = self.pos.checked_add(n).ok_or_else(overflow)?;
        if end > self.buf.len() {
            return Err(NetError::Codec(format!(
                "truncated input: wanted {n} bytes at offset {}, only {} available",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a single byte.
    ///
    /// # Errors
    /// Returns [`NetError::Codec`] if the input is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    get_int!(get_u16, u16);
    get_int!(get_u32, u32);
    get_int!(get_u64, u64);
    get_int!(get_i64, i64);

    /// Reads a little-endian IEEE-754 `f64`.
    ///
    /// # Errors
    /// Returns [`NetError::Codec`] if the input is exhausted.
    pub fn get_f64(&mut self) -> Result<f64, NetError> {
        let slice = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(slice);
        Ok(f64::from_le_bytes(arr))
    }

    /// Reads a one-byte `bool`.
    ///
    /// # Errors
    /// Returns [`NetError::Codec`] if the input is exhausted or the byte is
    /// neither 0 nor 1.
    pub fn get_bool(&mut self) -> Result<bool, NetError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(NetError::Codec(format!("invalid bool byte {b:#x}"))),
        }
    }

    /// Reads an LEB128 varint written by [`WireWriter::put_varint`].
    ///
    /// # Errors
    /// Returns [`NetError::Codec`] if the input is exhausted, the
    /// continuation chain runs past ten bytes, or the tenth byte carries
    /// bits beyond `u64`'s width (a non-canonical overlong encoding).
    pub fn get_varint(&mut self) -> Result<u64, NetError> {
        let mut value = 0u64;
        for group in 0..10u32 {
            let byte = self.get_u8()?;
            let bits = u64::from(byte & 0x7F);
            // Group 9 holds the top single bit of a u64; anything more
            // overflows.
            if group == 9 && bits > 1 {
                return Err(NetError::Codec("varint overflows u64".into()));
            }
            value |= bits << (7 * group);
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(NetError::Codec("varint longer than 10 bytes".into()))
    }

    /// Reads exactly `n` raw bytes (no length prefix — the caller's framing
    /// supplies `n`, see [`WireWriter::put_raw`]).
    ///
    /// # Errors
    /// Returns [`NetError::Codec`] if the input is exhausted.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        self.take(n)
    }

    /// Reads a `u32`-length-prefixed byte string.
    ///
    /// # Errors
    /// Returns [`NetError::Codec`] if the input is exhausted.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], NetError> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Reads a `u32`-length-prefixed sequence via a per-item closure.
    ///
    /// # Errors
    /// Returns [`NetError::Codec`] if the input is exhausted or an item fails
    /// to decode.
    pub fn get_seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, NetError>,
    ) -> Result<Vec<T>, NetError> {
        let len = self.get_u32()? as usize;
        // Guard against a hostile length prefix: each item needs ≥ 1 byte.
        if len > self.remaining() {
            return Err(NetError::Codec(format!(
                "sequence length {len} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(f(self)?);
        }
        Ok(items)
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Requires the input to be fully consumed.
    ///
    /// # Errors
    /// Returns [`NetError::Codec`] if trailing bytes remain.
    pub fn finish(self) -> Result<(), NetError> {
        if self.pos != self.buf.len() {
            return Err(NetError::Codec(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn overflow() -> NetError {
    NetError::Codec("length overflow".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut w = WireWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_i64(-42);
        w.put_f64(3.25);
        w.put_bool(true);
        w.put_bytes(b"payload");
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 3.25);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_bytes().unwrap(), b"payload");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut r = WireReader::new(&[1, 2]);
        assert!(r.get_u32().is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = WireWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let _ = r.get_u8().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn hostile_sequence_length_rejected() {
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX); // claims 4 billion items
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(r.get_seq(|r| r.get_u8()).is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut r = WireReader::new(&[2]);
        assert!(r.get_bool().is_err());
    }

    #[test]
    fn pooled_encode_matches_fresh_encode_and_recycles() {
        struct Blob(Vec<u8>);
        impl Wire for Blob {
            fn encode(&self, w: &mut WireWriter) {
                w.put_bytes(&self.0);
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
                Ok(Blob(r.get_bytes()?.to_vec()))
            }
        }
        let pool = crate::pool::BufPool::new(4, 1024);
        let blob = Blob(vec![9u8; 64]);
        let pooled = encode_pooled(&blob, &pool);
        assert_eq!(&pooled[..], &encode(&blob)[..]);

        pool.reclaim(pooled);
        assert_eq!(pool.idle(), 1);
        let again = encode_pooled(&blob, &pool);
        assert_eq!(pool.stats().hits, 1, "second encode reused pooled scratch");
        let decoded: Blob = decode(&again).unwrap();
        assert_eq!(decoded.0, blob.0);
    }

    #[test]
    fn from_scratch_clears_stale_content() {
        let mut stale = BytesMut::new();
        stale.extend_from_slice(b"junk");
        let mut w = WireWriter::from_scratch(stale);
        w.put_u16(7);
        assert_eq!(w.len(), 2);
        assert_eq!(&w.into_bytes()[..], &7u16.to_le_bytes());
    }

    #[test]
    fn varint_roundtrips_at_every_group_boundary() {
        let mut cases = vec![0u64, 1, 127, 128, 129, 255, 16_383, 16_384, u64::MAX - 1, u64::MAX];
        for shift in 0..9 {
            cases.push((1u64 << (7 * shift)) - 1);
            cases.push(1u64 << (7 * shift));
        }
        for &v in &cases {
            let mut w = WireWriter::new();
            w.put_varint(v);
            let bytes = w.into_bytes();
            assert!(bytes.len() <= 10);
            let mut r = WireReader::new(&bytes);
            assert_eq!(r.get_varint().unwrap(), v, "value {v}");
            r.finish().unwrap();
        }
    }

    #[test]
    fn varint_small_values_cost_one_byte() {
        for v in 0u64..128 {
            let mut w = WireWriter::new();
            w.put_varint(v);
            assert_eq!(w.len(), 1);
        }
    }

    #[test]
    fn varint_rejects_overlong_and_overflowing_encodings() {
        // Eleven continuation bytes: the chain never terminates in bounds.
        let overlong = [0x80u8; 11];
        assert!(WireReader::new(&overlong).get_varint().is_err());
        // Ten bytes whose last group carries more than u64's top bit.
        let mut overflow = [0x80u8; 10];
        overflow[9] = 0x02;
        assert!(WireReader::new(&overflow).get_varint().is_err());
        // Truncated mid-chain.
        let truncated = [0xFFu8, 0xFF];
        assert!(WireReader::new(&truncated).get_varint().is_err());
    }

    #[test]
    fn seq_roundtrip() {
        let items = vec![3u32, 1, 4, 1, 5];
        let mut w = WireWriter::new();
        w.put_seq(&items, |w, &v| w.put_u32(v));
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let out = r.get_seq(|r| r.get_u32()).unwrap();
        assert_eq!(out, items);
    }
}
