use std::fmt;

/// Errors produced by transports and codecs in this crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// A peer id was outside the cluster, or a node tried to message itself.
    InvalidPeer {
        /// The offending peer id.
        peer: u16,
        /// Number of nodes in the cluster.
        cluster: usize,
    },
    /// The peer (or the whole hub/mesh) has shut down; no more messages can
    /// flow in the indicated direction.
    Disconnected,
    /// A frame or message failed to decode.
    Codec(String),
    /// An underlying I/O error (TCP transport only).
    Io(std::io::Error),
    /// The virtual-time scheduler detected that every node is blocked with no
    /// message in flight — a distributed deadlock in the protocol under test.
    Deadlock(String),
    /// A per-peer send queue exceeded its configured byte budget: the peer is
    /// not draining (dead, or slower than the sender) and accepting more
    /// would grow memory without bound. The message was *not* enqueued.
    Backpressure {
        /// The peer whose queue is full.
        peer: u16,
        /// Bytes currently queued for that peer.
        queued: usize,
        /// The configured queue budget in bytes.
        limit: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidPeer { peer, cluster } => {
                write!(f, "invalid peer id {peer} for cluster of {cluster} nodes")
            }
            NetError::Disconnected => write!(f, "transport disconnected"),
            NetError::Codec(msg) => write!(f, "codec error: {msg}"),
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Deadlock(detail) => write!(f, "distributed deadlock: {detail}"),
            NetError::Backpressure { peer, queued, limit } => {
                write!(f, "send queue for peer {peer} is full ({queued} of {limit} bytes)")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetError::InvalidPeer { peer: 9, cluster: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let e = NetError::Codec("truncated".into());
        assert!(e.to_string().contains("truncated"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        use std::error::Error as _;
        let e = NetError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
