//! Selection between the two real TCP transport implementations.
//!
//! The reactor transport is the default on Linux; the thread-per-peer
//! [`tcp::TcpMesh`](crate::tcp::TcpMesh) remains available behind this flag
//! for one release as a fallback. Select explicitly in code, via
//! [`DsoConfig`](https://docs.rs/sdso-core)'s `transport` field, or with the
//! `SDSO_TRANSPORT` environment variable (`tcp` / `tcp-reactor`).

use std::fmt;
use std::str::FromStr;

/// Which real-socket transport a cluster builder should construct.
///
/// Simulated and in-memory transports are not covered by this knob: they are
/// chosen structurally (by calling into `sdso-sim` or
/// [`memory::MemoryHub`](crate::memory::MemoryHub)) and are unaffected by the
/// reactor migration, which keeps explorer/chaos/churn replays bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// Thread-per-peer blocking mesh ([`tcp::TcpMesh`](crate::tcp::TcpMesh)).
    Tcp,
    /// Single-threaded epoll reactor (`reactor::ReactorMesh`, Linux only).
    TcpReactor,
}

// Not derivable: the default variant is platform-dependent, and
// `#[default]` cannot carry the cfg.
#[allow(clippy::derivable_impls)]
impl Default for TransportKind {
    fn default() -> Self {
        #[cfg(target_os = "linux")]
        {
            TransportKind::TcpReactor
        }
        #[cfg(not(target_os = "linux"))]
        {
            TransportKind::Tcp
        }
    }
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportKind::Tcp => write!(f, "tcp"),
            TransportKind::TcpReactor => write!(f, "tcp-reactor"),
        }
    }
}

impl FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "tcp" | "threaded" => Ok(TransportKind::Tcp),
            "tcp-reactor" | "reactor" => Ok(TransportKind::TcpReactor),
            other => Err(format!("unknown transport {other:?} (expected tcp or tcp-reactor)")),
        }
    }
}

impl TransportKind {
    /// Reads `SDSO_TRANSPORT` from the environment, falling back to the
    /// platform default when unset or unparseable.
    pub fn from_env() -> TransportKind {
        std::env::var("SDSO_TRANSPORT").ok().and_then(|s| s.parse().ok()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_kinds_and_aliases() {
        assert_eq!("tcp".parse::<TransportKind>().unwrap(), TransportKind::Tcp);
        assert_eq!("TCP-Reactor".parse::<TransportKind>().unwrap(), TransportKind::TcpReactor);
        assert_eq!("reactor".parse::<TransportKind>().unwrap(), TransportKind::TcpReactor);
        assert!("udp".parse::<TransportKind>().is_err());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for kind in [TransportKind::Tcp, TransportKind::TcpReactor] {
            assert_eq!(kind.to_string().parse::<TransportKind>().unwrap(), kind);
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_defaults_to_the_reactor() {
        assert_eq!(TransportKind::default(), TransportKind::TcpReactor);
    }
}
