//! A freelist of reusable wire buffers.
//!
//! Every message encode and every TCP frame write used to allocate a fresh
//! buffer. [`BufPool`] recycles them instead: encode paths draw cleared
//! [`BytesMut`] scratch via [`BufPool::get`], and consumers hand storage back
//! with [`BufPool::put`] (for scratch they own) or [`BufPool::reclaim`] (for
//! frozen [`Bytes`] whose last clone just died). A pooled buffer keeps its
//! allocation, so steady-state hot paths stop touching the allocator.
//!
//! Pooling is purely an optimization: `get` on an empty pool falls back to a
//! fresh allocation, and oversized or surplus buffers are dropped rather than
//! hoarded.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

use bytes::{Bytes, BytesMut};

/// Default cap on pooled buffers (per pool).
pub const DEFAULT_MAX_BUFFERS: usize = 64;

/// Default cap on a single pooled buffer's capacity; larger buffers are
/// dropped on return so one jumbo frame cannot pin memory forever.
pub const DEFAULT_MAX_CAPACITY: usize = 1 << 20;

/// Cumulative counters describing how well the pool is working.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `get` calls served from the freelist.
    pub hits: u64,
    /// `get` calls that had to allocate.
    pub misses: u64,
    /// Buffers accepted back into the freelist.
    pub returns: u64,
    /// Buffers rejected on return (pool full, buffer oversized, or storage
    /// still shared).
    pub discards: u64,
}

/// A mutex-guarded freelist of [`BytesMut`] buffers.
#[derive(Debug)]
pub struct BufPool {
    free: Mutex<Vec<BytesMut>>,
    max_buffers: usize,
    max_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    returns: AtomicU64,
    discards: AtomicU64,
}

impl Default for BufPool {
    fn default() -> Self {
        BufPool::new(DEFAULT_MAX_BUFFERS, DEFAULT_MAX_CAPACITY)
    }
}

impl BufPool {
    /// Creates a pool holding at most `max_buffers` buffers of at most
    /// `max_capacity` bytes each.
    pub fn new(max_buffers: usize, max_capacity: usize) -> Self {
        BufPool {
            free: Mutex::new(Vec::new()),
            max_buffers,
            max_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            returns: AtomicU64::new(0),
            discards: AtomicU64::new(0),
        }
    }

    /// Takes a cleared buffer from the freelist, allocating if it is empty.
    pub fn get(&self) -> BytesMut {
        let recycled = self.free.lock().pop();
        match recycled {
            Some(mut buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                BytesMut::new()
            }
        }
    }

    /// Returns a buffer to the freelist; drops it if the pool is full or the
    /// buffer outgrew the per-buffer capacity cap.
    pub fn put(&self, buf: BytesMut) {
        if buf.capacity() == 0 || buf.capacity() > self.max_capacity {
            self.discards.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut free = self.free.lock();
        if free.len() >= self.max_buffers {
            self.discards.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.returns.fetch_add(1, Ordering::Relaxed);
        free.push(buf);
    }

    /// Recovers the storage behind a frozen [`Bytes`] when this was its last
    /// handle; shared or oversized storage is simply dropped.
    pub fn reclaim(&self, bytes: Bytes) {
        match bytes.try_into_mut() {
            Ok(buf) => self.put(buf),
            Err(_still_shared) => {
                self.discards.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Buffers currently parked in the freelist.
    pub fn idle(&self) -> usize {
        self.free.lock().len()
    }

    /// Cumulative hit/miss/return/discard counts.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            returns: self.returns.load(Ordering::Relaxed),
            discards: self.discards.load(Ordering::Relaxed),
        }
    }
}

/// The process-wide pool shared by encode paths and transport writers.
pub fn global() -> &'static BufPool {
    static GLOBAL: OnceLock<BufPool> = OnceLock::new();
    GLOBAL.get_or_init(BufPool::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_recycles_storage() {
        let pool = BufPool::new(4, 1024);
        let mut buf = pool.get();
        assert_eq!(pool.stats().misses, 1);
        buf.extend_from_slice(&[7u8; 100]);
        pool.put(buf);
        assert_eq!(pool.idle(), 1);

        let recycled = pool.get();
        assert!(recycled.is_empty(), "recycled buffers come back cleared");
        assert!(recycled.capacity() >= 100, "allocation survives the round trip");
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn pool_caps_are_enforced() {
        let pool = BufPool::new(2, 64);
        for _ in 0..3 {
            let mut b = BytesMut::with_capacity(32);
            b.extend_from_slice(&[0u8; 8]);
            pool.put(b);
        }
        assert_eq!(pool.idle(), 2, "third buffer dropped, pool full");

        let mut jumbo = BytesMut::with_capacity(128);
        jumbo.extend_from_slice(&[0u8; 65]);
        pool.put(jumbo);
        assert_eq!(pool.idle(), 2, "oversized buffer dropped");
        assert!(pool.stats().discards >= 2);
    }

    #[test]
    fn reclaim_recovers_unique_bytes_only() {
        let pool = BufPool::new(4, 1024);
        pool.reclaim(Bytes::from(vec![1u8; 16]));
        assert_eq!(pool.idle(), 1);

        let shared = Bytes::from(vec![2u8; 16]);
        let _other = shared.clone();
        pool.reclaim(shared);
        assert_eq!(pool.idle(), 1, "shared storage cannot be reclaimed");
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let pool = BufPool::new(4, 1024);
        pool.put(BytesMut::new());
        assert_eq!(pool.idle(), 0);
    }
}
