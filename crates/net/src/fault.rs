//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] describes how a transport should misbehave: per-link
//! drop probability, duplication, reordering (extra per-message delay that
//! lets later messages overtake), latency jitter, and timed network
//! partitions that heal. Decisions are drawn from a seeded deterministic
//! generator ([`DetRng`]), so a chaos run replays **bit-identically** from
//! its seed: same plan + same traffic order ⇒ same faults.
//!
//! Two consumers share this module:
//!
//! * the virtual-time simulator (`sdso-sim`) consults a [`FaultInjector`]
//!   inside its scheduler, where the total order of sends makes the fault
//!   sequence a pure function of the seed;
//! * [`FaultyEndpoint`](crate::faulty::FaultyEndpoint) wraps any real
//!   [`Endpoint`](crate::Endpoint) with the same plan for wall-clock runs.

use crate::endpoint::NodeId;
use crate::time::{SimInstant, SimSpan};

/// A deterministic 64-bit generator (SplitMix64) driving fault decisions.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            // Keep the stream position independent of the probability
            // value: every decision consumes exactly one draw.
            self.next_u64();
            return false;
        }
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniform value in `[0, bound]`.
    pub fn up_to(&mut self, bound: u64) -> u64 {
        let draw = self.next_u64();
        if bound == u64::MAX {
            draw
        } else {
            draw % (bound + 1)
        }
    }
}

/// A timed network partition: during `[from, until)` the nodes in `split`
/// cannot exchange messages with the nodes outside it (in either
/// direction). The partition heals at `until`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// One side of the partition; the other side is its complement.
    pub split: Vec<NodeId>,
    /// When the partition begins.
    pub from: SimInstant,
    /// When it heals.
    pub until: SimInstant,
}

impl Partition {
    /// Whether a message from `a` to `b` sent at `at` is severed.
    pub fn severs(&self, a: NodeId, b: NodeId, at: SimInstant) -> bool {
        if at < self.from || at >= self.until {
            return false;
        }
        let a_in = self.split.contains(&a);
        let b_in = self.split.contains(&b);
        a_in != b_in
    }
}

/// A scheduled process crash (and optional restart), in the driver's tick
/// domain.
///
/// Crash events are *not* interpreted by the message-level
/// [`FaultInjector`]: they describe process death, which drivers realise
/// at the membership layer (crash = abrupt leave at `crash_tick`; restart
/// = late join at `restart_tick` with WAL-carried state). Keeping them on
/// the plan gives one seeded artifact that replays both the message chaos
/// and the process-death schedule bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// The process that dies.
    pub node: NodeId,
    /// The driver tick at whose barrier the process dies.
    pub crash_tick: u64,
    /// The driver tick at whose barrier the process rejoins, if it ever
    /// restarts.
    pub restart_tick: Option<u64>,
}

/// A declarative description of how links should misbehave.
///
/// All probabilities are per message. The zero plan (see
/// [`FaultPlan::new`]) injects nothing; builder methods switch individual
/// fault classes on. Identical plans with identical seeds produce
/// identical fault sequences for identical traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the decision stream.
    pub seed: u64,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a message is delivered twice.
    pub dup_prob: f64,
    /// Probability a message is held back by up to `reorder_window`,
    /// letting messages sent after it overtake it.
    pub reorder_prob: f64,
    /// Maximum hold-back applied to reordered messages.
    pub reorder_window: SimSpan,
    /// Uniform extra latency in `[0, jitter]` added to every delivery.
    pub jitter: SimSpan,
    /// Timed partitions; messages crossing an active partition are
    /// dropped (and counted as injected drops).
    pub partitions: Vec<Partition>,
    /// Scheduled process crashes/restarts, realised by crash-aware
    /// drivers (not by the message-level injector).
    pub crashes: Vec<CrashEvent>,
}

impl FaultPlan {
    /// The no-fault plan with the given decision seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_window: SimSpan::ZERO,
            jitter: SimSpan::ZERO,
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// Sets the per-message drop probability.
    pub fn with_drop(mut self, prob: f64) -> Self {
        self.drop_prob = prob;
        self
    }

    /// Sets the per-message duplication probability.
    pub fn with_dup(mut self, prob: f64) -> Self {
        self.dup_prob = prob;
        self
    }

    /// Reorders messages: with probability `prob` a message is held back
    /// by a uniform span in `[0, window]`.
    pub fn with_reorder(mut self, prob: f64, window: SimSpan) -> Self {
        self.reorder_prob = prob;
        self.reorder_window = window;
        self
    }

    /// Adds uniform latency jitter in `[0, jitter]` to every message.
    pub fn with_jitter(mut self, jitter: SimSpan) -> Self {
        self.jitter = jitter;
        self
    }

    /// Adds a partition separating `split` from everyone else during
    /// `[from, until)`.
    pub fn with_partition(
        mut self,
        split: impl Into<Vec<NodeId>>,
        from: SimInstant,
        until: SimInstant,
    ) -> Self {
        self.partitions.push(Partition { split: split.into(), from, until });
        self
    }

    /// Schedules a process crash at `crash_tick`, with an optional restart
    /// at `restart_tick` (which must be strictly later).
    ///
    /// # Panics
    ///
    /// Panics if `restart_tick <= crash_tick`, or if `node` already has a
    /// crash scheduled (one crash/restart cycle per node per plan).
    pub fn with_crash(mut self, node: NodeId, crash_tick: u64, restart_tick: Option<u64>) -> Self {
        if let Some(r) = restart_tick {
            assert!(r > crash_tick, "restart tick {r} must follow crash tick {crash_tick}");
        }
        assert!(
            self.crash_of(node).is_none(),
            "node {node} already has a crash scheduled in this plan"
        );
        self.crashes.push(CrashEvent { node, crash_tick, restart_tick });
        self
    }

    /// Adds `count` seeded crash/restart events over nodes `1..n` (node 0
    /// is protected so a stable survivor always exists), with crash ticks
    /// drawn from `[min_tick, max_tick)` and each crash followed by a
    /// restart 2–5 ticks later (capped below `max_tick`).
    ///
    /// The schedule is drawn from a *separate* generator salted off the
    /// plan seed, so adding crashes never shifts the message-level
    /// decision stream — `judge()` verdicts are unchanged.
    pub fn with_seeded_crashes(
        mut self,
        n: usize,
        count: usize,
        min_tick: u64,
        max_tick: u64,
    ) -> Self {
        const CRASH_STREAM_SALT: u64 = 0xC4A5_11DE_AD5E_ED00;
        assert!(n > 1, "need at least two nodes to crash one");
        assert!(min_tick < max_tick, "empty crash-tick window");
        let mut rng = DetRng::new(self.seed ^ CRASH_STREAM_SALT);
        let mut placed = 0usize;
        while placed < count {
            let node = (1 + rng.up_to(n as u64 - 2)) as NodeId;
            if self.crash_of(node).is_some() {
                // Already crashing: the window is per-node single-shot.
                if self.crashes.len() >= n - 1 {
                    break;
                }
                continue;
            }
            let crash_tick = min_tick + rng.up_to(max_tick - min_tick - 1);
            let gap = 2 + rng.up_to(3);
            let restart = crash_tick + gap;
            let restart_tick = if restart < max_tick { Some(restart) } else { None };
            self.crashes.push(CrashEvent { node, crash_tick, restart_tick });
            placed += 1;
        }
        self
    }

    /// The crash event scheduled for `node`, if any.
    pub fn crash_of(&self, node: NodeId) -> Option<&CrashEvent> {
        self.crashes.iter().find(|c| c.node == node)
    }

    /// Every node with a scheduled crash, in schedule order.
    pub fn crashing_nodes(&self) -> Vec<NodeId> {
        self.crashes.iter().map(|c| c.node).collect()
    }

    /// Whether the plan can inject anything at all.
    pub fn is_noop(&self) -> bool {
        self.drop_prob <= 0.0
            && self.dup_prob <= 0.0
            && self.reorder_prob <= 0.0
            && self.jitter == SimSpan::ZERO
            && self.partitions.is_empty()
            && self.crashes.is_empty()
    }

    /// Whether `a → b` traffic at `at` crosses an active partition.
    pub fn severed(&self, a: NodeId, b: NodeId, at: SimInstant) -> bool {
        self.partitions.iter().any(|p| p.severs(a, b, at))
    }
}

/// What the injector decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Verdict {
    /// Deliver zero copies (random drop or active partition).
    pub dropped: bool,
    /// Deliver one extra copy (ignored when `dropped`).
    pub duplicated: bool,
    /// Extra delivery delay (reorder hold-back + jitter).
    pub extra_delay: SimSpan,
}

/// A [`FaultPlan`] paired with its decision stream.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: DetRng,
}

impl FaultInjector {
    /// Creates an injector drawing decisions from the plan's seed.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = DetRng::new(plan.seed);
        FaultInjector { plan, rng }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Judges one message from `a` to `b` sent at `at`.
    ///
    /// Consumes a fixed number of draws per call regardless of outcome, so
    /// the decision stream — and therefore the whole run — replays
    /// identically from the seed.
    pub fn judge(&mut self, a: NodeId, b: NodeId, at: SimInstant) -> Verdict {
        let dropped_by_chance = self.rng.chance(self.plan.drop_prob);
        let duplicated = self.rng.chance(self.plan.dup_prob);
        let reordered = self.rng.chance(self.plan.reorder_prob);
        let hold_back = self.rng.up_to(self.plan.reorder_window.as_micros());
        let jitter = self.rng.up_to(self.plan.jitter.as_micros());
        let dropped = dropped_by_chance || self.plan.severed(a, b, at);
        Verdict {
            dropped,
            duplicated: duplicated && !dropped,
            extra_delay: SimSpan::from_micros(if reordered { hold_back } else { 0 } + jitter),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::new(7));
        for i in 0..100u16 {
            let v = inj.judge(0, 1, SimInstant::from_micros(u64::from(i)));
            assert_eq!(v, Verdict::default());
        }
        assert!(FaultPlan::new(7).is_noop());
    }

    #[test]
    fn same_seed_same_verdicts() {
        let plan = FaultPlan::new(42)
            .with_drop(0.3)
            .with_dup(0.2)
            .with_reorder(0.5, SimSpan::from_millis(5))
            .with_jitter(SimSpan::from_micros(300));
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for i in 0..1000u64 {
            let at = SimInstant::from_micros(i);
            assert_eq!(a.judge(0, 1, at), b.judge(0, 1, at));
        }
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let mut inj = FaultInjector::new(FaultPlan::new(9).with_drop(0.25));
        let dropped =
            (0..4000).filter(|&i| inj.judge(0, 1, SimInstant::from_micros(i)).dropped).count();
        assert!((700..1300).contains(&dropped), "25% of 4000, got {dropped}");
    }

    #[test]
    fn partitions_sever_both_directions_then_heal() {
        let plan = FaultPlan::new(1).with_partition(
            vec![0, 1],
            SimInstant::from_micros(100),
            SimInstant::from_micros(200),
        );
        // Inside the window: split ↔ complement severed, intra-side fine.
        let at = SimInstant::from_micros(150);
        assert!(plan.severed(0, 2, at));
        assert!(plan.severed(2, 0, at));
        assert!(!plan.severed(0, 1, at));
        assert!(!plan.severed(2, 3, at));
        // Outside the window: healed.
        assert!(!plan.severed(0, 2, SimInstant::from_micros(99)));
        assert!(!plan.severed(0, 2, SimInstant::from_micros(200)));
    }

    #[test]
    fn partition_drops_count_as_drops() {
        let plan = FaultPlan::new(3).with_partition(
            vec![0],
            SimInstant::ZERO,
            SimInstant::from_micros(1_000_000),
        );
        let mut inj = FaultInjector::new(plan);
        let v = inj.judge(0, 1, SimInstant::from_micros(10));
        assert!(v.dropped);
        assert!(!v.duplicated);
    }

    #[test]
    fn crash_events_do_not_shift_the_decision_stream() {
        // The crash schedule is drawn from a salted generator at plan
        // construction: message-level verdicts must be bit-identical with
        // and without crashes in the plan.
        let base = FaultPlan::new(123).with_drop(0.3).with_dup(0.1);
        let mut plain = FaultInjector::new(base.clone());
        let mut crashing = FaultInjector::new(base.with_seeded_crashes(16, 3, 4, 40));
        for i in 0..500u64 {
            let at = SimInstant::from_micros(i);
            assert_eq!(plain.judge(0, 1, at), crashing.judge(0, 1, at));
        }
    }

    #[test]
    fn seeded_crashes_replay_identically_and_respect_bounds() {
        let a = FaultPlan::new(9).with_seeded_crashes(16, 4, 5, 30);
        let b = FaultPlan::new(9).with_seeded_crashes(16, 4, 5, 30);
        assert_eq!(a.crashes, b.crashes, "same seed, same crash schedule");
        assert_eq!(a.crashes.len(), 4);
        for c in &a.crashes {
            assert!(c.node >= 1 && (c.node as usize) < 16, "node 0 is protected");
            assert!((5..30).contains(&c.crash_tick));
            if let Some(r) = c.restart_tick {
                assert!(r > c.crash_tick && r < 30);
            }
        }
        // Per-node single-shot: no node crashes twice.
        let nodes = a.crashing_nodes();
        let distinct: std::collections::BTreeSet<_> = nodes.iter().collect();
        assert_eq!(distinct.len(), nodes.len());
    }

    #[test]
    fn with_crash_builder_and_queries() {
        let plan = FaultPlan::new(1).with_crash(3, 10, Some(14)).with_crash(5, 20, None);
        assert!(!plan.is_noop(), "a crash schedule is not a no-op plan");
        assert_eq!(plan.crash_of(3).unwrap().restart_tick, Some(14));
        assert_eq!(plan.crash_of(5).unwrap().restart_tick, None);
        assert!(plan.crash_of(0).is_none());
        assert_eq!(plan.crashing_nodes(), vec![3, 5]);
    }

    #[test]
    fn decision_stream_is_outcome_independent() {
        // Two plans differing only in jitter must agree on every drop
        // decision: each judge() call consumes a fixed number of draws, so
        // changing one fault class never shifts the others' stream.
        let base = FaultPlan::new(77).with_drop(0.4);
        let mut plain = FaultInjector::new(base.clone());
        let mut jittered = FaultInjector::new(base.with_jitter(SimSpan::from_micros(500)));
        for i in 0..500u64 {
            let at = SimInstant::from_micros(i);
            assert_eq!(plain.judge(0, 1, at).dropped, jittered.judge(0, 1, at).dropped);
        }
    }
}
