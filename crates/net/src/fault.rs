//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] describes how a transport should misbehave: per-link
//! drop probability, duplication, reordering (extra per-message delay that
//! lets later messages overtake), latency jitter, and timed network
//! partitions that heal. Decisions are drawn from a seeded deterministic
//! generator ([`DetRng`]), so a chaos run replays **bit-identically** from
//! its seed: same plan + same traffic order ⇒ same faults.
//!
//! Two consumers share this module:
//!
//! * the virtual-time simulator (`sdso-sim`) consults a [`FaultInjector`]
//!   inside its scheduler, where the total order of sends makes the fault
//!   sequence a pure function of the seed;
//! * [`FaultyEndpoint`](crate::faulty::FaultyEndpoint) wraps any real
//!   [`Endpoint`](crate::Endpoint) with the same plan for wall-clock runs.

use crate::endpoint::NodeId;
use crate::time::{SimInstant, SimSpan};

/// A deterministic 64-bit generator (SplitMix64) driving fault decisions.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            // Keep the stream position independent of the probability
            // value: every decision consumes exactly one draw.
            self.next_u64();
            return false;
        }
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniform value in `[0, bound]`.
    pub fn up_to(&mut self, bound: u64) -> u64 {
        let draw = self.next_u64();
        if bound == u64::MAX {
            draw
        } else {
            draw % (bound + 1)
        }
    }
}

/// A timed network partition: during `[from, until)` the nodes in `split`
/// cannot exchange messages with the nodes outside it (in either
/// direction). The partition heals at `until`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// One side of the partition; the other side is its complement.
    pub split: Vec<NodeId>,
    /// When the partition begins.
    pub from: SimInstant,
    /// When it heals.
    pub until: SimInstant,
}

impl Partition {
    /// Whether a message from `a` to `b` sent at `at` is severed.
    pub fn severs(&self, a: NodeId, b: NodeId, at: SimInstant) -> bool {
        if at < self.from || at >= self.until {
            return false;
        }
        let a_in = self.split.contains(&a);
        let b_in = self.split.contains(&b);
        a_in != b_in
    }
}

/// A declarative description of how links should misbehave.
///
/// All probabilities are per message. The zero plan (see
/// [`FaultPlan::new`]) injects nothing; builder methods switch individual
/// fault classes on. Identical plans with identical seeds produce
/// identical fault sequences for identical traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the decision stream.
    pub seed: u64,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a message is delivered twice.
    pub dup_prob: f64,
    /// Probability a message is held back by up to `reorder_window`,
    /// letting messages sent after it overtake it.
    pub reorder_prob: f64,
    /// Maximum hold-back applied to reordered messages.
    pub reorder_window: SimSpan,
    /// Uniform extra latency in `[0, jitter]` added to every delivery.
    pub jitter: SimSpan,
    /// Timed partitions; messages crossing an active partition are
    /// dropped (and counted as injected drops).
    pub partitions: Vec<Partition>,
}

impl FaultPlan {
    /// The no-fault plan with the given decision seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_window: SimSpan::ZERO,
            jitter: SimSpan::ZERO,
            partitions: Vec::new(),
        }
    }

    /// Sets the per-message drop probability.
    pub fn with_drop(mut self, prob: f64) -> Self {
        self.drop_prob = prob;
        self
    }

    /// Sets the per-message duplication probability.
    pub fn with_dup(mut self, prob: f64) -> Self {
        self.dup_prob = prob;
        self
    }

    /// Reorders messages: with probability `prob` a message is held back
    /// by a uniform span in `[0, window]`.
    pub fn with_reorder(mut self, prob: f64, window: SimSpan) -> Self {
        self.reorder_prob = prob;
        self.reorder_window = window;
        self
    }

    /// Adds uniform latency jitter in `[0, jitter]` to every message.
    pub fn with_jitter(mut self, jitter: SimSpan) -> Self {
        self.jitter = jitter;
        self
    }

    /// Adds a partition separating `split` from everyone else during
    /// `[from, until)`.
    pub fn with_partition(
        mut self,
        split: impl Into<Vec<NodeId>>,
        from: SimInstant,
        until: SimInstant,
    ) -> Self {
        self.partitions.push(Partition { split: split.into(), from, until });
        self
    }

    /// Whether the plan can inject anything at all.
    pub fn is_noop(&self) -> bool {
        self.drop_prob <= 0.0
            && self.dup_prob <= 0.0
            && self.reorder_prob <= 0.0
            && self.jitter == SimSpan::ZERO
            && self.partitions.is_empty()
    }

    /// Whether `a → b` traffic at `at` crosses an active partition.
    pub fn severed(&self, a: NodeId, b: NodeId, at: SimInstant) -> bool {
        self.partitions.iter().any(|p| p.severs(a, b, at))
    }
}

/// What the injector decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Verdict {
    /// Deliver zero copies (random drop or active partition).
    pub dropped: bool,
    /// Deliver one extra copy (ignored when `dropped`).
    pub duplicated: bool,
    /// Extra delivery delay (reorder hold-back + jitter).
    pub extra_delay: SimSpan,
}

/// A [`FaultPlan`] paired with its decision stream.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: DetRng,
}

impl FaultInjector {
    /// Creates an injector drawing decisions from the plan's seed.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = DetRng::new(plan.seed);
        FaultInjector { plan, rng }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Judges one message from `a` to `b` sent at `at`.
    ///
    /// Consumes a fixed number of draws per call regardless of outcome, so
    /// the decision stream — and therefore the whole run — replays
    /// identically from the seed.
    pub fn judge(&mut self, a: NodeId, b: NodeId, at: SimInstant) -> Verdict {
        let dropped_by_chance = self.rng.chance(self.plan.drop_prob);
        let duplicated = self.rng.chance(self.plan.dup_prob);
        let reordered = self.rng.chance(self.plan.reorder_prob);
        let hold_back = self.rng.up_to(self.plan.reorder_window.as_micros());
        let jitter = self.rng.up_to(self.plan.jitter.as_micros());
        let dropped = dropped_by_chance || self.plan.severed(a, b, at);
        Verdict {
            dropped,
            duplicated: duplicated && !dropped,
            extra_delay: SimSpan::from_micros(if reordered { hold_back } else { 0 } + jitter),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::new(7));
        for i in 0..100u16 {
            let v = inj.judge(0, 1, SimInstant::from_micros(u64::from(i)));
            assert_eq!(v, Verdict::default());
        }
        assert!(FaultPlan::new(7).is_noop());
    }

    #[test]
    fn same_seed_same_verdicts() {
        let plan = FaultPlan::new(42)
            .with_drop(0.3)
            .with_dup(0.2)
            .with_reorder(0.5, SimSpan::from_millis(5))
            .with_jitter(SimSpan::from_micros(300));
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for i in 0..1000u64 {
            let at = SimInstant::from_micros(i);
            assert_eq!(a.judge(0, 1, at), b.judge(0, 1, at));
        }
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let mut inj = FaultInjector::new(FaultPlan::new(9).with_drop(0.25));
        let dropped =
            (0..4000).filter(|&i| inj.judge(0, 1, SimInstant::from_micros(i)).dropped).count();
        assert!((700..1300).contains(&dropped), "25% of 4000, got {dropped}");
    }

    #[test]
    fn partitions_sever_both_directions_then_heal() {
        let plan = FaultPlan::new(1).with_partition(
            vec![0, 1],
            SimInstant::from_micros(100),
            SimInstant::from_micros(200),
        );
        // Inside the window: split ↔ complement severed, intra-side fine.
        let at = SimInstant::from_micros(150);
        assert!(plan.severed(0, 2, at));
        assert!(plan.severed(2, 0, at));
        assert!(!plan.severed(0, 1, at));
        assert!(!plan.severed(2, 3, at));
        // Outside the window: healed.
        assert!(!plan.severed(0, 2, SimInstant::from_micros(99)));
        assert!(!plan.severed(0, 2, SimInstant::from_micros(200)));
    }

    #[test]
    fn partition_drops_count_as_drops() {
        let plan = FaultPlan::new(3).with_partition(
            vec![0],
            SimInstant::ZERO,
            SimInstant::from_micros(1_000_000),
        );
        let mut inj = FaultInjector::new(plan);
        let v = inj.judge(0, 1, SimInstant::from_micros(10));
        assert!(v.dropped);
        assert!(!v.duplicated);
    }

    #[test]
    fn decision_stream_is_outcome_independent() {
        // Two plans differing only in jitter must agree on every drop
        // decision: each judge() call consumes a fixed number of draws, so
        // changing one fault class never shifts the others' stream.
        let base = FaultPlan::new(77).with_drop(0.4);
        let mut plain = FaultInjector::new(base.clone());
        let mut jittered = FaultInjector::new(base.with_jitter(SimSpan::from_micros(500)));
        for i in 0..500u64 {
            let at = SimInstant::from_micros(i);
            assert_eq!(plain.judge(0, 1, at).dropped, jittered.judge(0, 1, at).dropped);
        }
    }
}
