//! Length-prefixed framing for stream transports.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! +---------+--------+---------+----------+----------------+
//! | len u32 | from   | class   | wire_len | body           |
//! |         | u16    | u8      | u32      | len - 7 bytes  |
//! +---------+--------+---------+----------+----------------+
//! ```
//!
//! `len` counts everything after itself. `wire_len` carries the *modelled*
//! message size (see [`Payload::wire_len`]) so that metrics agree between
//! real and simulated transports.

//! A *batch* is a plain concatenation of frames: each sub-frame keeps its own
//! length prefix, so a receiver consumes a batch by calling [`read_frame`] in
//! a loop — no separate batch header exists to parse or to corrupt.

use std::io::{Read, Write};

use bytes::{Bytes, BytesMut};

use crate::endpoint::NodeId;
use crate::error::NetError;
use crate::message::{Incoming, MsgClass, Payload};

/// Header bytes following the length prefix.
const HEADER: usize = 2 + 1 + 4;

/// Maximum accepted frame body, a defence against corrupt length prefixes.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Writes one framed message to `w`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_frame<W: Write>(w: &mut W, from: NodeId, payload: &Payload) -> Result<(), NetError> {
    let body_len = payload.bytes.len();
    let len = (HEADER + body_len) as u32;
    let mut head = [0u8; 4 + HEADER];
    head[0..4].copy_from_slice(&len.to_le_bytes());
    head[4..6].copy_from_slice(&from.to_le_bytes());
    head[6] = payload.class.to_wire();
    head[7..11].copy_from_slice(&payload.wire_len.to_le_bytes());
    w.write_all(&head)?;
    w.write_all(&payload.bytes)?;
    w.flush()?;
    Ok(())
}

/// Appends one framed message to `out`, byte-identical to what
/// [`write_frame`] writes. sdso-check: hot-path
pub fn append_frame(out: &mut BytesMut, from: NodeId, payload: &Payload) {
    let body_len = payload.bytes.len();
    let len = (HEADER + body_len) as u32;
    let mut head = [0u8; 4 + HEADER];
    head[0..4].copy_from_slice(&len.to_le_bytes());
    head[4..6].copy_from_slice(&from.to_le_bytes());
    head[6] = payload.class.to_wire();
    head[7..11].copy_from_slice(&payload.wire_len.to_le_bytes());
    out.extend_from_slice(&head);
    out.extend_from_slice(&payload.bytes);
}

/// Writes `payloads` as one batch — length-prefixed sub-frames concatenated
/// into `scratch` (cleared first) and flushed with a single
/// `write_all` + `flush`, instead of one write-and-flush per message.
///
/// The byte stream is identical to calling [`write_frame`] once per payload;
/// receivers keep using [`read_frame`] unchanged. sdso-check: hot-path
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_batch<W: Write>(
    w: &mut W,
    from: NodeId,
    payloads: &[Payload],
    scratch: &mut BytesMut,
) -> Result<(), NetError> {
    scratch.clear();
    for payload in payloads {
        append_frame(scratch, from, payload);
    }
    w.write_all(scratch)?;
    w.flush()?;
    Ok(())
}

/// Reads one framed message from `r`, blocking until complete.
///
/// # Errors
///
/// Returns [`NetError::Disconnected`] on a clean EOF at a frame boundary,
/// [`NetError::Codec`] on malformed frames, and [`NetError::Io`] otherwise.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Incoming, NetError> {
    // Fill the length prefix byte by byte so that EOF *at* a frame boundary
    // (a clean disconnect) is distinguishable from EOF *inside* the prefix
    // (a torn frame, reported as an I/O error).
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Err(NetError::Disconnected),
            Ok(0) => {
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length prefix",
                )));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if !(HEADER..=MAX_FRAME).contains(&len) {
        return Err(codec_bad_len(len));
    }
    let mut frame = vec![0u8; len];
    r.read_exact(&mut frame)?;
    let from = NodeId::from_le_bytes([frame[0], frame[1]]);
    let class = MsgClass::from_wire(frame[2]).ok_or_else(|| codec_bad_class(frame[2]))?;
    let wire_len = u32::from_le_bytes([frame[3], frame[4], frame[5], frame[6]]);
    let body = Bytes::copy_from_slice(&frame[HEADER..]);
    let wire_len = wire_len.max(body.len() as u32);
    Ok(Incoming { from, payload: Payload { class, bytes: body, wire_len } })
}

/// Malformed-length error, out of line so decoders stay allocation-free on
/// the hot path (the `format!` lives here, behind `#[cold]`).
#[cold]
fn codec_bad_len(len: usize) -> NetError {
    NetError::Codec(format!("invalid frame length {len}"))
}

/// Malformed-class error, out of line for the same reason.
#[cold]
fn codec_bad_class(byte: u8) -> NetError {
    NetError::Codec(format!("invalid message class {byte:#x}"))
}

/// Decodes one frame from `buf` starting at `*pos` without consuming input
/// beyond the frame. On success advances `*pos` past the frame and returns
/// the message; returns `Ok(None)` when `buf[*pos..]` holds only a frame
/// prefix (the caller should read more bytes and retry).
///
/// This is the nonblocking sibling of [`read_frame`] for reactor-style
/// transports that accumulate socket reads in a flat buffer: the caller owns
/// compaction (dropping `buf[..pos]` once a read burst is drained), which
/// keeps the decoder free of any buffer-management policy.
///
/// # Errors
///
/// Returns [`NetError::Codec`] on a malformed length or class byte, exactly
/// as [`read_frame`] would.
pub fn decode_frame_at(buf: &[u8], pos: &mut usize) -> Result<Option<Incoming>, NetError> {
    let rest = &buf[*pos..];
    if rest.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    if !(HEADER..=MAX_FRAME).contains(&len) {
        return Err(codec_bad_len(len));
    }
    if rest.len() < 4 + len {
        return Ok(None);
    }
    let frame = &rest[4..4 + len];
    let from = NodeId::from_le_bytes([frame[0], frame[1]]);
    let class = MsgClass::from_wire(frame[2]).ok_or_else(|| codec_bad_class(frame[2]))?;
    let wire_len = u32::from_le_bytes([frame[3], frame[4], frame[5], frame[6]]);
    let body = Bytes::copy_from_slice(&frame[HEADER..]);
    let wire_len = wire_len.max(body.len() as u32);
    *pos += 4 + len;
    Ok(Some(Incoming { from, payload: Payload { class, bytes: body, wire_len } }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip(payload: Payload) -> Incoming {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, &payload).unwrap();
        read_frame(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn frame_roundtrip_preserves_everything() {
        let p = Payload::data(vec![9u8; 100]).with_wire_len(2048);
        let got = roundtrip(p.clone());
        assert_eq!(got.from, 3);
        assert_eq!(got.payload, p);
    }

    #[test]
    fn empty_body_roundtrip() {
        let got = roundtrip(Payload::control(Vec::new()));
        assert_eq!(got.payload.bytes.len(), 0);
        assert_eq!(got.payload.class, MsgClass::Control);
    }

    #[test]
    fn eof_at_boundary_is_disconnected() {
        let err = read_frame(&mut Cursor::new(Vec::<u8>::new())).unwrap_err();
        assert!(matches!(err, NetError::Disconnected));
    }

    #[test]
    fn truncated_body_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0, &Payload::data(vec![1u8; 50])).unwrap();
        buf.truncate(buf.len() - 10);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, NetError::Io(_)));
    }

    #[test]
    fn hostile_length_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, NetError::Codec(_)));
    }

    #[test]
    fn invalid_class_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0, &Payload::control(vec![1])).unwrap();
        buf[6] = 0xFF; // corrupt the class byte
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, NetError::Codec(_)));
    }

    #[test]
    fn short_length_prefix_is_io_error() {
        // EOF strictly inside the 4-byte length prefix is a torn frame, not
        // a clean disconnect.
        for cut in 1..4usize {
            let mut buf = Vec::new();
            write_frame(&mut buf, 0, &Payload::data(vec![7u8; 8])).unwrap();
            buf.truncate(cut);
            let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
            assert!(matches!(err, NetError::Io(_)), "cut at {cut}: {err:?}");
        }
    }

    #[test]
    fn undersized_length_rejected() {
        // A length smaller than the fixed header can never hold a frame.
        for len in 0..HEADER as u32 {
            let mut buf = Vec::new();
            buf.extend_from_slice(&len.to_le_bytes());
            buf.extend_from_slice(&vec![0u8; len as usize]);
            let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
            assert!(matches!(err, NetError::Codec(_)), "len {len}: {err:?}");
        }
    }

    #[test]
    fn every_truncation_errors_and_never_panics() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 5, &Payload::data(vec![0xAB; 32]).with_wire_len(2048)).unwrap();
        for cut in 0..buf.len() {
            let mut short = buf.clone();
            short.truncate(cut);
            assert!(
                read_frame(&mut Cursor::new(short)).is_err(),
                "prefix of {cut} bytes must not parse as a complete frame"
            );
        }
        // The untruncated frame still parses.
        assert!(read_frame(&mut Cursor::new(buf)).is_ok());
    }

    fn sample_batch() -> Vec<Payload> {
        vec![
            Payload::data(vec![1u8; 40]).with_wire_len(2048),
            Payload::control(vec![2u8; 3]),
            Payload::data(Vec::new()),
            Payload::control(vec![4u8; 17]).with_wire_len(64),
        ]
    }

    #[test]
    fn batch_is_byte_identical_to_sequential_frames() {
        let payloads = sample_batch();
        let mut sequential = Vec::new();
        for p in &payloads {
            write_frame(&mut sequential, 9, p).unwrap();
        }
        let mut batched = Vec::new();
        let mut scratch = BytesMut::new();
        write_batch(&mut batched, 9, &payloads, &mut scratch).unwrap();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn batch_roundtrips_through_read_frame() {
        let payloads = sample_batch();
        let mut buf = Vec::new();
        let mut scratch = BytesMut::new();
        write_batch(&mut buf, 7, &payloads, &mut scratch).unwrap();
        let mut cursor = Cursor::new(buf);
        for expect in &payloads {
            let got = read_frame(&mut cursor).unwrap();
            assert_eq!(got.from, 7);
            assert_eq!(got.payload.bytes, expect.bytes);
            assert_eq!(got.payload.class, expect.class);
            assert_eq!(got.payload.wire_len(), expect.wire_len());
        }
        assert!(matches!(read_frame(&mut cursor).unwrap_err(), NetError::Disconnected));
    }

    #[test]
    fn batch_scratch_is_reusable_across_batches() {
        let mut scratch = BytesMut::new();
        let mut first = Vec::new();
        write_batch(&mut first, 1, &sample_batch(), &mut scratch).unwrap();
        let cap = scratch.capacity();
        // A smaller second batch must not carry stale bytes from the first.
        let small = vec![Payload::control(vec![9u8; 2])];
        let mut second = Vec::new();
        write_batch(&mut second, 1, &small, &mut scratch).unwrap();
        assert_eq!(scratch.capacity(), cap, "no reallocation for a smaller batch");
        let got = read_frame(&mut Cursor::new(second)).unwrap();
        assert_eq!(&got.payload.bytes[..], &[9u8, 9]);
    }

    #[test]
    fn truncated_batch_errors_at_every_cut_and_never_panics() {
        let payloads = sample_batch();
        let mut buf = Vec::new();
        let mut scratch = BytesMut::new();
        write_batch(&mut buf, 2, &payloads, &mut scratch).unwrap();
        for cut in 0..buf.len() {
            let mut short = buf.clone();
            short.truncate(cut);
            let mut cursor = Cursor::new(short);
            // Reading the truncated batch must end in an error — never a
            // panic, never a phantom extra message.
            let mut parsed = 0usize;
            let err = loop {
                match read_frame(&mut cursor) {
                    Ok(_) => parsed += 1,
                    Err(e) => break e,
                }
            };
            assert!(parsed <= payloads.len(), "cut {cut} yielded phantom frames");
            if cut == 0 {
                assert!(matches!(err, NetError::Disconnected));
            }
        }
    }

    #[test]
    fn corrupt_mid_batch_header_poisons_only_the_tail() {
        let payloads = sample_batch();
        let mut buf = Vec::new();
        let mut scratch = BytesMut::new();
        write_batch(&mut buf, 2, &payloads, &mut scratch).unwrap();
        // Corrupt the second sub-frame's class byte: frame 1 still parses,
        // frame 2 errors.
        let first_len = 4 + HEADER + payloads[0].bytes.len();
        buf[first_len + 6] = 0xFF;
        let mut cursor = Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_ok());
        assert!(matches!(read_frame(&mut cursor).unwrap_err(), NetError::Codec(_)));
    }

    #[test]
    fn empty_batch_writes_nothing() {
        let mut buf = Vec::new();
        let mut scratch = BytesMut::new();
        scratch.extend_from_slice(b"stale");
        write_batch(&mut buf, 0, &[], &mut scratch).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn decode_frame_at_matches_read_frame() {
        let payloads = sample_batch();
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, 4, p).unwrap();
        }
        let mut pos = 0usize;
        let mut cursor = Cursor::new(buf.clone());
        for _ in &payloads {
            let inc = decode_frame_at(&buf, &mut pos).unwrap().unwrap();
            let blocking = read_frame(&mut cursor).unwrap();
            assert_eq!(inc.from, blocking.from);
            assert_eq!(inc.payload, blocking.payload);
        }
        assert_eq!(pos, buf.len());
        assert!(decode_frame_at(&buf, &mut pos).unwrap().is_none());
    }

    #[test]
    fn decode_frame_at_every_partial_prefix_returns_none() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, &Payload::data(vec![3u8; 25]).with_wire_len(99)).unwrap();
        for cut in 0..buf.len() {
            let mut pos = 0usize;
            let got = decode_frame_at(&buf[..cut], &mut pos).unwrap();
            assert!(got.is_none(), "prefix of {cut} bytes decoded a frame");
            assert_eq!(pos, 0, "pos must not move on a partial frame");
        }
    }

    #[test]
    fn decode_frame_at_rejects_corruption_without_advancing() {
        let mut good = Vec::new();
        write_frame(&mut good, 1, &Payload::control(vec![1, 2])).unwrap();

        let mut hostile = good.clone();
        hostile[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut pos = 0usize;
        assert!(matches!(decode_frame_at(&hostile, &mut pos), Err(NetError::Codec(_))));
        assert_eq!(pos, 0);

        let mut bad_class = good.clone();
        bad_class[6] = 0xFF;
        let mut pos = 0usize;
        assert!(matches!(decode_frame_at(&bad_class, &mut pos), Err(NetError::Codec(_))));
        assert_eq!(pos, 0);
    }

    #[test]
    fn decode_frame_at_resumes_mid_buffer() {
        // Two frames; decoding starts after the first one.
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, &Payload::data(vec![1u8; 10])).unwrap();
        let first_end = buf.len();
        write_frame(&mut buf, 2, &Payload::control(vec![2u8; 4])).unwrap();
        let mut pos = first_end;
        let inc = decode_frame_at(&buf, &mut pos).unwrap().unwrap();
        assert_eq!(inc.from, 2);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn multiple_frames_in_sequence() {
        let mut buf = Vec::new();
        for i in 0..5u8 {
            write_frame(&mut buf, i as NodeId, &Payload::data(vec![i])).unwrap();
        }
        let mut cursor = Cursor::new(buf);
        for i in 0..5u8 {
            let got = read_frame(&mut cursor).unwrap();
            assert_eq!(got.from, i as NodeId);
            assert_eq!(got.payload.bytes[0], i);
        }
    }
}
